"""Calibration-parameter drift model.

Section IX of the paper notes that calibration is not a one-time cost:
control parameters drift over time, producing gate-error fluctuations of up
to 10x (Foxen et al.), which is why every exposed gate type must be
re-calibrated periodically.  This module models that drift so the
recalibration scheduler (:mod:`repro.calibration.scheduler`) can quantify
the *recurring* cost of an instruction set, not just its one-shot cost.

The error rate of each (edge, gate type) follows a mean-reverting
log-normal random walk (an Ornstein-Uhlenbeck process on the log error
rate): immediately after calibration the gate sits at its floor error rate,
then drifts upwards/downwards with a configurable volatility and an upward
bias, capped at a multiple of the floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

EdgeType = Tuple[Tuple[int, int], str]
"""Key identifying one calibrated gate: ``((qubit_a, qubit_b), type_key)``."""


@dataclass(frozen=True)
class DriftParameters:
    """Parameters of the log-space Ornstein-Uhlenbeck drift process.

    Attributes
    ----------
    volatility_per_hour:
        Standard deviation of the hourly log-error-rate increments.
    reversion_rate_per_hour:
        Pull towards the long-run drifted level (1/hours).
    drift_bias_per_hour:
        Upward bias of the log error rate (degradation per hour without
        recalibration).
    max_degradation_factor:
        Cap on ``error_rate / floor_error_rate`` (the paper quotes
        fluctuations of up to 10x).
    """

    volatility_per_hour: float = 0.08
    reversion_rate_per_hour: float = 0.02
    drift_bias_per_hour: float = 0.03
    max_degradation_factor: float = 10.0

    def __post_init__(self) -> None:
        if self.volatility_per_hour < 0 or self.reversion_rate_per_hour < 0:
            raise ValueError("drift parameters must be non-negative")
        if self.max_degradation_factor < 1.0:
            raise ValueError("max_degradation_factor must be at least 1")


@dataclass
class DriftingGate:
    """Drift state of one calibrated gate type on one edge."""

    floor_error_rate: float
    current_error_rate: float
    hours_since_calibration: float = 0.0

    @property
    def degradation_factor(self) -> float:
        """Current error rate relative to the freshly-calibrated floor."""
        return self.current_error_rate / self.floor_error_rate


class DriftModel:
    """Evolves the error rates of a set of calibrated gates over time.

    Parameters
    ----------
    floor_error_rates:
        ``{((a, b), type_key): freshly_calibrated_error_rate}``.
    parameters:
        Drift process parameters.
    seed:
        Seed of the drift noise (deterministic evolution for a fixed seed).
    """

    def __init__(
        self,
        floor_error_rates: Dict[EdgeType, float],
        parameters: Optional[DriftParameters] = None,
        seed: int = 17,
    ):
        if not floor_error_rates:
            raise ValueError("the drift model needs at least one calibrated gate")
        self.parameters = parameters or DriftParameters()
        self._rng = np.random.default_rng(seed)
        self.gates: Dict[EdgeType, DriftingGate] = {}
        for key, floor in floor_error_rates.items():
            if not 0.0 < floor < 1.0:
                raise ValueError(f"floor error rate for {key} must be in (0, 1)")
            self.gates[key] = DriftingGate(floor_error_rate=float(floor), current_error_rate=float(floor))
        self.elapsed_hours = 0.0

    # -- evolution ------------------------------------------------------------

    def advance(self, hours: float) -> None:
        """Advance every gate's drift by ``hours`` (may be fractional)."""
        if hours < 0:
            raise ValueError("time must move forwards")
        if hours == 0:
            return
        p = self.parameters
        for gate in self.gates.values():
            log_ratio = np.log(gate.current_error_rate / gate.floor_error_rate)
            noise = self._rng.normal(0.0, p.volatility_per_hour * np.sqrt(hours))
            log_ratio = (
                log_ratio
                + p.drift_bias_per_hour * hours
                - p.reversion_rate_per_hour * log_ratio * hours
                + noise
            )
            log_ratio = float(np.clip(log_ratio, 0.0, np.log(p.max_degradation_factor)))
            gate.current_error_rate = gate.floor_error_rate * float(np.exp(log_ratio))
            gate.hours_since_calibration += hours
        self.elapsed_hours += hours

    def calibrate(self, keys: Optional[Iterable[EdgeType]] = None) -> int:
        """Reset the listed gates (default: all) to their floor error rates.

        Returns the number of gates recalibrated.
        """
        selected = list(self.gates) if keys is None else [key for key in keys if key in self.gates]
        for key in selected:
            gate = self.gates[key]
            gate.current_error_rate = gate.floor_error_rate
            gate.hours_since_calibration = 0.0
        return len(selected)

    # -- observation ------------------------------------------------------------

    def error_rate(self, edge: Tuple[int, int], type_key: str) -> float:
        """Current error rate of one gate."""
        return self.gates[(tuple(edge), type_key)].current_error_rate

    def mean_error_rate(self) -> float:
        """Average current error rate over every calibrated gate."""
        return float(np.mean([gate.current_error_rate for gate in self.gates.values()]))

    def mean_degradation(self) -> float:
        """Average degradation factor over every calibrated gate."""
        return float(np.mean([gate.degradation_factor for gate in self.gates.values()]))

    def worst_degradation(self) -> float:
        """Largest degradation factor across the device."""
        return float(max(gate.degradation_factor for gate in self.gates.values()))

    def stale_gates(self, degradation_threshold: float) -> List[EdgeType]:
        """Gates whose degradation exceeds the threshold (recalibration candidates)."""
        return [
            key
            for key, gate in self.gates.items()
            if gate.degradation_factor > degradation_threshold
        ]

    def snapshot(self) -> Dict[EdgeType, float]:
        """Current error rates keyed like the constructor input."""
        return {key: gate.current_error_rate for key, gate in self.gates.items()}


def drift_model_for_instruction_set(
    num_edges: int,
    type_keys: Sequence[str],
    mean_error_rate: float = 0.0062,
    std_error_rate: float = 0.0024,
    parameters: Optional[DriftParameters] = None,
    seed: int = 17,
) -> DriftModel:
    """Build a drift model for a synthetic device exposing the given gate types.

    Edges are labelled ``(i, i + 1)``; per-gate floors are drawn from the
    Sycamore-style normal distribution used throughout the paper.
    """
    if num_edges < 1:
        raise ValueError("the device needs at least one edge")
    rng = np.random.default_rng(seed)
    floors: Dict[EdgeType, float] = {}
    for edge_index in range(num_edges):
        for type_key in type_keys:
            floor = float(np.clip(rng.normal(mean_error_rate, std_error_rate), 1e-4, 0.2))
            floors[((edge_index, edge_index + 1), type_key)] = floor
    return DriftModel(floors, parameters=parameters, seed=seed + 1)
