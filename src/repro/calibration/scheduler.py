"""Recalibration scheduling: the recurring cost of an instruction set.

Figure 11 of the paper quantifies the *one-shot* calibration cost of
exposing many gate types; this module quantifies the *steady-state* cost.
Given a drift model (:mod:`repro.calibration.drift`), a calibration model
(how long one gate type takes to recalibrate) and a scheduling policy, it
simulates a multi-day horizon and reports:

* the average and worst-case gate error rate experienced by applications,
* the fraction of wall-clock time the device spends calibrating
  (calibration duty cycle), and
* the number of recalibration passes performed.

Three policies are provided: calibrate everything on a fixed period
(``PeriodicPolicy``, what Google's four-hours-per-day schedule amounts to),
calibrate only the gates whose drift exceeded a threshold
(``ThresholdPolicy``), and never recalibrate (``NeverPolicy``, the
degradation baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.calibration.drift import DriftModel, EdgeType
from repro.calibration.model import CalibrationModel


class RecalibrationPolicy:
    """Interface: decide which gates to recalibrate at a decision point."""

    name = "abstract"

    def gates_to_calibrate(self, model: DriftModel, hours_since_last: float) -> List[EdgeType]:
        """Gate keys to recalibrate now (empty list = skip this slot)."""
        raise NotImplementedError


@dataclass
class PeriodicPolicy(RecalibrationPolicy):
    """Recalibrate every gate once per ``period_hours``."""

    period_hours: float = 24.0
    name: str = "periodic"

    def gates_to_calibrate(self, model: DriftModel, hours_since_last: float) -> List[EdgeType]:
        if hours_since_last + 1e-9 >= self.period_hours:
            return list(model.gates)
        return []


@dataclass
class ThresholdPolicy(RecalibrationPolicy):
    """Recalibrate only the gates whose error rate drifted past a threshold."""

    degradation_threshold: float = 2.0
    name: str = "threshold"

    def gates_to_calibrate(self, model: DriftModel, hours_since_last: float) -> List[EdgeType]:
        return model.stale_gates(self.degradation_threshold)


@dataclass
class NeverPolicy(RecalibrationPolicy):
    """Never recalibrate (lower bound on overhead, upper bound on error)."""

    name: str = "never"

    def gates_to_calibrate(self, model: DriftModel, hours_since_last: float) -> List[EdgeType]:
        return []


@dataclass
class ScheduleResult:
    """Outcome of one scheduling simulation."""

    policy: str
    horizon_hours: float
    mean_error_rate: float
    worst_error_rate: float
    mean_degradation: float
    calibration_hours: float
    num_recalibration_passes: int
    gates_recalibrated: int
    error_rate_timeline: List[float] = field(default_factory=list)

    @property
    def calibration_duty_cycle(self) -> float:
        """Fraction of the horizon spent calibrating instead of computing."""
        if self.horizon_hours <= 0:
            return 0.0
        return min(self.calibration_hours / self.horizon_hours, 1.0)

    def as_row(self) -> Dict[str, object]:
        """Row for tabular reporting."""
        return {
            "policy": self.policy,
            "mean_error": round(self.mean_error_rate, 5),
            "worst_error": round(self.worst_error_rate, 5),
            "mean_degradation": round(self.mean_degradation, 2),
            "calibration_hours": round(self.calibration_hours, 1),
            "duty_cycle": round(self.calibration_duty_cycle, 3),
            "passes": self.num_recalibration_passes,
        }


def hours_to_recalibrate(
    gates: Sequence[EdgeType], calibration_model: CalibrationModel
) -> float:
    """Wall-clock hours to recalibrate the listed gates.

    Gate types are calibrated sequentially but all edges of one type in
    parallel (matching :meth:`CalibrationModel.calibration_time_hours`), so
    the cost is the base overhead plus hours-per-type times the number of
    distinct types touched.
    """
    if not gates:
        return 0.0
    distinct_types = {type_key for _, type_key in gates}
    return calibration_model.base_hours + calibration_model.hours_per_gate_type * len(distinct_types)


def simulate_schedule(
    drift_model: DriftModel,
    policy: RecalibrationPolicy,
    calibration_model: Optional[CalibrationModel] = None,
    horizon_hours: float = 7 * 24.0,
    decision_interval_hours: float = 4.0,
) -> ScheduleResult:
    """Simulate drift + recalibration over a time horizon.

    The drift model is advanced in ``decision_interval_hours`` steps; at
    every step the policy may trigger a recalibration pass, which resets
    the selected gates and consumes calibration time (during which the
    device is unavailable but drift still accumulates for the other gates).
    """
    if horizon_hours <= 0 or decision_interval_hours <= 0:
        raise ValueError("horizon and decision interval must be positive")
    calibration_model = calibration_model or CalibrationModel()

    timeline: List[float] = []
    calibration_hours = 0.0
    passes = 0
    gates_recalibrated = 0
    hours_since_last = 0.0
    worst_error = 0.0
    degradations: List[float] = []

    elapsed = 0.0
    while elapsed < horizon_hours - 1e-9:
        step = min(decision_interval_hours, horizon_hours - elapsed)
        drift_model.advance(step)
        elapsed += step
        hours_since_last += step

        timeline.append(drift_model.mean_error_rate())
        degradations.append(drift_model.mean_degradation())
        worst_error = max(worst_error, max(g.current_error_rate for g in drift_model.gates.values()))

        to_calibrate = policy.gates_to_calibrate(drift_model, hours_since_last)
        if to_calibrate:
            cost = hours_to_recalibrate(to_calibrate, calibration_model)
            calibration_hours += cost
            passes += 1
            gates_recalibrated += drift_model.calibrate(to_calibrate)
            hours_since_last = 0.0

    return ScheduleResult(
        policy=policy.name,
        horizon_hours=horizon_hours,
        mean_error_rate=float(np.mean(timeline)) if timeline else drift_model.mean_error_rate(),
        worst_error_rate=float(worst_error),
        mean_degradation=float(np.mean(degradations)) if degradations else 1.0,
        calibration_hours=calibration_hours,
        num_recalibration_passes=passes,
        gates_recalibrated=gates_recalibrated,
        error_rate_timeline=timeline,
    )


def compare_policies(
    drift_model_factory,
    policies: Sequence[RecalibrationPolicy],
    calibration_model: Optional[CalibrationModel] = None,
    horizon_hours: float = 7 * 24.0,
    decision_interval_hours: float = 4.0,
) -> Dict[str, ScheduleResult]:
    """Run the same horizon under several policies on identically-seeded drift.

    ``drift_model_factory`` must return a *fresh* :class:`DriftModel` per
    call so every policy sees the same drift realisation.
    """
    results: Dict[str, ScheduleResult] = {}
    for policy in policies:
        results[policy.name] = simulate_schedule(
            drift_model_factory(),
            policy,
            calibration_model=calibration_model,
            horizon_hours=horizon_hours,
            decision_interval_hours=decision_interval_hours,
        )
    return results


def sustainable_gate_type_count(
    calibration_model: Optional[CalibrationModel] = None,
    daily_calibration_budget_hours: float = 4.0,
    recalibrations_per_day: float = 1.0,
) -> int:
    """Largest number of gate types that fits a daily calibration budget.

    Google's 54-qubit device budgets roughly four hours of calibration per
    day for a single gate type (Section I); this inverts the wall-clock
    model to report how many types a given budget sustains, which is the
    practical ceiling on instruction-set size.
    """
    calibration_model = calibration_model or CalibrationModel()
    if daily_calibration_budget_hours <= 0 or recalibrations_per_day <= 0:
        raise ValueError("budget and recalibration frequency must be positive")
    budget_per_pass = daily_calibration_budget_hours / recalibrations_per_day
    available = budget_per_pass - calibration_model.base_hours
    if available < calibration_model.hours_per_gate_type:
        return 0
    return int(available // calibration_model.hours_per_gate_type)
