"""Calibration-vs-reliability tradeoff analysis (Figure 11b of the paper).

Combines the calibration-time model with measured application reliability
(from the Figure 9 / Figure 10 style studies) to produce the tradeoff
series: calibration time grows linearly with the number of exposed gate
types while reliability improves with diminishing returns after ~5 types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.calibration.model import CalibrationModel


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the Figure 11b tradeoff curve."""

    num_gate_types: int
    calibration_hours: float
    calibration_circuits: int
    reliability_improvement: Dict[str, float]


def reliability_improvement(
    baseline_value: float, candidate_value: float
) -> float:
    """Relative reliability improvement of a candidate set over the single-type baseline."""
    if baseline_value <= 0:
        return 0.0
    return float((candidate_value - baseline_value) / baseline_value)


def tradeoff_curve(
    reliability_by_size: Mapping[int, Mapping[str, float]],
    baseline: Mapping[str, float],
    model: Optional[CalibrationModel] = None,
    num_qubit_pairs: int = 93,
) -> List[TradeoffPoint]:
    """Build the calibration-time vs reliability-improvement curve.

    Parameters
    ----------
    reliability_by_size:
        ``{num_gate_types: {metric_name: value}}`` -- measured reliability
        of the multi-type instruction set with that many types.
    baseline:
        ``{metric_name: value}`` for the best single-type set.
    model:
        Calibration model (defaults to the paper's constants).
    num_qubit_pairs:
        Couplers calibrated (93 for the Sycamore grid model).
    """
    model = model if model is not None else CalibrationModel()
    points: List[TradeoffPoint] = []
    for size in sorted(reliability_by_size):
        metrics = reliability_by_size[size]
        improvements = {
            name: reliability_improvement(baseline.get(name, 0.0), value)
            for name, value in metrics.items()
        }
        points.append(
            TradeoffPoint(
                num_gate_types=size,
                calibration_hours=model.calibration_time_hours(size),
                calibration_circuits=model.num_calibration_circuits(size, num_qubit_pairs),
                reliability_improvement=improvements,
            )
        )
    return points


def diminishing_returns_size(points: Sequence[TradeoffPoint], metric: str, tolerance: float = 0.01) -> int:
    """Smallest gate-type count beyond which the metric improves by less than ``tolerance``.

    This is the "sweet spot" the paper identifies at 4-8 gate types.
    """
    if not points:
        raise ValueError("need at least one tradeoff point")
    ordered = sorted(points, key=lambda p: p.num_gate_types)
    best_so_far = ordered[0].reliability_improvement.get(metric, 0.0)
    chosen = ordered[0].num_gate_types
    for point in ordered[1:]:
        value = point.reliability_improvement.get(metric, 0.0)
        if value > best_so_far + tolerance:
            best_so_far = value
            chosen = point.num_gate_types
    return chosen
