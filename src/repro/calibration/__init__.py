"""Calibration-overhead modelling (Section IX / Figure 11 of the paper).

Besides the paper's one-shot circuit-count and wall-clock models
(:mod:`repro.calibration.model`, :mod:`repro.calibration.tradeoff`), the
package models parameter drift (:mod:`repro.calibration.drift`) and
recalibration scheduling policies (:mod:`repro.calibration.scheduler`) so
the *recurring* cost of exposing many gate types can be quantified.
"""

from repro.calibration.drift import (
    DriftModel,
    DriftParameters,
    drift_model_for_instruction_set,
)
from repro.calibration.scheduler import (
    NeverPolicy,
    PeriodicPolicy,
    ScheduleResult,
    ThresholdPolicy,
    compare_policies,
    simulate_schedule,
    sustainable_gate_type_count,
)
from repro.calibration.model import (
    CalibrationModel,
    DEFAULT_STAGE_CIRCUITS,
    DEFAULT_HOURS_PER_GATE_TYPE,
    DEFAULT_BASE_HOURS,
    continuous_family_equivalent_types,
    calibration_savings_factor,
)
from repro.calibration.tradeoff import (
    TradeoffPoint,
    reliability_improvement,
    tradeoff_curve,
    diminishing_returns_size,
)

__all__ = [
    "CalibrationModel",
    "DEFAULT_STAGE_CIRCUITS",
    "DEFAULT_HOURS_PER_GATE_TYPE",
    "DEFAULT_BASE_HOURS",
    "continuous_family_equivalent_types",
    "calibration_savings_factor",
    "TradeoffPoint",
    "reliability_improvement",
    "tradeoff_curve",
    "diminishing_returns_size",
    "DriftModel",
    "DriftParameters",
    "drift_model_for_instruction_set",
    "PeriodicPolicy",
    "ThresholdPolicy",
    "NeverPolicy",
    "ScheduleResult",
    "simulate_schedule",
    "compare_policies",
    "sustainable_gate_type_count",
]
