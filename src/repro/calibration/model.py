"""Calibration-overhead model for fSim gate types (Section IX of the paper).

The paper adopts the calibration procedure Google used to calibrate 525
fSim gate types: calibrating one ``fSim(theta, phi)`` type on one qubit
pair runs several stages (CPHASE calibration, iSWAP-like calibration,
theta tune-up, pulse construction with unitary tomography, and finally
cross-entropy benchmarking with ~1000 rounds), each of which executes a
large batch of circuits.  The total number of calibration circuits grows
linearly with the number of gate types and with the number of qubit pairs,
which is what makes continuous gate families impractical to calibrate
(Figure 11a); the wall-clock model (Figure 11b) assumes a conservative
fixed time per gate type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

# Circuits per calibration stage, per gate type, per qubit pair.  The split
# follows the stages described in Section IX; the total (~11k circuits per
# type per pair) reproduces the ~1e7 circuits the paper quotes for
# calibrating 10 gate types on a 54-qubit device.
DEFAULT_STAGE_CIRCUITS: Dict[str, int] = {
    "cphase_calibration": 2000,
    "iswap_like_calibration": 2000,
    "theta_tuneup": 1000,
    "pulse_construction_tomography": 1000,
    "xeb_characterization": 5000,
}

DEFAULT_HOURS_PER_GATE_TYPE = 2.0
"""Conservative wall-clock calibration time per two-qubit gate type (Section IX)."""

DEFAULT_BASE_HOURS = 2.0
"""Time for electronics, qubit frequencies and single-qubit calibration."""


@dataclass(frozen=True)
class CalibrationModel:
    """Analytic model of calibration circuit counts and wall-clock time."""

    stage_circuits: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_STAGE_CIRCUITS)
    )
    hours_per_gate_type: float = DEFAULT_HOURS_PER_GATE_TYPE
    base_hours: float = DEFAULT_BASE_HOURS

    @property
    def circuits_per_type_per_pair(self) -> int:
        """Calibration + benchmarking circuits for one gate type on one pair."""
        return int(sum(self.stage_circuits.values()))

    def num_calibration_circuits(
        self, num_gate_types: int, num_qubit_pairs: int
    ) -> int:
        """Total circuits to calibrate ``num_gate_types`` on ``num_qubit_pairs`` pairs."""
        if num_gate_types < 0 or num_qubit_pairs < 0:
            raise ValueError("counts must be non-negative")
        return int(num_gate_types) * int(num_qubit_pairs) * self.circuits_per_type_per_pair

    def calibration_time_hours(self, num_gate_types: int) -> float:
        """Wall-clock calibration time for a device exposing ``num_gate_types`` types.

        Pairs are calibrated in parallel (as on real systems), so the time
        scales with the number of gate types, not with device size.
        """
        if num_gate_types < 0:
            raise ValueError("number of gate types must be non-negative")
        return self.base_hours + self.hours_per_gate_type * num_gate_types

    def circuits_for_device(
        self, num_gate_types: int, num_qubits: int, average_degree: float = 3.4
    ) -> int:
        """Circuit count for a device of ``num_qubits`` with the given coupler density.

        ``average_degree`` is the mean number of couplers per qubit (about
        3.4 for the Sycamore grid); the number of pairs is
        ``num_qubits * average_degree / 2``.
        """
        num_pairs = int(round(num_qubits * average_degree / 2.0))
        return self.num_calibration_circuits(num_gate_types, num_pairs)


def continuous_family_equivalent_types(grid_points_per_axis: int = 19, axes: int = 2) -> int:
    """Number of discrete types needed to emulate a continuous family.

    The paper discretises the fSim parameter space on a 19 x 19 grid
    (Figure 8); exposing the "full" family is therefore at least as costly
    as calibrating ``19**2 = 361`` gate types (Google's experiment
    calibrated 525).
    """
    return int(grid_points_per_axis**axes)


def calibration_savings_factor(
    model: CalibrationModel,
    proposed_gate_types: int,
    continuous_types: Optional[int] = None,
) -> float:
    """How many times cheaper the proposed discrete set is than the continuous family.

    The paper reports roughly two orders of magnitude for 4-8 gate types
    versus the continuous fSim family.
    """
    if continuous_types is None:
        continuous_types = continuous_family_equivalent_types()
    if proposed_gate_types <= 0:
        raise ValueError("the proposed set needs at least one gate type")
    return float(continuous_types) / float(proposed_gate_types)
