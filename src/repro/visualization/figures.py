"""Renderers that turn experiment result objects into text figures.

Each ``render_*`` function takes the result object produced by the matching
driver in :mod:`repro.experiments` and returns a multi-line string shaped
like the corresponding figure of the paper (bar panels for Figures 9/10,
heatmaps for Figure 8, scaling curves for Figure 11a).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.visualization.text import bar_chart, heatmap, line_plot, render_table

QV_THRESHOLD = 2.0 / 3.0
"""Heavy-output-probability threshold marking a quantum-volume pass."""


def render_study(study, reference: Optional[float] = None) -> str:
    """Bar-chart rendering of one :class:`StudyResult` panel.

    The bars are annotated with the mean two-qubit instruction count, the
    way the paper annotates its Figure 9/10 bars.
    """
    values = {name: result.mean_metric for name, result in study.per_set.items()}
    chart = bar_chart(values, reference=reference, reference_label="QV threshold")
    counts = {name: result.mean_two_qubit_count for name, result in study.per_set.items()}
    annotations = ", ".join(f"{name}: {count:.1f}" for name, count in counts.items())
    return "\n".join(
        [
            f"{study.application} ({study.metric_name})",
            chart,
            f"mean two-qubit instruction counts: {annotations}",
        ]
    )


def _render_panels(result, reference_for_qv: float = QV_THRESHOLD) -> str:
    panels: List[str] = []
    for study in result.studies():
        reference = reference_for_qv if study.application == "qv" else None
        panels.append(render_study(study, reference=reference))
    return "\n\n".join(panels)


def render_figure9(result) -> str:
    """Text version of Figure 9 (Aspen-8 panels)."""
    return "Figure 9: Rigetti Aspen-8\n\n" + _render_panels(result)


def render_figure10(result) -> str:
    """Text version of Figure 10a-e (Sycamore panels, plus the no-variation ablation)."""
    text = "Figure 10: Google Sycamore\n\n" + _render_panels(result)
    if getattr(result, "qaoa_no_variation", None) is not None:
        text += "\n\nFigure 10e: no noise variation across gate types\n"
        text += render_study(result.qaoa_no_variation)
    return text


def render_figure8(result, applications: Optional[Sequence[str]] = None) -> str:
    """Shaded heatmaps of the Figure 8 gate-count characterisation."""
    applications = list(applications) if applications is not None else list(result.heatmaps)
    sections: List[str] = []
    for application in applications:
        grid = result.heatmaps[application]
        sections.append(
            heatmap(
                grid,
                row_labels=[f"{phi:.2f}" for phi in result.phi_values],
                column_labels=[f"{theta:.2f}" for theta in result.theta_values],
                title=(
                    f"Figure 8 ({application}): mean two-qubit gate count over "
                    "fSim(theta [columns], phi [rows]); darker = fewer gates"
                ),
                invert=True,
            )
        )
    return "\n\n".join(sections)


def render_figure11a(result) -> str:
    """Log-scale scaling curves of calibration circuit counts (Figure 11a)."""
    sizes = sorted(result.circuits)
    type_counts = sorted(next(iter(result.circuits.values()))) if result.circuits else []
    series = {
        f"{size} qubits": [result.circuits[size][count] for count in type_counts]
        for size in sizes
    }
    plot = line_plot(
        [float(c) for c in type_counts],
        series,
        title="Figure 11a: calibration circuits vs number of fSim gate types",
        x_label="number of gate types",
        y_label="circuits",
        logy=True,
    )
    rows = [
        {"#types": count, **{f"{size}q": result.circuits[size][count] for size in sizes}}
        for count in type_counts
    ]
    return plot + "\n\n" + render_table(rows)


def render_tradeoff(points, metric: Optional[str] = None) -> str:
    """Calibration-time vs reliability rendering of Figure 11b tradeoff points."""
    if not points:
        return "(no tradeoff points)"
    metrics = sorted({name for point in points for name in point.reliability_improvement})
    selected = [metric] if metric else metrics
    rows = []
    for point in points:
        row = {
            "#types": point.num_gate_types,
            "hours": point.calibration_hours,
            "circuits": float(point.calibration_circuits),
        }
        for name in selected:
            row[name] = point.reliability_improvement.get(name, float("nan"))
        rows.append(row)
    table = render_table(rows)
    x = [float(point.num_gate_types) for point in points]
    series = {"calibration hours": [point.calibration_hours for point in points]}
    for name in selected:
        series[name] = [point.reliability_improvement.get(name, np.nan) for point in points]
    plot = line_plot(
        x,
        series,
        title="Figure 11b: calibration time and reliability vs number of gate types",
        x_label="number of gate types",
        y_label="value",
    )
    return table + "\n\n" + plot
