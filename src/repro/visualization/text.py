"""Low-level text plotting primitives.

Every function returns a string (no printing, no terminal escape codes) so
the output can be embedded in logs, test assertions and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

BAR_CHARACTER = "#"
SHADES = " .:-=+*#%@"
"""Characters from light to dark used by :func:`heatmap` and :func:`sparkline`."""


def _normalise(values: Sequence[float]) -> np.ndarray:
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return array
    low = np.nanmin(array)
    high = np.nanmax(array)
    if not np.isfinite(low) or not np.isfinite(high) or high == low:
        return np.zeros_like(array)
    return (array - low) / (high - low)


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    value_format: str = "{:.3f}",
    reference: Optional[float] = None,
    reference_label: str = "threshold",
) -> str:
    """Horizontal bar chart, one row per labelled value.

    Parameters
    ----------
    values:
        Mapping of label to value (bars are drawn in insertion order).
    width:
        Number of character cells used by the longest bar.
    value_format:
        Format applied to the numeric annotation at the end of each bar.
    reference:
        Optional reference value rendered as a vertical marker column
        (e.g. the 2/3 quantum-volume threshold of Figures 9a and 10a).
    """
    if not values:
        return "(no data)"
    label_width = max(len(str(label)) for label in values)
    numeric = list(values.values())
    high = max(max(numeric), reference if reference is not None else -np.inf)
    high = high if high > 0 else 1.0

    lines: List[str] = []
    marker_column = None
    if reference is not None:
        marker_column = int(round(width * reference / high))
    for label, value in values.items():
        filled = int(round(width * max(value, 0.0) / high))
        bar = list(BAR_CHARACTER * filled + " " * (width - filled))
        if marker_column is not None and 0 <= marker_column < len(bar):
            bar[marker_column] = "|"
        annotation = value_format.format(value)
        lines.append(f"{str(label):>{label_width}} [{''.join(bar)}] {annotation}")
    if reference is not None:
        lines.append(f"{'':>{label_width}}  ('|' marks {reference_label} = {value_format.format(reference)})")
    return "\n".join(lines)


def heatmap(
    grid: np.ndarray,
    row_labels: Optional[Sequence[str]] = None,
    column_labels: Optional[Sequence[str]] = None,
    title: str = "",
    invert: bool = False,
    cell_format: str = "{:5.2f}",
    shaded: bool = True,
) -> str:
    """Render a 2-D array as an aligned numeric grid with optional shading.

    Parameters
    ----------
    grid:
        2-D array of values.
    row_labels / column_labels:
        Axis tick labels; defaults to the row/column indices.
    invert:
        When True, low values are rendered dark (useful for gate-count
        heatmaps where *low* is good, as in Figure 8).
    shaded:
        Append a shade character next to every cell so the structure is
        visible at a glance.
    """
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2:
        raise ValueError("heatmap expects a 2-D array")
    rows, cols = grid.shape
    row_labels = [str(label) for label in (row_labels if row_labels is not None else range(rows))]
    column_labels = [str(label) for label in (column_labels if column_labels is not None else range(cols))]
    if len(row_labels) != rows or len(column_labels) != cols:
        raise ValueError("label lengths must match the grid shape")

    normalised = _normalise(grid.ravel()).reshape(grid.shape)
    if invert:
        normalised = 1.0 - normalised

    label_width = max(len(label) for label in row_labels)
    cell_width = max(len(cell_format.format(v)) for v in grid.ravel()) + (2 if shaded else 0)
    cell_width = max(cell_width, max(len(label) for label in column_labels))

    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * (label_width + 3) + " ".join(f"{label:>{cell_width}}" for label in column_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for r in range(rows):
        cells = []
        for c in range(cols):
            text = cell_format.format(grid[r, c])
            if shaded:
                shade = SHADES[int(round(normalised[r, c] * (len(SHADES) - 1)))]
                text = f"{text} {shade}"
            cells.append(f"{text:>{cell_width}}")
        lines.append(f"{row_labels[r]:>{label_width}} | " + " ".join(cells))
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line shaded rendering of a numeric series."""
    normalised = _normalise(values)
    if normalised.size == 0:
        return ""
    return "".join(SHADES[int(round(v * (len(SHADES) - 1)))] for v in normalised)


def line_plot(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 15,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    logy: bool = False,
) -> str:
    """ASCII scatter/line plot of one or more series over shared x values.

    Each series is drawn with a distinct marker character; the y axis is
    annotated with the minimum and maximum values (log-scaled if ``logy``).
    Used for the Figure 11a scaling curves and the Figure 10f error-rate
    sweep.
    """
    x = np.asarray(list(x_values), dtype=float)
    if x.size == 0 or not series:
        return "(no data)"
    markers = "ox+*sd^v"
    all_y = np.concatenate([np.asarray(list(values), dtype=float) for values in series.values()])
    y_transform = (lambda v: np.log10(np.maximum(v, 1e-300))) if logy else (lambda v: v)
    y_all = y_transform(all_y)
    y_low, y_high = float(np.nanmin(y_all)), float(np.nanmax(y_all))
    if y_high == y_low:
        y_high = y_low + 1.0
    x_low, x_high = float(np.min(x)), float(np.max(x))
    if x_high == x_low:
        x_high = x_low + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        y = y_transform(np.asarray(list(values), dtype=float))
        for xi, yi in zip(x, y):
            col = int(round((xi - x_low) / (x_high - x_low) * (width - 1)))
            row = int(round((yi - y_low) / (y_high - y_low) * (height - 1)))
            canvas[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{10 ** y_high:.3g}" if logy else f"{y_high:.3g}"
    bottom_label = f"{10 ** y_low:.3g}" if logy else f"{y_low:.3g}"
    gutter = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(canvas):
        prefix = ""
        if row_index == 0:
            prefix = top_label
        elif row_index == height - 1:
            prefix = bottom_label
        elif row_index == height // 2:
            prefix = y_label
        lines.append(f"{prefix:>{gutter}} |" + "".join(row))
    lines.append(f"{'':>{gutter}} +" + "-" * width)
    lines.append(f"{'':>{gutter}}  {x_low:<10.3g}{x_label:^{max(width - 20, 1)}}{x_high:>10.3g}")
    legend = ", ".join(
        f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>{gutter}}  legend: {legend}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 40,
    title: str = "",
) -> str:
    """Text histogram of a sample (e.g. per-edge error rates of a device)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return "(no data)"
    counts, edges = np.histogram(array, bins=bins)
    high = max(int(counts.max()), 1)
    lines: List[str] = []
    if title:
        lines.append(title)
    for count, low, high_edge in zip(counts, edges[:-1], edges[1:]):
        filled = int(round(width * count / high))
        lines.append(f"[{low:9.4g}, {high_edge:9.4g}) {BAR_CHARACTER * filled} {count}")
    return "\n".join(lines)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Aligned text table from a list of dictionaries (column order preserved)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render_cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered: List[Dict[str, str]] = [
        {column: render_cell(row.get(column, "")) for column in columns} for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in rendered)) for column in columns
    }
    header = " | ".join(f"{column:>{widths[column]}}" for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    body = [
        " | ".join(f"{row[column]:>{widths[column]}}" for column in columns) for row in rendered
    ]
    return "\n".join([header, separator] + body)
