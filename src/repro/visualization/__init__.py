"""Plain-text rendering of the paper's figures.

The experiments in :mod:`repro.experiments` return structured result
objects; this package renders them as terminal-friendly text -- horizontal
bar charts for the Figure 9/10 panels, shaded heatmaps for Figure 8, line
plots for the Figure 11 scaling curves, and aligned tables for everything
else.  No plotting dependency is required.
"""

from repro.visualization.text import (
    bar_chart,
    heatmap,
    histogram,
    line_plot,
    render_table,
    sparkline,
)
from repro.visualization.figures import (
    render_figure8,
    render_figure9,
    render_figure10,
    render_figure11a,
    render_study,
    render_tradeoff,
)

__all__ = [
    "bar_chart",
    "heatmap",
    "histogram",
    "line_plot",
    "render_table",
    "sparkline",
    "render_figure8",
    "render_figure9",
    "render_figure10",
    "render_figure11a",
    "render_study",
    "render_tradeoff",
]
