"""ASAP scheduling with durations.

Assigns a start time to every operation using as-soon-as-possible
scheduling and the noise model's gate durations.  The schedule is used by
the decoherence estimator and to report circuit durations in the
experiment summaries; the density-matrix/trajectory simulators use the
simpler per-moment idle model directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.circuits.circuit import Operation, QuantumCircuit
from repro.simulators.noise_model import NoiseModel


@dataclass
class ScheduledOperation:
    """An operation with its scheduled start time and duration (ns)."""

    operation: Operation
    start: float
    duration: float

    @property
    def end(self) -> float:
        """Completion time of the operation."""
        return self.start + self.duration


@dataclass
class Schedule:
    """ASAP schedule of a circuit."""

    operations: List[ScheduledOperation]
    total_duration: float

    def qubit_busy_time(self, qubit: int) -> float:
        """Total time ``qubit`` spends executing gates."""
        return sum(
            item.duration for item in self.operations if qubit in item.operation.qubits
        )

    def qubit_idle_time(self, qubit: int) -> float:
        """Total time ``qubit`` spends idle within the schedule."""
        return self.total_duration - self.qubit_busy_time(qubit)


def asap_schedule(circuit: QuantumCircuit, noise_model: NoiseModel) -> Schedule:
    """Compute an ASAP schedule using the noise model's gate durations."""
    qubit_free_at: Dict[int, float] = {q: 0.0 for q in range(circuit.num_qubits)}
    scheduled: List[ScheduledOperation] = []
    for operation in circuit:
        duration = noise_model.operation_duration(operation)
        start = max(qubit_free_at[q] for q in operation.qubits)
        for qubit in operation.qubits:
            qubit_free_at[qubit] = start + duration
        scheduled.append(ScheduledOperation(operation, start, duration))
    total = max(qubit_free_at.values()) if qubit_free_at else 0.0
    return Schedule(operations=scheduled, total_duration=total)
