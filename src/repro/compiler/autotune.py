"""Pipeline autotuner: pick the compiler pipeline per workload by fidelity.

The paper's central claim is that instruction-set and compilation choices
should be selected *per workload* by the fidelity they deliver, yet the
PassManager architecture (:mod:`repro.compiler.manager`) makes the caller
pick a named pipeline by hand.  This module closes that loop: given a
(circuit, device calibration, instruction set) combination, the autotuner
compiles the circuit under a set of candidate pipelines, scores each
compiled result by **predicted compiled fidelity**, and returns the
winner.  ``pipeline="auto"`` anywhere a pipeline name is accepted --
``compile_circuit``, ``compile_circuit_cached``, the experiment engine,
the figure configs and the CLI ``--pipeline`` flag -- routes through it.

Scoring (:func:`predicted_compiled_fidelity`) multiplies three factors of
the emitted circuit:

* the NuOp **decomposition fidelities** (how faithfully each two-qubit
  operation was translated, ``F_d``),
* the calibrated **per-gate hardware fidelities** of every emitted
  operation (``F_h``, including the single-qubit gates the cleanup passes
  add or remove -- this is what differentiates pipelines),
* a **duration cost**: per-qubit idle time under an ASAP schedule decays
  as ``exp(-idle / T2)``, so deeper outputs score lower on devices with
  finite coherence.

Determinism and caching:

* Trial compilations run against **deep copies** of the device, so the
  tuner never advances the real device's calibration RNG; after the
  verdict, the caller compiles with the winning pipeline exactly as if it
  had been requested by name.  ``pipeline="auto"`` is therefore
  bit-identical to ``pipeline=<winner>``.
* Trial compilations go through :func:`~repro.core.pipeline.compile_circuit_cached`,
  so they are served by (and populate) both compilation cache tiers.
* The verdict itself is content-addressed by the same circuit /
  calibration / instruction-set / decomposer fingerprints the compilation
  caches use, and is cached in a process-global memory tier
  (:func:`global_tuner_cache`) plus the persistent disk tier (stored as an
  auxiliary blob inside the configured
  :class:`~repro.caching.disk.DiskCompilationCache`), so warm processes
  re-tune for free.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.hashing import (
    circuit_fingerprint,
    instruction_set_fingerprint,
)
from repro.compiler.manager import available_pipelines, resolve_pipeline
from repro.config import list_env
from repro.compiler.scheduling import asap_schedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.circuits.circuit import QuantumCircuit
    from repro.core.decomposer import NuOpDecomposer
    from repro.core.instruction_sets import InstructionSet
    from repro.core.pipeline import CompiledCircuit
    from repro.devices.device import Device

AUTO_PIPELINE = "auto"
"""The pipeline name that routes compilation through the autotuner."""

AUTOTUNE_BLOB_KIND = "autotune"
"""Namespace under which verdicts are persisted in the disk cache tier."""

CANDIDATES_ENV_VAR = "REPRO_AUTOTUNE_PIPELINES"

TUNER_CACHE_SIZE_ENV_VAR = "REPRO_TUNER_CACHE_SIZE"
"""Environment variable overriding the verdict memory-tier LRU bound.
Read once, when the process-global cache is constructed at import time
(the ``REPRO_COMPILE_CACHE_SIZE`` contract); parsing policy:
:func:`repro.config.positive_int_env`."""

_DEFAULT_TUNER_CACHE_SIZE = 8192

_TABULATED_LAYER_SWEEP = (2, 3)
"""Extra ``max_layers`` budgets the tuner tries per candidate pipeline
when decomposition tabulation is active (values matching the caller's
effective budget, or exceeding the decomposer's table depth, are
skipped)."""

_DEFAULT_CANDIDATES = ("default", "optimized", "fused")
"""Candidate pipelines the tuner scores unless told otherwise: the paper's
toolflow, the peephole-cancellation variant and the SU(4) pre-fusion
variant.  All are fidelity-oriented; analysis-only variants (``scheduled``)
and representation changes (``euler-zxz``) are opt-in via
``REPRO_AUTOTUNE_PIPELINES`` or the ``candidates`` argument."""


def default_candidate_pipelines() -> Tuple[str, ...]:
    """Candidate pipeline names, overridable via ``REPRO_AUTOTUNE_PIPELINES``.

    The environment variable holds a comma-separated list of registered
    pipeline names; unknown names raise at tuning time (same failure mode
    as a typo in ``--pipeline``).
    """
    return list_env(CANDIDATES_ENV_VAR, _DEFAULT_CANDIDATES)


# ---------------------------------------------------------------------------
# Scoring
# ---------------------------------------------------------------------------


def predicted_compiled_fidelity(
    compiled: "CompiledCircuit",
    device: "Device",
    schedule: Optional[object] = None,
) -> float:
    """Predicted end-to-end fidelity of a compiled circuit on ``device``.

    Product of the NuOp decomposition fidelities, the calibrated hardware
    fidelity of every emitted operation, and an idle-time decoherence
    factor ``exp(-idle / T2)`` per active qubit under an ASAP schedule.
    A pure prediction: reads calibration data but never samples, simulates
    or mutates anything, so it is deterministic and cheap.  ``schedule``
    accepts a precomputed ASAP :class:`~repro.compiler.scheduling.Schedule`
    of the compiled circuit so callers that already built one (the tuner
    reports durations from it) do not pay the schedule walk twice.
    """
    from repro.simulators.estimator import circuit_gate_fidelity

    model = device.noise_model
    fidelity = 1.0
    for value in compiled.decomposition_fidelities:
        fidelity *= float(value)
    physical = compiled.physical_qubits or tuple(range(compiled.circuit.num_qubits))
    fidelity *= circuit_gate_fidelity(compiled.circuit, model, physical)
    if schedule is None:
        schedule = asap_schedule(compiled.circuit, model)
    for qubit in compiled.circuit.active_qubits():
        idle = schedule.qubit_idle_time(qubit)
        if idle > 0.0:
            fidelity *= float(np.exp(-idle / model.qubit_t2(physical[qubit])))
    return float(fidelity)


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CandidateScore:
    """Predicted fidelity and hardware cost of one candidate trial.

    A trial is a candidate pipeline plus optional compile-option
    overrides.  ``max_layers_override`` / ``approximate_override`` are
    ``None`` for the classic per-pipeline trials; the tabulated sweep
    (see :func:`autotune_pipeline`) sets them on its extra trials, and a
    winning override is applied by the ``pipeline="auto"`` compile paths.
    """

    pipeline: str
    predicted_fidelity: float
    two_qubit_count: int
    single_qubit_count: int
    duration_ns: float
    max_layers_override: Optional[int] = None
    approximate_override: Optional[bool] = None

    def as_row(self) -> Dict[str, object]:
        """Row for tabular reporting."""
        row = {
            "pipeline": self.pipeline,
            "predicted_fidelity": round(self.predicted_fidelity, 6),
            "2q": self.two_qubit_count,
            "1q": self.single_qubit_count,
            "duration_ns": round(self.duration_ns, 1),
        }
        max_layers = getattr(self, "max_layers_override", None)
        approximate = getattr(self, "approximate_override", None)
        if max_layers is not None:
            row["max_layers"] = max_layers
        if approximate is not None:
            row["approximate"] = approximate
        return row


@dataclass(frozen=True)
class TunerVerdict:
    """The autotuner's decision for one (circuit, calibration, set) key.

    ``winner`` pins the exact winning trial (several trials may share a
    pipeline name under the tabulated sweep).  Verdicts unpickled from
    disk blobs written before the sweep existed lack the field, so every
    reader goes through :meth:`winning_score`, which falls back to the
    first score with the winning pipeline name.
    """

    pipeline: str
    scores: Tuple[CandidateScore, ...]
    winner: Optional[CandidateScore] = None

    def score_for(self, pipeline: str) -> Optional[CandidateScore]:
        """The score of one candidate, or ``None`` if it was not evaluated."""
        for score in self.scores:
            if score.pipeline == pipeline:
                return score
        return None

    def winning_score(self) -> Optional[CandidateScore]:
        """The winning trial's score record."""
        winner = getattr(self, "winner", None)
        if winner is not None:
            return winner
        return self.score_for(self.pipeline)

    def winning_fidelity(self) -> float:
        """Predicted fidelity of the selected pipeline."""
        winner = self.winning_score()
        return winner.predicted_fidelity if winner is not None else 1.0

    def compile_options(
        self, approximate: bool, max_layers: Optional[int]
    ) -> Tuple[bool, Optional[int]]:
        """The caller's compile options with the winner's overrides applied."""
        winner = self.winning_score()
        if winner is None:
            return approximate, max_layers
        approximate_override = getattr(winner, "approximate_override", None)
        max_layers_override = getattr(winner, "max_layers_override", None)
        return (
            approximate if approximate_override is None else approximate_override,
            max_layers if max_layers_override is None else max_layers_override,
        )


class TunerVerdictCache:
    """Process-local LRU memory tier for autotuner verdicts.

    Mirrors :class:`~repro.core.pipeline.CompilationCache` in shape
    (thread-safe, hit/miss counters, LRU bound) but stores the tiny
    :class:`TunerVerdict` records, which are much cheaper than compiled
    circuits and therefore get a generous default bound (overridable for
    the global instance via ``REPRO_TUNER_CACHE_SIZE``).
    """

    def __init__(self, max_entries: int = _DEFAULT_TUNER_CACHE_SIZE):
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple, TunerVerdict]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every verdict and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters (for benchmarks and the CLI)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }

    def get(self, key: Tuple) -> Optional[TunerVerdict]:
        """Verdict for ``key``, refreshing its recency; ``None`` on a miss."""
        with self._lock:
            verdict = self._entries.get(key)
            if verdict is not None:
                self.hits += 1
                self._entries.move_to_end(key)
            else:
                self.misses += 1
            return verdict

    def put(self, key: Tuple, verdict: TunerVerdict) -> None:
        """Store a verdict, evicting least-recently-used entries over the bound."""
        with self._lock:
            self._entries[key] = verdict
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)


def _default_tuner_cache_size() -> int:
    """Global verdict-cache bound, configurable via ``REPRO_TUNER_CACHE_SIZE``."""
    from repro.config import positive_int_env

    return positive_int_env(TUNER_CACHE_SIZE_ENV_VAR, _DEFAULT_TUNER_CACHE_SIZE)


_GLOBAL_TUNER_CACHE = TunerVerdictCache(max_entries=_default_tuner_cache_size())


def global_tuner_cache() -> TunerVerdictCache:
    """The process-wide verdict memory tier used when no explicit cache is given."""
    return _GLOBAL_TUNER_CACHE


def tuner_verdict_key(
    circuit: "QuantumCircuit",
    device: "Device",
    instruction_set: "InstructionSet",
    decomposer: "NuOpDecomposer",
    candidates: Sequence[str],
    approximate: bool,
    use_noise_adaptivity: bool,
    merge_single_qubit: bool,
    error_scale: float,
    max_layers: Optional[int],
) -> Tuple:
    """Content-addressed verdict key.

    Built from exactly the fingerprints the compilation caches use --
    circuit, device calibration state, instruction set, decomposer -- plus
    the candidate list (names *and* pipeline content fingerprints, so
    re-registering a candidate with different passes invalidates old
    verdicts) and the scalar compile options.  Hashable, order-stable and
    serialisable across processes, like
    :func:`~repro.core.pipeline.compilation_cache_key`.
    """
    from repro.core.pipeline import _decomposer_fingerprint

    candidate_digest: List[str] = []
    for name in candidates:
        candidate_digest.append(str(name))
        candidate_digest.append(resolve_pipeline(name).fingerprint())
    return (
        "autotune",
        circuit_fingerprint(circuit),
        device.calibration_fingerprint(),
        instruction_set_fingerprint(instruction_set),
        _decomposer_fingerprint(decomposer),
        tuple(candidate_digest),
        bool(approximate),
        bool(use_noise_adaptivity),
        bool(merge_single_qubit),
        float(error_scale),
        max_layers,
    )


# ---------------------------------------------------------------------------
# The tuner
# ---------------------------------------------------------------------------


def autotune_pipeline(
    circuit: "QuantumCircuit",
    device: "Device",
    instruction_set: "InstructionSet",
    decomposer: Optional["NuOpDecomposer"] = None,
    candidates: Optional[Sequence[str]] = None,
    approximate: bool = True,
    use_noise_adaptivity: bool = True,
    merge_single_qubit: bool = True,
    layout: Optional[object] = None,
    error_scale: float = 1.0,
    max_layers: Optional[int] = None,
    cache: Optional[object] = None,
    disk_cache: Optional[object] = None,
    verdict_cache: Optional[TunerVerdictCache] = None,
) -> TunerVerdict:
    """Pick the candidate pipeline with the best predicted compiled fidelity.

    Lookup order for the verdict is **memory -> disk -> trial compiles**.
    Trial compilations run on deep copies of ``device`` (the real device's
    calibration RNG never advances) and go through
    :func:`~repro.core.pipeline.compile_circuit_cached` with the supplied
    ``cache``/``disk_cache`` tiers, so a warm cache makes re-tuning nearly
    free even when the verdict itself is not cached.  Ties break toward
    the earlier candidate, so the verdict is deterministic for a fixed
    candidate order; ``default`` first means "auto never predicts worse
    than default".

    A pinned ``layout`` is honoured: trial compilations run *with* it, so
    the verdict is valid for the placement the caller will actually
    compile.  Pinned-layout verdicts bypass both verdict cache tiers
    (mirroring the compilation caches, whose keys have no layout
    component) -- correctness over reuse on this deliberate-comparison
    path.
    """
    from repro.caching.disk import get_global_disk_cache
    from repro.core.decomposer import NuOpDecomposer
    from repro.core.pipeline import compile_circuit_cached

    decomposer = decomposer if decomposer is not None else NuOpDecomposer()
    candidates = tuple(candidates) if candidates is not None else default_candidate_pipelines()
    if not candidates:
        raise ValueError("autotune needs at least one candidate pipeline")
    verdicts = verdict_cache if verdict_cache is not None else _GLOBAL_TUNER_CACHE
    disk = disk_cache if disk_cache is not None else get_global_disk_cache()

    key: Optional[Tuple] = None
    if layout is None:
        key = tuner_verdict_key(
            circuit,
            device,
            instruction_set,
            decomposer,
            candidates,
            approximate,
            use_noise_adaptivity,
            merge_single_qubit,
            error_scale,
            max_layers,
        )
        verdict = verdicts.get(key)
        if verdict is not None:
            return verdict
        if disk is not None:
            stored = disk.get_blob(AUTOTUNE_BLOB_KIND, key)
            if isinstance(stored, TunerVerdict):
                verdicts.put(key, stored)
                return stored

    trials: List[Tuple[str, Optional[bool], Optional[int]]] = [
        (name, None, None) for name in candidates
    ]
    if decomposer.resolved_tabulation() is not None:
        # Tabulated trial compiles are table lookups plus a 1q polish, an
        # order of magnitude cheaper than full NuOp optimisation, so the
        # tuner can afford to sweep compile options the classic tuner
        # holds fixed: tighter layer budgets (fewer entangling gates at
        # some F_d cost) and the exact-decomposition mode.  Base trials
        # come first, so ties keep resolving to the un-overridden
        # configuration.
        effective_limit = (
            decomposer.max_layers if max_layers is None else int(max_layers)
        )
        for name in candidates:
            for layers in _TABULATED_LAYER_SWEEP:
                if layers != effective_limit and layers <= decomposer.max_layers:
                    trials.append((name, None, layers))
            if approximate:
                trials.append((name, False, None))

    scores: List[CandidateScore] = []
    for name, trial_approximate, trial_max_layers in trials:
        trial_device = copy.deepcopy(device)
        compiled = compile_circuit_cached(
            circuit,
            trial_device,
            instruction_set,
            decomposer=decomposer,
            approximate=(
                approximate if trial_approximate is None else trial_approximate
            ),
            use_noise_adaptivity=use_noise_adaptivity,
            merge_single_qubit=merge_single_qubit,
            layout=layout,
            error_scale=error_scale,
            max_layers=(
                max_layers if trial_max_layers is None else trial_max_layers
            ),
            pipeline=name,
            cache=cache,
            disk_cache=disk,
        )
        schedule = asap_schedule(compiled.circuit, trial_device.noise_model)
        scores.append(
            CandidateScore(
                pipeline=name,
                predicted_fidelity=predicted_compiled_fidelity(
                    compiled, trial_device, schedule=schedule
                ),
                two_qubit_count=compiled.two_qubit_gate_count,
                single_qubit_count=compiled.circuit.num_single_qubit_gates(),
                duration_ns=float(schedule.total_duration),
                max_layers_override=trial_max_layers,
                approximate_override=trial_approximate,
            )
        )

    winner = scores[0]
    for score in scores[1:]:
        if score.predicted_fidelity > winner.predicted_fidelity:
            winner = score
    verdict = TunerVerdict(
        pipeline=winner.pipeline, scores=tuple(scores), winner=winner
    )
    if key is not None:
        verdicts.put(key, verdict)
        if disk is not None:
            disk.put_blob(AUTOTUNE_BLOB_KIND, key, verdict)
    return verdict
