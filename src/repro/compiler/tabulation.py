"""Weyl-chamber decomposition tabulation: 2q synthesis as a table lookup.

NuOp's per-layer BFGS optimisation (Section V of the paper) depends on the
target unitary only through its local-equivalence class, i.e. its Weyl
chamber coordinates.  This module precomputes, per (gate type | continuous
family) x ``max_layers``, a grid over the chamber ``pi/4 >= x >= y >= |z|``
mapping KAK coordinates to optimised gate sequences plus single-qubit
parameters.  A query is answered by

1. computing the target's local invariants (one eigenvalue call),
2. picking the nearest grid entry -- nearest in the invariant metric of
   :func:`repro.gates.kak.invariant_distance`, evaluated in closed form
   over the whole grid at once (:func:`repro.gates.kak.canonical_invariants`),
3. a cheap 1q-only BFGS polish: the layer structure and any continuous
   two-qubit angles are frozen at the tabulated values and only the
   ``(layers + 1, 2, 3)`` U3 angles are re-optimised from the tabulated
   start.

Tables live in three tiers: a small in-process LRU, the ``decomp``
namespace of the content-addressed disk cache
(:mod:`repro.caching.disk`, own ``decomp_hits/misses/writes`` counters),
and build-on-miss.  They are content-addressed by gate-type fingerprint x
grid resolution x decomposer knobs, so differently-configured decomposers
never share a table.

The subsystem is opt-in (``REPRO_DECOMP_TABULATION`` or the
``tabulation=`` knob of :class:`repro.core.decomposer.NuOpDecomposer`);
when inactive, the decomposer follows the classic per-target optimisation
bit for bit.
"""

from __future__ import annotations

from collections import OrderedDict
import dataclasses
from dataclasses import dataclass, field
from threading import Lock
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.circuits.gate import Gate
from repro.circuits.hashing import gate_fingerprint, hash_scalars
from repro.config import flag_env, positive_int_env
from repro.core.decomposer import LayerSolution, NuOpDecomposer
from repro.gates.kak import canonical_invariants, local_invariants
from repro.gates.parametric import canonical_gate

TABULATION_ENV_VAR = "REPRO_DECOMP_TABULATION"
"""Opt-in flag: truthy values turn tabulated synthesis on for every
decomposer whose ``tabulation`` knob is left at ``None``."""

GRID_RESOLUTION_ENV_VAR = "REPRO_DECOMP_GRID_RESOLUTION"
"""Number of grid points per chamber axis (default 5, i.e. 45 chamber
points).  Larger grids give closer polish starts at a cubically growing
build cost.  Invalid values warn and keep the default."""

_DEFAULT_GRID_RESOLUTION = 5

TABULATION_SCHEMA_VERSION = 1
"""Folded into every table cache key; bump when the table layout, the
grid construction or the polish contract changes."""

_POLISH_OPTIONS = {"maxiter": 120, "ftol": 1e-13, "gtol": 1e-9}
# Polish tolerances are looser than the full optimisation's
# (ftol 1e-14 / gtol 1e-10): the start is a converged solution of a
# nearby chamber point, so the remaining descent is short and the last
# digits of convergence buy nothing the fidelity guard would notice.

_ESTIMATE_SLACK = 0.05
# How far a target's achievable F_d may exceed the nearest grid entry's
# estimate.  Used to decide which layer counts are worth polishing: the
# estimate belongs to a chamber point up to half a grid step away, where
# F_d varies smoothly but not negligibly.

_BUILD_RETRIES = 3
# Extra optimisation attempts per (grid point, layer count) when the
# first attempt lands below an earlier layer's fidelity.  The reachable
# sets nest for one or more layers (two adjacent entanglers can merge or
# cancel), so such a drop always means a poor basin -- and an
# under-estimating entry is worse than a slow build, because queries
# prune layer counts whose estimate (+ slack) cannot win.

_BUILD_RESTARTS = 3
# Random-restart floor during table builds.  A table is built once and
# queried thousands of times, so build quality dominates build time:
# with the classic default of one random start, grid points on special
# subvarieties (say the CZ-exact ``z = 0`` plane at two layers) can
# stall in a poor basin and poison the pruning estimates.  The boost is
# a pure function of the spec'd knobs, so tables stay content-addressed.


def default_grid_resolution() -> int:
    """Grid resolution from the environment (warn-and-default policy)."""
    return positive_int_env(
        GRID_RESOLUTION_ENV_VAR,
        _DEFAULT_GRID_RESOLUTION,
        invalid_note="tabulation grid keeps the default resolution",
    )


@dataclass(frozen=True)
class TabulationConfig:
    """Resolved tabulation settings of one decomposer.

    ``resolution`` is the number of grid points per chamber axis;
    ``build_on_miss`` controls whether a missing table is built inline
    (the CLI's ``repro tabulate`` pre-builds tables so serve workers can
    set this to False and fall back to the classic path instead of
    stalling on a cold build).
    """

    resolution: int
    build_on_miss: bool = True

    def __post_init__(self) -> None:
        if self.resolution < 2:
            raise ValueError("tabulation grid needs at least 2 points per axis")

    def fingerprint(self) -> Tuple:
        """Cache-key component; excludes ``build_on_miss`` (it only
        changes *when* a table is built, never its content)."""
        return ("tabulation", TABULATION_SCHEMA_VERSION, self.resolution)


def resolve_tabulation(knob: object) -> Optional[TabulationConfig]:
    """Resolve a decomposer's ``tabulation`` knob to a config or ``None``.

    ``None`` consults the ``REPRO_DECOMP_TABULATION`` flag; booleans force
    the choice; a :class:`TabulationConfig` passes through.
    """
    if isinstance(knob, TabulationConfig):
        return knob
    if knob is None:
        if not flag_env(TABULATION_ENV_VAR):
            return None
        return TabulationConfig(resolution=default_grid_resolution())
    if knob:
        return TabulationConfig(resolution=default_grid_resolution())
    return None


# ---------------------------------------------------------------------------
# Grid + table data model
# ---------------------------------------------------------------------------


def chamber_grid(resolution: int) -> List[Tuple[float, float, float]]:
    """Grid points of the Weyl chamber ``pi/4 >= x >= y >= |z|``.

    Index-based: each axis takes ``resolution`` equidistant values in
    ``[0, pi/4]`` and only index triples inside the chamber are kept
    (``i >= j >= |k|``, with ``k >= 0`` on the ``x = pi/4`` face where
    ``(x, y, -z)`` is equivalent to ``(x, y, z)``).
    """
    axis = np.linspace(0.0, np.pi / 4, int(resolution))
    points: List[Tuple[float, float, float]] = []
    for i in range(len(axis)):
        for j in range(i + 1):
            for k in range(-j, j + 1):
                if i == len(axis) - 1 and k < 0:
                    continue
                z = axis[k] if k >= 0 else -axis[-k]
                points.append((float(axis[i]), float(axis[j]), float(z)))
    return points


@dataclass(frozen=True)
class TableEntry:
    """Optimised solutions of one chamber grid point, all layer counts.

    Unlike query profiles, entries do **not** stop at the first exact
    layer count: a grid point on a special subvariety (say the ``z = 0``
    plane, exact at two CZ layers) must still provide three-layer starts
    for the generic targets around it.
    """

    coords: Tuple[float, float, float]
    solutions: Tuple[LayerSolution, ...]


@dataclass(frozen=True)
class TableSpec:
    """Identity of one table: target gate/family x grid x decomposer knobs."""

    target_key: str
    target_fingerprint: str
    resolution: int
    max_layers: int
    restarts: int
    confirmation_restarts: int
    maxiter: int
    exact_threshold: float
    seed: int

    def cache_key(self) -> Tuple:
        """Content-addressed key tuple (feeds the disk cache's digest)."""
        return (
            "decomp-table",
            TABULATION_SCHEMA_VERSION,
            self.target_key,
            self.target_fingerprint,
            self.resolution,
            self.max_layers,
            self.restarts,
            self.confirmation_restarts,
            self.maxiter,
            self.exact_threshold,
            self.seed,
        )

    def digest(self) -> str:
        return hash_scalars(*self.cache_key())


@dataclass
class DecompositionTable:
    """A built Weyl-chamber lookup table for one gate type or family."""

    spec: TableSpec
    entries: List[TableEntry]
    build_seconds: float = 0.0
    _invariants: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    def _entry_invariants(self) -> np.ndarray:
        """Closed-form invariants of every grid point, built lazily.

        Derived data: recomputed after unpickling rather than persisted,
        so the disk payload stays small and version-proof.
        """
        if self._invariants is None:
            coords = np.asarray([entry.coords for entry in self.entries])
            self._invariants = np.stack(
                canonical_invariants(coords[:, 0], coords[:, 1], coords[:, 2]),
                axis=-1,
            )
        return self._invariants

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["_invariants"] = None
        return state

    def nearest(self, target: np.ndarray) -> TableEntry:
        """Grid entry nearest to a target, in the local-invariant metric.

        ``target`` is a 4x4 unitary.  Both sign branches of the SU(4)
        fourth-root ambiguity are considered, exactly like
        :func:`repro.gates.kak.invariant_distance`.
        """
        invariants = np.asarray(local_invariants(target))
        candidates = self._entry_invariants()
        flip = np.array([-1.0, 1.0, -1.0])
        distances = np.minimum(
            np.linalg.norm(candidates - invariants, axis=-1),
            np.linalg.norm(candidates * flip - invariants, axis=-1),
        )
        return self.entries[int(np.argmin(distances))]


# ---------------------------------------------------------------------------
# Fast 1q-only polish
# ---------------------------------------------------------------------------


def _batched_u3(angles: np.ndarray) -> np.ndarray:
    """U3 matrices for a batch of angle triples.

    ``angles[..., (alpha, beta, lam)]`` maps to matrices of shape
    ``angles.shape[:-1] + (2, 2)`` in the convention of
    :func:`repro.gates.parametric.u3`.
    """
    alpha = angles[..., 0]
    c = np.cos(alpha / 2.0)
    s = np.sin(alpha / 2.0)
    eb = np.exp(1j * angles[..., 1])
    el = np.exp(1j * angles[..., 2])
    matrices = np.empty(angles.shape[:-1] + (2, 2), dtype=complex)
    matrices[..., 0, 0] = c
    matrices[..., 0, 1] = -el * s
    matrices[..., 1, 0] = eb * s
    matrices[..., 1, 1] = eb * el * c
    return matrices


def _batched_u3_derivatives(angles: np.ndarray) -> np.ndarray:
    """Batched :func:`repro.core.templates._u3_derivatives`.

    Output shape is ``angles.shape[:-1] + (3, 2, 2)``: one 2x2 derivative
    matrix per angle, per batch element.
    """
    alpha = angles[..., 0]
    c = np.cos(alpha / 2.0)
    s = np.sin(alpha / 2.0)
    eb = np.exp(1j * angles[..., 1])
    el = np.exp(1j * angles[..., 2])
    ebl = eb * el
    derivatives = np.zeros(angles.shape[:-1] + (3, 2, 2), dtype=complex)
    derivatives[..., 0, 0, 0] = -0.5 * s
    derivatives[..., 0, 0, 1] = -0.5 * el * c
    derivatives[..., 0, 1, 0] = 0.5 * eb * c
    derivatives[..., 0, 1, 1] = -0.5 * ebl * s
    derivatives[..., 1, 1, 0] = 1j * eb * s
    derivatives[..., 1, 1, 1] = 1j * ebl * c
    derivatives[..., 2, 0, 1] = -1j * el * s
    derivatives[..., 2, 1, 1] = 1j * ebl * c
    return derivatives


def _polish_objective_factory(target: np.ndarray, fixed_matrices: Sequence[np.ndarray]):
    """Objective ``1 - |Tr(U^dagger target)| / 4`` over the U3 angles only.

    The entangling layers are frozen at ``fixed_matrices`` (the tabulated
    hardware gates), so the variables are the ``6 (L + 1)`` boundary
    angles.  Equivalent to
    :meth:`repro.core.templates.TemplateSpec.objective_with_gradient`
    restricted to the single-qubit block, but evaluated several times
    faster: the boundary U3s, their derivatives and all the gradient
    contractions are batched over boundaries into a handful of einsum
    calls instead of dozens of per-matrix numpy operations.
    """
    target = np.asarray(target, dtype=complex)
    num_layers = len(fixed_matrices)
    boundaries = num_layers + 1
    entangling = [np.asarray(matrix, dtype=complex) for matrix in fixed_matrices]
    count = 2 * boundaries - 1  # boundaries at even positions, gates at odd
    boundary_slots = 2 * np.arange(boundaries)

    def objective(flat: np.ndarray) -> Tuple[float, np.ndarray]:
        single = np.asarray(flat, dtype=float).reshape(boundaries, 2, 3)
        locals_ab = _batched_u3(single)  # (boundaries, qubit, 2, 2)
        boundary = np.einsum(
            "nij,nkl->nikjl", locals_ab[:, 0], locals_ab[:, 1]
        ).reshape(boundaries, 4, 4)

        factors: List[np.ndarray] = []
        for i in range(boundaries):
            factors.append(boundary[i])
            if i < num_layers:
                factors.append(entangling[i])
        prefix = np.empty((count + 1, 4, 4), dtype=complex)
        prefix[0] = np.eye(4)
        for m, matrix in enumerate(factors):
            prefix[m + 1] = matrix @ prefix[m]
        suffix = np.empty((count + 1, 4, 4), dtype=complex)
        suffix[count] = np.eye(4)
        for m in range(count - 1, -1, -1):
            suffix[m] = suffix[m + 1] @ factors[m]

        overlap = np.einsum("ab,ab->", prefix[count].conj(), target)
        magnitude = abs(overlap)
        value = 1.0 - magnitude / 4.0
        if magnitude < 1e-12:
            return value, np.zeros(flat.size)
        scale = overlap.conjugate() / magnitude

        # middle[n] = suffix[2n + 1]^dagger target prefix[2n]^dagger,
        # indexed as [(a c), (b d)] with a/b the first qubit's row/column
        # and c/d the second's:
        # Tr((dA (x) B)^dagger M) = sum conj(dA)_ab conj(B)_cd M_acbd.
        middle = np.einsum(
            "nba,bc,ndc->nad",
            suffix[boundary_slots + 1].conj(),
            target,
            prefix[boundary_slots].conj(),
        ).reshape(boundaries, 2, 2, 2, 2)
        reduced_a = np.einsum("ncd,nacbd->nab", locals_ab[:, 1].conj(), middle)
        reduced_b = np.einsum("nab,nacbd->ncd", locals_ab[:, 0].conj(), middle)
        derivatives = _batched_u3_derivatives(single)  # (n, qubit, 3, 2, 2)
        d_overlap = np.stack(
            [
                np.einsum("nkab,nab->nk", derivatives[:, 0].conj(), reduced_a),
                np.einsum("nkcd,ncd->nk", derivatives[:, 1].conj(), reduced_b),
            ],
            axis=1,
        )  # (boundaries, qubit, 3) matching the parameter layout
        gradient = (-np.real(scale * d_overlap) / 4.0).reshape(flat.size)
        return value, gradient

    return objective


def _split_solution_parameters(
    decomposer: NuOpDecomposer,
    solution: LayerSolution,
    gate: Optional[Gate],
    family: Optional[str],
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
    """``(single_block, two_block, entangling_matrices)`` of a tabulated solution."""
    template = decomposer._make_template(solution.num_layers, gate, family)
    single, two = template.split_parameters(solution.parameters)
    return single, two, template.two_qubit_matrices(two)


def _polish_solution(
    decomposer: NuOpDecomposer,
    target: np.ndarray,
    solution: LayerSolution,
    gate: Optional[Gate],
    family: Optional[str],
) -> LayerSolution:
    """Re-optimise only the U3 angles of a tabulated solution for ``target``.

    Falls back to deterministic rescue restarts (zeros plus seeded random
    starts) when the tabulated start lands in a poor basin; the layer
    count and any continuous entangling angles stay frozen throughout.
    """
    if solution.num_layers == 0 and solution.parameters.size == 0:
        # Layer-zero profile entries carry no parameters (the empty
        # template); fidelity against this target still differs from the
        # grid point's, so recompute it.
        fidelity = float(abs(np.trace(np.asarray(target, dtype=complex).conj().T @ np.eye(4))) / 4.0)
        return LayerSolution(0, fidelity, solution.parameters)
    single, two, entangling = _split_solution_parameters(
        decomposer, solution, gate, family
    )
    objective = _polish_objective_factory(target, entangling)

    def run(start: np.ndarray) -> Tuple[float, np.ndarray]:
        result = minimize(
            objective, start, jac=True, method="L-BFGS-B", options=_POLISH_OPTIONS
        )
        return float(result.fun), np.asarray(result.x, dtype=float)

    best_value, best_single = run(single.ravel())
    if 1.0 - best_value < solution.fidelity - _ESTIMATE_SLACK:
        # Rescue: the polish trails the grid point's own fidelity by more
        # than the smooth target-to-gridpoint variation can explain, so
        # the start landed in a wrong basin -- retry from the
        # deterministic starts the classic optimiser would use.  (Small
        # shortfalls are expected and legitimate: a grid point on a
        # special subvariety, say the CZ-exact ``z = 0`` plane, reports a
        # fidelity its off-plane neighbours cannot reach.)
        rng = np.random.default_rng(decomposer.seed)
        starts = [np.zeros(single.size)]
        starts += [
            rng.uniform(-np.pi, np.pi, size=single.size)
            for _ in range(max(decomposer.confirmation_restarts, 1))
        ]
        for start in starts:
            value, params = run(start)
            if value < best_value:
                best_value, best_single = value, params
            if 1.0 - best_value >= solution.fidelity - _ESTIMATE_SLACK:
                break
    flat = np.concatenate([best_single, np.asarray(two, dtype=float).ravel()])
    return LayerSolution(solution.num_layers, 1.0 - best_value, flat)


# ---------------------------------------------------------------------------
# Table build + the three-tier store
# ---------------------------------------------------------------------------


def table_spec(
    decomposer: NuOpDecomposer,
    gate: Optional[Gate],
    family: Optional[str],
    config: TabulationConfig,
) -> TableSpec:
    """The table identity a decomposer/config pair resolves to."""
    if (gate is None) == (family is None):
        raise ValueError("provide exactly one of 'gate' or 'family'")
    if gate is not None:
        target_key = gate.type_key
        target_fp = gate_fingerprint(gate)
    else:
        target_key = f"family:{family}"
        target_fp = hash_scalars("family", family)
    return TableSpec(
        target_key=target_key,
        target_fingerprint=target_fp,
        resolution=config.resolution,
        max_layers=decomposer.max_layers,
        restarts=decomposer.restarts,
        confirmation_restarts=decomposer.confirmation_restarts,
        maxiter=decomposer.maxiter,
        exact_threshold=decomposer.exact_threshold,
        seed=decomposer.seed,
    )


def build_table(
    decomposer: NuOpDecomposer,
    gate: Optional[Gate],
    family: Optional[str],
    config: TabulationConfig,
) -> DecompositionTable:
    """Optimise every chamber grid point for every layer count.

    Grid points are optimised with the decomposer's own template
    machinery and seed, but with a restart floor (see ``_BUILD_RESTARTS``)
    and *without* the early stop at the exact threshold -- see
    :class:`TableEntry`.
    """
    import time

    spec = table_spec(decomposer, gate, family, config)
    builder = dataclasses.replace(
        decomposer, restarts=max(decomposer.restarts, _BUILD_RESTARTS)
    )
    started = time.perf_counter()
    entries: List[TableEntry] = []
    for coords in chamber_grid(config.resolution):
        point_target = canonical_gate(*coords)
        rng = np.random.default_rng(decomposer.seed)
        solutions = []
        floor = 0.0
        for num_layers in range(spec.max_layers + 1):
            template = builder._make_template(num_layers, gate, family)
            fidelity, params = builder._optimise_template(
                point_target, template, rng
            )
            # ``floor`` is the best fidelity over layer counts >= 1 so
            # far; dropping below it flags a failed optimisation (see
            # _BUILD_RETRIES).  Layer zero is excluded from the floor:
            # a single fixed entangler cannot emulate the identity, so
            # F(1) < F(0) is legitimate near the chamber origin.
            for _ in range(_BUILD_RETRIES):
                if fidelity >= floor - 1e-9:
                    break
                retry_fidelity, retry_params = builder._optimise_template(
                    point_target, template, rng
                )
                if retry_fidelity > fidelity:
                    fidelity, params = retry_fidelity, retry_params
            if num_layers >= 1:
                floor = max(floor, fidelity)
            solutions.append(LayerSolution(num_layers, fidelity, params))
        entries.append(TableEntry(coords=coords, solutions=tuple(solutions)))
    return DecompositionTable(
        spec=spec,
        entries=entries,
        build_seconds=time.perf_counter() - started,
    )


_TABLE_CACHE: "OrderedDict[str, DecompositionTable]" = OrderedDict()
_TABLE_CACHE_LOCK = Lock()
_TABLE_CACHE_MAX_ENTRIES = 32
# A table is ~tens of KB; 32 covers both devices' Table II catalogues
# plus the continuous families with room to spare, while bounding a
# serve worker that cycles through many decomposer configurations.
_TABLE_COUNTERS = {"hits": 0, "disk_loads": 0, "builds": 0}


def _table_cache_insert(digest: str, table: DecompositionTable, counter: str) -> None:
    with _TABLE_CACHE_LOCK:
        _TABLE_CACHE[digest] = table
        _TABLE_CACHE.move_to_end(digest)
        while len(_TABLE_CACHE) > _TABLE_CACHE_MAX_ENTRIES:
            _TABLE_CACHE.popitem(last=False)
        _TABLE_COUNTERS[counter] += 1


def table_cache_stats() -> Dict[str, int]:
    """Counters + occupancy of the in-process table cache (for the CLI)."""
    with _TABLE_CACHE_LOCK:
        return {
            "hits": _TABLE_COUNTERS["hits"],
            "disk_loads": _TABLE_COUNTERS["disk_loads"],
            "builds": _TABLE_COUNTERS["builds"],
            "entries": len(_TABLE_CACHE),
        }


def clear_table_cache() -> None:
    """Drop every in-process table (the disk tier is unaffected)."""
    with _TABLE_CACHE_LOCK:
        _TABLE_CACHE.clear()


def table_for(
    decomposer: NuOpDecomposer,
    gate: Optional[Gate],
    family: Optional[str],
    config: TabulationConfig,
    build: Optional[bool] = None,
) -> Optional[DecompositionTable]:
    """Memory -> disk -> build resolution of one table.

    Returns ``None`` when the table is absent from both caches and
    building is disabled (``config.build_on_miss`` / the ``build``
    override); callers then fall back to the classic optimiser.  A built
    table is persisted to the ``decomp`` disk namespace when the disk
    tier is configured.
    """
    from repro.caching.disk import get_global_disk_cache

    spec = table_spec(decomposer, gate, family, config)
    digest = spec.digest()
    with _TABLE_CACHE_LOCK:
        table = _TABLE_CACHE.get(digest)
        if table is not None:
            _TABLE_CACHE.move_to_end(digest)
            _TABLE_COUNTERS["hits"] += 1
            return table
    disk = get_global_disk_cache()
    if disk is not None:
        table = disk.get_decomposition_table(spec.cache_key())
        if isinstance(table, DecompositionTable):
            _table_cache_insert(digest, table, "disk_loads")
            return table
    if not (config.build_on_miss if build is None else build):
        return None
    table = build_table(decomposer, gate, family, config)
    _table_cache_insert(digest, table, "builds")
    if disk is not None:
        disk.put_decomposition_table(spec.cache_key(), table)
    return table


# ---------------------------------------------------------------------------
# Query paths (called from NuOpDecomposer)
# ---------------------------------------------------------------------------


def _polished_solution_cached(
    decomposer: NuOpDecomposer,
    target: np.ndarray,
    entry: TableEntry,
    num_layers: int,
    gate: Optional[Gate],
    family: Optional[str],
) -> LayerSolution:
    """Polish one layer count, memoised in the process-wide profile LRU."""
    from repro.core.decomposer import _profile_cache_get, _profile_cache_put

    gate_key = gate.type_key if gate is not None else f"family:{family}"
    cache_key = decomposer._profile_cache_key(
        target, f"{gate_key}|polish", num_layers
    )
    cached = _profile_cache_get(cache_key)
    if cached is not None:
        return cached[0]
    polished = _polish_solution(
        decomposer, target, entry.solutions[num_layers], gate, family
    )
    _profile_cache_put(cache_key, [polished])
    return polished


def tabulated_profile(
    decomposer: NuOpDecomposer,
    target: np.ndarray,
    gate: Optional[Gate],
    family: Optional[str],
    limit: int,
    config: TabulationConfig,
) -> Optional[List[LayerSolution]]:
    """Full fidelity profile from the table: polish every layer count.

    Mirrors the classic profile's shape (ascending layer counts,
    truncated after the first solution at the exact threshold).  Returns
    ``None`` when no table is available or it is too shallow for
    ``limit``, so the caller falls back to the classic optimiser.
    """
    table = table_for(decomposer, gate, family, config)
    if table is None or limit > table.spec.max_layers:
        return None
    entry = table.nearest(target)
    profile: List[LayerSolution] = []
    for num_layers in range(limit + 1):
        polished = _polished_solution_cached(
            decomposer, target, entry, num_layers, gate, family
        )
        profile.append(polished)
        if polished.fidelity >= decomposer.exact_threshold:
            break
    return profile


def tabulated_decompose_exact(
    decomposer: NuOpDecomposer,
    target: np.ndarray,
    gate: Optional[Gate],
    family: Optional[str],
    threshold: float,
    max_layers: Optional[int],
    label: Optional[str],
    config: TabulationConfig,
):
    """Smallest-layer tabulated decomposition meeting ``threshold``.

    Candidate layer counts come from the grid entry's fidelity estimates
    (minus the slack a nearby chamber point's estimate can be off by);
    only candidates are polished.  Returns ``None`` (classic fallback)
    when no polished candidate reaches the threshold -- the classic
    optimiser both retries harder and defines the best-effort contract
    for unreachable thresholds.
    """
    limit = decomposer.max_layers if max_layers is None else int(max_layers)
    table = table_for(decomposer, gate, family, config)
    if table is None or limit > table.spec.max_layers:
        return None
    entry = table.nearest(target)
    for num_layers in range(limit + 1):
        if entry.solutions[num_layers].fidelity < threshold - _ESTIMATE_SLACK:
            continue
        polished = _polished_solution_cached(
            decomposer, target, entry, num_layers, gate, family
        )
        if polished.fidelity >= threshold:
            return decomposer._build_decomposition(
                target, polished, gate, family, 1.0, label
            )
    return None


def tabulated_decompose_approximate(
    decomposer: NuOpDecomposer,
    target: np.ndarray,
    gate: Optional[Gate],
    family: Optional[str],
    gate_fidelity: float,
    single_qubit_fidelity: float,
    max_layers: Optional[int],
    label: Optional[str],
    config: TabulationConfig,
):
    """Eq. 2 selection over polished candidates, pruned by estimates.

    Layer counts are polished in descending order of their *estimated*
    ``F_d * F_h`` so the strongest candidate sets the bar first; a layer
    count is skipped when even its upper bound -- the tabulated estimate
    plus the slack a nearby chamber point's estimate can be off by,
    capped at the unit fidelity bound -- times its hardware fidelity
    cannot beat the best polished score.  In the common CZ case this
    polishes the two contending layer counts and prunes the rest.

    The winner is then chosen from *polished* fidelities by replaying the
    classic ascending strict-improvement loop (including its truncation
    at the first exact solution), so the selected layer count matches the
    classic path whenever the polish reproduces the optimised fidelity.
    Returns ``None`` (classic fallback) when nothing was polished.
    """
    limit = decomposer.max_layers if max_layers is None else int(max_layers)
    table = table_for(decomposer, gate, family, config)
    if table is None or limit > table.spec.max_layers:
        return None
    entry = table.nearest(target)

    def hardware(num_layers: int) -> float:
        return gate_fidelity**num_layers * single_qubit_fidelity ** (
            2 * (num_layers + 1)
        )

    order = sorted(
        range(limit + 1),
        key=lambda L: (entry.solutions[L].fidelity * hardware(L), -L),
        reverse=True,
    )
    polished: Dict[int, LayerSolution] = {}
    best_overall = -np.inf
    for num_layers in order:
        factor = hardware(num_layers)
        bound = min(1.0, entry.solutions[num_layers].fidelity + _ESTIMATE_SLACK)
        if factor * bound <= best_overall + 1e-12:
            continue
        candidate = _polished_solution_cached(
            decomposer, target, entry, num_layers, gate, family
        )
        polished[num_layers] = candidate
        best_overall = max(best_overall, candidate.fidelity * factor)
    if not polished:
        return None
    best_solution: Optional[LayerSolution] = None
    best_hardware = 1.0
    best_overall = -np.inf
    for num_layers in sorted(polished):
        candidate = polished[num_layers]
        factor = hardware(num_layers)
        overall = candidate.fidelity * factor
        if overall > best_overall + 1e-12:
            best_overall = overall
            best_solution = candidate
            best_hardware = factor
        if candidate.fidelity >= decomposer.exact_threshold:
            break
    return decomposer._build_decomposition(
        target, best_solution, gate, family, best_hardware, label
    )
