"""Initial qubit placement (layout).

Chooses which physical qubits of a device should host the program qubits.
The procedure follows the standard noise-adaptive recipe the paper's
toolflow inherits from Qiskit/TriQ-style compilers:

1. enumerate connected subsets of the device with the required size,
2. score each subset by the calibrated fidelity of its internal couplers
   (using the best available gate type per edge) and its readout errors,
3. map program qubits to the chosen subset so that frequently-interacting
   program qubits sit on well-connected physical qubits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDAG
from repro.devices.device import Device


@dataclass
class Layout:
    """Result of the placement pass.

    Attributes
    ----------
    physical_qubits:
        Sorted tuple of physical qubit ids hosting the program ("slots").
        Slot ``i`` corresponds to ``physical_qubits[i]``.
    program_to_slot:
        Mapping from program qubit index to slot index.
    """

    physical_qubits: Tuple[int, ...]
    program_to_slot: Dict[int, int]

    @property
    def num_slots(self) -> int:
        """Number of physical qubits in the layout."""
        return len(self.physical_qubits)

    def slot_of(self, program_qubit: int) -> int:
        """Slot hosting ``program_qubit``."""
        return self.program_to_slot[program_qubit]

    def physical_of(self, program_qubit: int) -> int:
        """Physical qubit hosting ``program_qubit``."""
        return self.physical_qubits[self.program_to_slot[program_qubit]]


def score_subset(
    device: Device,
    qubits: Sequence[int],
    gate_type_keys: Optional[Sequence[str]] = None,
) -> float:
    """Score a candidate subset: higher is better.

    The score is the average, over internal couplers, of the best gate
    fidelity available on that coupler, minus the average readout error.
    """
    keys = list(gate_type_keys) if gate_type_keys else device.registered_gate_types
    if not keys:
        keys = ["*"]
    edges = device.topology.subgraph_edges(qubits)
    if not edges:
        return -1.0
    edge_scores = []
    for edge in edges:
        best = max(device.gate_fidelity(key, edge) for key in keys)
        edge_scores.append(best)
    readout = np.mean([device.noise_model.qubit_readout_error(q) for q in qubits])
    # Connectivity bonus: more internal couplers means less routing later.
    connectivity = len(edges) / max(len(qubits), 1)
    return float(np.mean(edge_scores) - readout + 0.05 * connectivity)


def choose_physical_subset(
    device: Device,
    size: int,
    gate_type_keys: Optional[Sequence[str]] = None,
    candidate_limit: int = 200,
) -> Tuple[int, ...]:
    """Pick the best-scoring connected subset of ``size`` physical qubits."""
    candidates = device.topology.connected_subgraphs(size, limit=candidate_limit)
    if not candidates:
        raise ValueError(
            f"device {device.name!r} has no connected subset of {size} qubits"
        )
    scored = [(score_subset(device, subset, gate_type_keys), subset) for subset in candidates]
    scored.sort(key=lambda item: (-item[0], item[1]))
    return tuple(sorted(scored[0][1]))


def assign_program_qubits(
    circuit: QuantumCircuit,
    device: Device,
    physical_qubits: Sequence[int],
) -> Dict[int, int]:
    """Greedy assignment of program qubits to slots of the chosen subset.

    Program qubits are processed in decreasing order of two-qubit
    interaction count and placed on the free physical qubit with the
    highest remaining connectivity to already-placed partners.
    """
    interaction = CircuitDAG(circuit).two_qubit_interaction_graph()
    order = sorted(
        range(circuit.num_qubits),
        key=lambda q: -sum(d.get("weight", 0) for _, _, d in interaction.edges(q, data=True)),
    )
    physical_qubits = list(physical_qubits)
    slot_of_physical = {phys: slot for slot, phys in enumerate(physical_qubits)}
    free = set(physical_qubits)
    placement: Dict[int, int] = {}

    for program_qubit in order:
        best_physical = None
        best_score = -np.inf
        for physical in sorted(free):
            score = 0.0
            for neighbor in interaction.neighbors(program_qubit):
                if neighbor in placement:
                    partner_physical = physical_qubits[placement[neighbor]]
                    distance = device.topology.distance(physical, partner_physical)
                    weight = interaction.edges[program_qubit, neighbor].get("weight", 1)
                    score -= weight * distance
            score += 0.01 * device.topology.degree(physical)
            if score > best_score:
                best_score = score
                best_physical = physical
        free.remove(best_physical)
        placement[program_qubit] = slot_of_physical[best_physical]
    return placement


def choose_layout(
    circuit: QuantumCircuit,
    device: Device,
    gate_type_keys: Optional[Sequence[str]] = None,
    candidate_limit: int = 200,
) -> Layout:
    """Full placement pass: subset selection plus program-qubit assignment."""
    physical = choose_physical_subset(
        device, circuit.num_qubits, gate_type_keys, candidate_limit
    )
    program_to_slot = assign_program_qubits(circuit, device, physical)
    return Layout(physical_qubits=tuple(physical), program_to_slot=program_to_slot)
