"""Composable compiler-pass architecture (the PassManager subsystem).

Figure 1 of the paper describes the toolflow as a staged compiler --
layout, routing, scheduling, NuOp gate decomposition, peephole cleanup --
but the seed implementation hard-coded that sequence across two layers
(:func:`repro.compiler.passes.map_and_route` plus a monolithic
``compile_circuit``).  This module restructures it the way Cirq's
transformer framework does: every stage is a :class:`CompilerPass` with a
uniform ``run(context)`` interface over a shared :class:`PassContext`, a
:class:`PassManager` executes an ordered list of passes (timing each one),
and named :class:`PipelineConfig` entries in a registry describe the
pipelines the experiments select -- ``default``, ``exact``,
``no-cancellation``, ... -- so ablations toggle passes by name instead of
forking code paths.

The ``default`` pipeline reproduces the pre-PassManager monolithic
``compile_circuit`` bit-for-bit (including the order in which gate-type
calibration data is registered on the device, which consumes the device
RNG); ``tests/test_compiler_passes.py`` pins that equivalence against the
retained reference implementation.

Pipelines are also the unit of *cache identity*: a pipeline config has a
content fingerprint (pass list + option overrides) that the compilation
caches combine with the circuit/instruction-set/calibration fingerprints,
so results compiled under different pipelines never collide.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.hashing import hash_scalars
from repro.compiler.cancellation import (
    cancel_adjacent_inverses,
    merge_adjacent_two_qubit_gates,
)
from repro.compiler.euler import SUPPORTED_BASES, rewrite_single_qubit_gates
from repro.compiler.layout import Layout, choose_layout
from repro.compiler.onequbit import merge_single_qubit_gates
from repro.compiler.routing import route_circuit
from repro.compiler.scheduling import Schedule, asap_schedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.core.instruction_sets import InstructionSet
    from repro.devices.device import Device


# ---------------------------------------------------------------------------
# Pass context
# ---------------------------------------------------------------------------


@dataclass
class PassStatistics:
    """Rewrite counters of one pass execution, recorded by the PassManager.

    The manager snapshots the circuit IR around every pass (operation
    count, two-qubit count, depth) and derives the deltas, so every pass
    -- including future ones -- reports what it actually did without
    writing any bookkeeping code.  Removal/merge/fusion counters are the
    negative deltas of the matching snapshot; growth (NuOp splicing in
    decompositions) shows up as ``gates_added``.
    """

    pass_name: str
    wall_time: float = 0.0
    gates_before: int = 0
    gates_after: int = 0
    two_qubit_before: int = 0
    two_qubit_after: int = 0
    depth_before: int = 0
    depth_after: int = 0

    @property
    def gates_removed(self) -> int:
        """Operations the pass eliminated (cancelled, merged or fused away)."""
        return max(self.gates_before - self.gates_after, 0)

    @property
    def gates_added(self) -> int:
        """Operations the pass introduced (SWAP insertion, NuOp splicing)."""
        return max(self.gates_after - self.gates_before, 0)

    @property
    def two_qubit_delta(self) -> int:
        """Change in hardware two-qubit instruction count (negative = removed)."""
        return self.two_qubit_after - self.two_qubit_before

    @property
    def depth_delta(self) -> int:
        """Change in circuit depth (negative = shallower)."""
        return self.depth_after - self.depth_before

    def as_row(self) -> Dict[str, object]:
        """Row for tabular reporting (CLI / study reports)."""
        return {
            "pass": self.pass_name,
            "gates": f"{self.gates_before}->{self.gates_after}",
            "removed": self.gates_removed,
            "added": self.gates_added,
            "2q_delta": self.two_qubit_delta,
            "depth_delta": self.depth_delta,
            "time_ms": round(self.wall_time * 1e3, 2),
        }


def aggregate_pass_stats(
    stats: Sequence[PassStatistics],
) -> "Dict[str, Dict[str, float]]":
    """Fold per-execution pass statistics into per-pass-name totals.

    Used by the experiment engine to report what each pass did across a
    whole study (many circuits x instruction sets).  Keys follow first-seen
    order, which for a fixed pipeline is execution order.
    """
    totals: "Dict[str, Dict[str, float]]" = {}
    for record in stats:
        entry = totals.setdefault(
            record.pass_name,
            {
                "runs": 0,
                "gates_removed": 0,
                "gates_added": 0,
                "two_qubit_delta": 0,
                "depth_delta": 0,
                "wall_time": 0.0,
            },
        )
        entry["runs"] += 1
        entry["gates_removed"] += record.gates_removed
        entry["gates_added"] += record.gates_added
        entry["two_qubit_delta"] += record.two_qubit_delta
        entry["depth_delta"] += record.depth_delta
        entry["wall_time"] += record.wall_time
    return totals


def merge_aggregated_pass_stats(
    target: "Dict[str, Dict[str, float]]",
    source: "Dict[str, Dict[str, float]]",
) -> None:
    """Accumulate one aggregated pass-stats mapping into another, in place."""
    for pass_name, counters in source.items():
        entry = target.setdefault(pass_name, {key: 0 for key in counters})
        for key, value in counters.items():
            entry[key] = entry.get(key, 0) + value


@dataclass
class PassContext:
    """Shared state threaded through every pass of a pipeline.

    A pass reads whatever it needs and writes its products back:
    ``circuit`` is the current IR (replaced by transforming passes),
    the routing passes fill in the layout/mapping fields, the NuOp pass
    accumulates decomposition statistics, and the manager records per-pass
    wall time in ``pass_timings`` plus rewrite counters in ``pass_stats``.
    """

    circuit: QuantumCircuit
    device: Device
    instruction_set: InstructionSet
    decomposer: object  # NuOpDecomposer; typed loosely to avoid an import cycle
    approximate: bool = True
    use_noise_adaptivity: bool = True
    error_scale: float = 1.0
    max_layers: Optional[int] = None

    # Placement/routing products.
    layout: Optional[Layout] = None
    physical_qubits: Tuple[int, ...] = ()
    initial_mapping: Dict[int, int] = field(default_factory=dict)
    final_mapping: Dict[int, int] = field(default_factory=dict)
    num_swaps: int = 0

    # NuOp products.
    gate_type_usage: Dict[str, int] = field(default_factory=dict)
    decomposition_fidelities: List[float] = field(default_factory=list)
    estimated_hardware_fidelity: float = 1.0
    emitted_gate_types: List[str] = field(default_factory=list)

    # Analysis products.
    schedule: Optional[Schedule] = None

    # Bookkeeping filled by the PassManager.
    pass_timings: Dict[str, float] = field(default_factory=dict)
    pass_stats: List[PassStatistics] = field(default_factory=list)

    def scoring_type_keys(self) -> Optional[List[str]]:
        """Gate types that drive placement scoring (``None`` for continuous sets)."""
        if self.instruction_set.is_continuous:
            return None
        return self.instruction_set.type_keys()


# ---------------------------------------------------------------------------
# Passes
# ---------------------------------------------------------------------------


class CompilerPass:
    """Base class: a named transformation or analysis over a :class:`PassContext`."""

    name: str = "pass"

    def run(self, context: PassContext) -> None:
        """Apply the pass, mutating ``context`` in place."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class LayoutPass(CompilerPass):
    """Choose an initial placement of program qubits on device slots.

    Respects a layout pinned on the context (experiments that compare
    instruction sets on identical placements pre-compute one).
    """

    name = "layout"

    def __init__(self, candidate_limit: int = 200):
        self.candidate_limit = candidate_limit

    def run(self, context: PassContext) -> None:
        if context.layout is None:
            context.layout = choose_layout(
                context.circuit,
                context.device,
                context.scoring_type_keys(),
                self.candidate_limit,
            )


class RoutingPass(CompilerPass):
    """Insert SWAPs so every two-qubit operation lands on a device edge."""

    name = "routing"

    def __init__(self, lookahead: int = 10):
        self.lookahead = lookahead

    def run(self, context: PassContext) -> None:
        if context.layout is None:
            raise RuntimeError("RoutingPass requires a layout (run LayoutPass first)")
        routed = route_circuit(
            context.circuit, context.device, context.layout, lookahead=self.lookahead
        )
        context.circuit = routed.circuit
        context.physical_qubits = tuple(routed.physical_qubits)
        context.initial_mapping = routed.initial_mapping
        context.final_mapping = routed.final_mapping
        context.num_swaps = routed.num_swaps


class NuOpDecompositionPass(CompilerPass):
    """Decompose every two-qubit operation for the target instruction set.

    Wraps :class:`repro.core.pipeline.NuOpPass` (the paper's NuOp stage)
    and registers calibration data for the gate types the decomposition
    emitted -- in the same order the monolithic ``compile_circuit`` did,
    so the device's calibration RNG advances identically.
    """

    name = "nuop"

    def run(self, context: PassContext) -> None:
        from repro.core.pipeline import NuOpPass  # deferred: import cycle

        nuop = NuOpPass(
            context.instruction_set,
            decomposer=context.decomposer,
            approximate=context.approximate,
            use_noise_adaptivity=context.use_noise_adaptivity,
            max_layers=context.max_layers,
        )
        decomposed, usage, fidelities, hardware_estimate = nuop.run(
            context.circuit, context.device, context.physical_qubits
        )
        context.circuit = decomposed
        context.gate_type_usage = usage
        context.decomposition_fidelities = fidelities
        context.estimated_hardware_fidelity = hardware_estimate

        # Continuous families emit freshly-parameterised gates; register
        # calibration data so the noise model can simulate them.  Recorded
        # on the context so cache hits can replay the registrations even
        # when later passes (cancellation) remove some of the gates.
        emitted = sorted(
            {op.gate.type_key for op in decomposed if op.is_two_qubit}
        )
        context.device.ensure_gate_types(emitted, scale=context.error_scale)
        context.emitted_gate_types = emitted


class SingleQubitMergePass(CompilerPass):
    """Merge runs of adjacent single-qubit gates into one ``U3`` rotation."""

    name = "merge-1q"

    def run(self, context: PassContext) -> None:
        context.circuit = merge_single_qubit_gates(context.circuit)


class CancellationPass(CompilerPass):
    """Remove adjacent gate pairs that compose to the identity."""

    name = "cancel"

    def run(self, context: PassContext) -> None:
        context.circuit = cancel_adjacent_inverses(context.circuit)


class TwoQubitFusionPass(CompilerPass):
    """Fuse runs of two-qubit gates on one pair into a single SU(4) block.

    Placed before NuOp it hands the decomposer one larger block (e.g. a
    QAOA layer plus its routing SWAP) instead of several small ones.
    """

    name = "fuse-2q"

    def run(self, context: PassContext) -> None:
        context.circuit = merge_adjacent_two_qubit_gates(context.circuit)


class EulerMergePass(CompilerPass):
    """Rewrite single-qubit gates into an Euler basis (``zxz``/``zyz``/``u3``).

    The ``zxz`` basis matches superconducting hardware: Z rotations are
    virtual frame updates, only the X pulses cost time and error.
    """

    name = "euler"

    def __init__(self, basis: str = "zxz"):
        if basis not in SUPPORTED_BASES:
            raise ValueError(f"basis must be one of {SUPPORTED_BASES}, got {basis!r}")
        self.basis = basis
        self.name = f"euler:{basis}"

    def run(self, context: PassContext) -> None:
        context.circuit = rewrite_single_qubit_gates(context.circuit, basis=self.basis)


class SchedulingPass(CompilerPass):
    """Analysis pass: ASAP-schedule the circuit with calibrated durations."""

    name = "schedule"

    def run(self, context: PassContext) -> None:
        context.schedule = asap_schedule(context.circuit, context.device.noise_model)


# ---------------------------------------------------------------------------
# Pass manager
# ---------------------------------------------------------------------------


class PassManager:
    """Execute an ordered list of passes over a context, timing each one."""

    def __init__(self, passes: Sequence[CompilerPass], name: str = "custom"):
        self.passes = list(passes)
        self.name = name

    def run(self, context: PassContext) -> PassContext:
        """Run every pass in order, recording wall time and rewrite counters.

        Per-pass wall time lands in ``pass_timings``; a
        :class:`PassStatistics` record per execution (IR snapshots around
        the pass, so removals/merges/fusions and depth deltas are derived
        uniformly) lands in ``pass_stats``.

        When ``REPRO_VERIFY_PASSES`` is set (re-read per run, so a
        long-lived daemon can toggle it), the IR invariants of
        :func:`repro.analysis.circuit_checks.verify_pass_context` are
        re-checked after **every** pass and a
        :class:`~repro.analysis.circuit_checks.PassVerificationError`
        names the first pass that broke one.  The checks are read-only
        and consume no device RNG: verified compiles are bit-identical
        to unverified ones (pinned by a CI determinism re-run).
        """
        from repro.analysis.circuit_checks import (
            PassVerificationError,
            verify_pass_context,
            verify_passes_enabled,
        )

        verify = verify_passes_enabled()
        for compiler_pass in self.passes:
            record = PassStatistics(
                pass_name=compiler_pass.name,
                gates_before=len(context.circuit),
                two_qubit_before=context.circuit.num_two_qubit_gates(),
                depth_before=context.circuit.depth(),
            )
            start = time.perf_counter()
            compiler_pass.run(context)
            record.wall_time = time.perf_counter() - start
            record.gates_after = len(context.circuit)
            record.two_qubit_after = context.circuit.num_two_qubit_gates()
            record.depth_after = context.circuit.depth()
            context.pass_stats.append(record)
            context.pass_timings[compiler_pass.name] = (
                context.pass_timings.get(compiler_pass.name, 0.0) + record.wall_time
            )
            if verify:
                findings = verify_pass_context(context)
                if findings:
                    raise PassVerificationError(
                        self.name, compiler_pass.name, findings
                    )
        return context

    def pass_names(self) -> List[str]:
        """Names of the managed passes, in execution order."""
        return [compiler_pass.name for compiler_pass in self.passes]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PassManager {self.name!r}: {' -> '.join(self.pass_names())}>"


# ---------------------------------------------------------------------------
# Pass specs and pipeline configurations
# ---------------------------------------------------------------------------

_PASS_FACTORIES: Dict[str, Callable[..., CompilerPass]] = {
    "layout": LayoutPass,
    "routing": RoutingPass,
    "nuop": NuOpDecompositionPass,
    "merge-1q": SingleQubitMergePass,
    "cancel": CancellationPass,
    "fuse-2q": TwoQubitFusionPass,
    "euler": EulerMergePass,
    "schedule": SchedulingPass,
}


def build_pass(spec: str) -> CompilerPass:
    """Instantiate a pass from a spec string (``"nuop"``, ``"euler:zxz"``, ...).

    A spec is a factory name optionally followed by ``:argument`` (only the
    Euler pass takes one today: its basis).
    """
    name, _, argument = spec.partition(":")
    factory = _PASS_FACTORIES.get(name)
    if factory is None:
        raise KeyError(
            f"unknown compiler pass {name!r}; known passes: {sorted(_PASS_FACTORIES)}"
        )
    if argument:
        return factory(argument)
    return factory()


@dataclass(frozen=True)
class PipelineConfig:
    """A named, content-addressable pipeline: pass specs + option overrides.

    ``overrides`` force compilation options regardless of the caller's
    arguments (the ``exact`` pipeline forces ``approximate=False``); that
    is what makes selecting a pipeline equivalent to forking the code
    path, without the fork.
    """

    name: str
    passes: Tuple[str, ...]
    overrides: Mapping[str, object] = field(default_factory=dict)
    description: str = ""

    def fingerprint(self) -> str:
        """Content digest of the pipeline (pass list + overrides, not the name).

        Two names bound to identical content hash identically, so renamed
        aliases share compilation-cache entries.
        """
        flat: List[object] = ["pipeline", *self.passes]
        for key in sorted(self.overrides):
            flat.extend((key, self.overrides[key]))
        return hash_scalars(*flat)

    def build(self, merge_single_qubit: bool = True) -> PassManager:
        """Materialise the pass manager.

        ``merge_single_qubit=False`` (the legacy ``compile_circuit`` flag)
        drops every ``merge-1q`` pass, preserving the old toggle without a
        separate pipeline per flag combination.
        """
        specs = [
            spec
            for spec in self.passes
            if merge_single_qubit or spec != SingleQubitMergePass.name
        ]
        return PassManager([build_pass(spec) for spec in specs], name=self.name)


_DEVICE_MAPPING = ("layout", "routing")

_PIPELINES: "Dict[str, PipelineConfig]" = {}


def register_pipeline(config: PipelineConfig, replace: bool = False) -> PipelineConfig:
    """Add a pipeline to the registry (``replace=True`` to overwrite)."""
    if config.name in _PIPELINES and not replace:
        raise ValueError(f"pipeline {config.name!r} is already registered")
    for spec in config.passes:
        build_pass(spec)  # validate eagerly so typos fail at registration
    _PIPELINES[config.name] = config
    return config


def resolve_pipeline(pipeline: object) -> PipelineConfig:
    """Look up a pipeline by name, or pass a :class:`PipelineConfig` through."""
    if isinstance(pipeline, PipelineConfig):
        return pipeline
    config = _PIPELINES.get(str(pipeline))
    if config is None:
        raise KeyError(
            f"unknown pipeline {pipeline!r}; available: {sorted(_PIPELINES)}"
        )
    return config


def available_pipelines() -> Dict[str, PipelineConfig]:
    """Registered pipelines, by name (a copy; mutate via ``register_pipeline``)."""
    return dict(_PIPELINES)


for _config in (
    PipelineConfig(
        name="default",
        passes=(*_DEVICE_MAPPING, "nuop", "merge-1q"),
        description="the paper's Figure 1 toolflow (bit-identical to the "
        "pre-PassManager monolithic compile_circuit)",
    ),
    PipelineConfig(
        name="exact",
        passes=(*_DEVICE_MAPPING, "nuop", "merge-1q"),
        overrides={"approximate": False},
        description="default with exact (machine-precision) NuOp decompositions",
    ),
    PipelineConfig(
        name="no-merge",
        passes=(*_DEVICE_MAPPING, "nuop"),
        description="default without single-qubit merging (raw NuOp output)",
    ),
    PipelineConfig(
        name="optimized",
        passes=(*_DEVICE_MAPPING, "nuop", "cancel", "merge-1q"),
        description="default plus peephole cancellation of adjacent inverses",
    ),
    PipelineConfig(
        name="no-cancellation",
        passes=(*_DEVICE_MAPPING, "nuop", "merge-1q"),
        description="ablation partner of 'optimized': identical but for the "
        "cancellation pass (content-equal to 'default')",
    ),
    PipelineConfig(
        name="fused",
        passes=(*_DEVICE_MAPPING, "fuse-2q", "nuop", "merge-1q"),
        description="fuse two-qubit runs into SU(4) blocks before NuOp "
        "(the G7/R5 joint-decomposition effect)",
    ),
    PipelineConfig(
        name="euler-zxz",
        passes=(*_DEVICE_MAPPING, "nuop", "cancel", "merge-1q", "euler:zxz"),
        description="hardware-realistic output: virtual-Z framed pulses",
    ),
    PipelineConfig(
        name="scheduled",
        passes=(*_DEVICE_MAPPING, "nuop", "merge-1q", "schedule"),
        description="default plus an ASAP schedule with calibrated durations",
    ),
):
    register_pipeline(_config)
del _config
