"""Gate-cancellation passes.

NuOp emits decompositions operation by operation, and routing splices SWAP
networks between them; simple peephole cleanup recovers some of the
resulting redundancy before simulation:

* :func:`cancel_adjacent_inverses` -- removes back-to-back pairs of gates
  that multiply to the identity (e.g. ``CZ; CZ`` or ``CX; CX`` emitted by
  adjacent decompositions),
* :func:`merge_adjacent_two_qubit_gates` -- fuses runs of two-qubit gates
  acting on the same qubit pair into a single unitary operation, giving
  NuOp one larger block to decompose instead of several small ones,
* :func:`optimize_circuit` -- the standard cleanup pipeline (cancellation,
  fusion, single-qubit merging) used by the experiments' ablations.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.circuits.circuit import Operation, QuantumCircuit
from repro.circuits.gate import unitary_gate
from repro.compiler.onequbit import merge_single_qubit_gates
from repro.gates.unitary import allclose_up_to_global_phase


def _is_identity_product(a: Operation, b: Operation, atol: float) -> bool:
    """True when applying ``a`` then ``b`` on the same qubits is the identity."""
    if a.qubits != b.qubits:
        return False
    product = b.gate.matrix @ a.gate.matrix
    return allclose_up_to_global_phase(product, np.eye(product.shape[0]), atol=atol)


def cancel_adjacent_inverses(circuit: QuantumCircuit, atol: float = 1e-9) -> QuantumCircuit:
    """Remove adjacent gate pairs that compose to the identity.

    "Adjacent" means no intervening operation touches any of the pair's
    qubits.  The pass iterates until no further cancellation is found, so
    chains like ``CZ; CZ; CZ; CZ`` collapse completely.
    """
    operations = list(circuit.operations)
    changed = True
    while changed:
        changed = False
        kept: List[Optional[Operation]] = list(operations)
        for index, operation in enumerate(kept):
            if operation is None:
                continue
            blocked = set()
            for later_index in range(index + 1, len(kept)):
                later = kept[later_index]
                if later is None:
                    continue
                if set(later.qubits) & set(operation.qubits):
                    if later.qubits == operation.qubits and not blocked and _is_identity_product(
                        operation, later, atol
                    ):
                        kept[index] = None
                        kept[later_index] = None
                        changed = True
                    break
                # Unrelated qubits: keep scanning past it.
            if changed:
                break
        operations = [operation for operation in kept if operation is not None]

    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for operation in operations:
        result.append_operation(operation)
    return result


def merge_adjacent_two_qubit_gates(
    circuit: QuantumCircuit, drop_identities: bool = True, atol: float = 1e-9
) -> QuantumCircuit:
    """Fuse runs of two-qubit gates on the same (unordered) qubit pair.

    Single-qubit gates on either qubit of the pair are absorbed into the
    fused block as well, so a QAOA layer followed by its routing SWAP
    becomes one SU(4) block -- which NuOp then decomposes jointly, usually
    saving hardware gates (the effect behind the G7/R5 SWAP results).
    """
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    operations = list(circuit.operations)
    index = 0
    while index < len(operations):
        operation = operations[index]
        if not operation.is_two_qubit:
            result.append_operation(operation)
            index += 1
            continue

        pair = tuple(operation.qubits)
        pair_set = set(pair)
        block = np.eye(4, dtype=complex)

        def embed(op: Operation) -> np.ndarray:
            if op.is_two_qubit:
                if op.qubits == pair:
                    return op.gate.matrix
                # Same pair, swapped order: conjugate by SWAP.
                swap = np.array(
                    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
                )
                return swap @ op.gate.matrix @ swap
            single = op.gate.matrix
            if op.qubits[0] == pair[0]:
                return np.kron(single, np.eye(2))
            return np.kron(np.eye(2), single)

        scan = index
        while scan < len(operations):
            candidate = operations[scan]
            touched = set(candidate.qubits)
            if not touched <= pair_set:
                if touched & pair_set:
                    break
                # Disjoint operation: cannot be reordered safely without a
                # dependency analysis, so close the block here.
                break
            block = embed(candidate) @ block
            scan += 1

        if scan == index + 1:
            result.append_operation(operation)
            index += 1
            continue
        if drop_identities and allclose_up_to_global_phase(block, np.eye(4), atol=atol):
            index = scan
            continue
        result.append(unitary_gate(block, name="fused_su4"), list(pair))
        index = scan
    return result


def optimize_circuit(
    circuit: QuantumCircuit,
    cancel_inverses: bool = True,
    fuse_two_qubit_blocks: bool = False,
    merge_single_qubit: bool = True,
) -> QuantumCircuit:
    """Standard peephole cleanup pipeline.

    The two-qubit fusion step is off by default because it changes the
    granularity of the operations NuOp sees (it is exercised explicitly by
    the compilation ablation benchmarks).
    """
    result = circuit
    if cancel_inverses:
        result = cancel_adjacent_inverses(result)
    if fuse_two_qubit_blocks:
        result = merge_adjacent_two_qubit_gates(result)
    if merge_single_qubit:
        result = merge_single_qubit_gates(result)
    return result
