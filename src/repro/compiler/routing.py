"""SWAP-insertion routing (a lightweight SABRE-style router).

After placement, two-qubit operations may act on program qubits whose
physical hosts are not adjacent.  The router walks the circuit's
dependency DAG and, whenever the front layer contains no executable
two-qubit operation, inserts the SWAP that most reduces the total
distance of pending operations (with a small lookahead window, as in the
SABRE heuristic the Qiskit transpiler uses).

The routed circuit is expressed on *slots* (indices into the layout's
physical-qubit tuple); inserted SWAPs appear as explicit ``swap``
operations which NuOp later decomposes into hardware gate types unless
the instruction set includes a native SWAP (R5/G7 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Operation, QuantumCircuit
from repro.circuits.dag import CircuitDAG
from repro.circuits.gate import named_gate
from repro.compiler.layout import Layout
from repro.devices.device import Device


@dataclass
class RoutedCircuit:
    """Output of the routing pass.

    Attributes
    ----------
    circuit:
        Circuit on ``len(physical_qubits)`` slots; slot ``i`` is backed by
        ``physical_qubits[i]``.
    physical_qubits:
        Physical qubit id per slot.
    initial_mapping / final_mapping:
        Program qubit -> slot before and after execution (SWAPs permute the
        mapping).  ``final_mapping`` is needed to un-permute measured
        distributions before comparing with the ideal program output.
    num_swaps:
        Number of SWAP operations inserted.
    """

    circuit: QuantumCircuit
    physical_qubits: Tuple[int, ...]
    initial_mapping: Dict[int, int]
    final_mapping: Dict[int, int]
    num_swaps: int = 0

    def slot_permutation(self) -> List[int]:
        """``perm[slot]`` = program qubit currently hosted by ``slot`` (or -1)."""
        permutation = [-1] * len(self.physical_qubits)
        for program_qubit, slot in self.final_mapping.items():
            permutation[slot] = program_qubit
        return permutation


def _distance_between_slots(
    device: Device, physical_qubits: Sequence[int], slot_a: int, slot_b: int
) -> int:
    return device.topology.distance(physical_qubits[slot_a], physical_qubits[slot_b])


def route_circuit(
    circuit: QuantumCircuit,
    device: Device,
    layout: Layout,
    lookahead: int = 10,
    max_iterations_factor: int = 100,
) -> RoutedCircuit:
    """Insert SWAPs so that every two-qubit operation acts on adjacent qubits."""
    physical_qubits = list(layout.physical_qubits)
    num_slots = len(physical_qubits)
    mapping: Dict[int, int] = dict(layout.program_to_slot)

    dag = CircuitDAG(circuit)
    remaining_preds = {node: dag.graph.in_degree(node) for node in dag.graph.nodes}
    front = [node for node, degree in remaining_preds.items() if degree == 0]
    front.sort()

    routed = QuantumCircuit(num_slots, name=f"{circuit.name}_routed")
    swap_gate = named_gate("swap")
    num_swaps = 0

    # Edges internal to the layout subset, expressed in slot indices.
    slot_of_physical = {phys: slot for slot, phys in enumerate(physical_qubits)}
    slot_edges = [
        (slot_of_physical[a], slot_of_physical[b])
        for a, b in device.topology.subgraph_edges(physical_qubits)
    ]

    def executable(node: int) -> bool:
        operation = dag.operation(node)
        if not operation.is_two_qubit:
            return True
        slot_a = mapping[operation.qubits[0]]
        slot_b = mapping[operation.qubits[1]]
        return device.topology.are_connected(
            physical_qubits[slot_a], physical_qubits[slot_b]
        )

    def emit(node: int) -> None:
        operation = dag.operation(node)
        slots = tuple(mapping[q] for q in operation.qubits)
        routed.append(operation.gate, slots)

    def advance(node: int) -> None:
        for successor in dag.graph.successors(node):
            remaining_preds[successor] -= 1
            if remaining_preds[successor] == 0:
                front.append(successor)

    pending_limit = max_iterations_factor * max(len(circuit), 1)
    iterations = 0
    while front:
        iterations += 1
        if iterations > pending_limit:
            raise RuntimeError("routing failed to converge; check device connectivity")

        progressed = False
        for node in sorted(front):
            if executable(node):
                front.remove(node)
                emit(node)
                advance(node)
                progressed = True
                break
        if progressed:
            continue

        # No executable operation: insert the best SWAP for the blocked front
        # layer plus a lookahead window of upcoming two-qubit operations.
        blocked = [dag.operation(node) for node in front if dag.operation(node).is_two_qubit]
        upcoming: List[Operation] = []
        for node in sorted(dag.graph.nodes):
            if remaining_preds.get(node, 0) > 0 and dag.operation(node).is_two_qubit:
                upcoming.append(dag.operation(node))
                if len(upcoming) >= lookahead:
                    break

        def cost(current_mapping: Dict[int, int]) -> float:
            total = 0.0
            for operation in blocked:
                total += _distance_between_slots(
                    device,
                    physical_qubits,
                    current_mapping[operation.qubits[0]],
                    current_mapping[operation.qubits[1]],
                )
            for weight, operation in enumerate(upcoming):
                decay = 0.5 / (1 + weight)
                total += decay * _distance_between_slots(
                    device,
                    physical_qubits,
                    current_mapping[operation.qubits[0]],
                    current_mapping[operation.qubits[1]],
                )
            return total

        slot_to_program = {slot: prog for prog, slot in mapping.items()}
        best_swap: Optional[Tuple[int, int]] = None
        best_cost = cost(mapping)
        involved_slots = {mapping[q] for op in blocked for q in op.qubits}
        for slot_a, slot_b in slot_edges:
            if slot_a not in involved_slots and slot_b not in involved_slots:
                continue
            trial = dict(mapping)
            prog_a = slot_to_program.get(slot_a)
            prog_b = slot_to_program.get(slot_b)
            if prog_a is not None:
                trial[prog_a] = slot_b
            if prog_b is not None:
                trial[prog_b] = slot_a
            trial_cost = cost(trial)
            if trial_cost < best_cost - 1e-9:
                best_cost = trial_cost
                best_swap = (slot_a, slot_b)
        if best_swap is None:
            # Fall back to the swap along the shortest path of the first
            # blocked operation (guarantees progress).
            operation = blocked[0]
            slot_a = mapping[operation.qubits[0]]
            slot_b = mapping[operation.qubits[1]]
            path = device.topology.shortest_path(
                physical_qubits[slot_a], physical_qubits[slot_b]
            )
            best_swap = (slot_of_physical[path[0]], slot_of_physical[path[1]])

        slot_a, slot_b = best_swap
        routed.append(swap_gate, (slot_a, slot_b))
        num_swaps += 1
        prog_a = slot_to_program.get(slot_a)
        prog_b = slot_to_program.get(slot_b)
        if prog_a is not None:
            mapping[prog_a] = slot_b
        if prog_b is not None:
            mapping[prog_b] = slot_a

    return RoutedCircuit(
        circuit=routed,
        physical_qubits=tuple(physical_qubits),
        initial_mapping=dict(layout.program_to_slot),
        final_mapping=mapping,
        num_swaps=num_swaps,
    )
