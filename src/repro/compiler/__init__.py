"""Compiler: PassManager pipelines plus placement, routing, scheduling, cleanup."""

from repro.compiler.manager import (
    CancellationPass,
    CompilerPass,
    EulerMergePass,
    LayoutPass,
    NuOpDecompositionPass,
    PassContext,
    PassManager,
    PipelineConfig,
    RoutingPass,
    SchedulingPass,
    SingleQubitMergePass,
    TwoQubitFusionPass,
    available_pipelines,
    build_pass,
    register_pipeline,
    resolve_pipeline,
)
from repro.compiler.layout import (
    Layout,
    choose_layout,
    choose_physical_subset,
    assign_program_qubits,
    score_subset,
)
from repro.compiler.routing import RoutedCircuit, route_circuit
from repro.compiler.scheduling import Schedule, ScheduledOperation, asap_schedule
from repro.compiler.onequbit import (
    merge_single_qubit_gates,
    strip_identities,
    count_single_qubit_layers,
)
from repro.compiler.passes import map_and_route

__all__ = [
    "CancellationPass",
    "CompilerPass",
    "EulerMergePass",
    "LayoutPass",
    "NuOpDecompositionPass",
    "PassContext",
    "PassManager",
    "PipelineConfig",
    "RoutingPass",
    "SchedulingPass",
    "SingleQubitMergePass",
    "TwoQubitFusionPass",
    "available_pipelines",
    "build_pass",
    "register_pipeline",
    "resolve_pipeline",
    "Layout",
    "choose_layout",
    "choose_physical_subset",
    "assign_program_qubits",
    "score_subset",
    "RoutedCircuit",
    "route_circuit",
    "Schedule",
    "ScheduledOperation",
    "asap_schedule",
    "merge_single_qubit_gates",
    "strip_identities",
    "count_single_qubit_layers",
    "map_and_route",
]
