"""Device-mapping compiler passes: placement, routing, scheduling, 1Q merging."""

from repro.compiler.layout import (
    Layout,
    choose_layout,
    choose_physical_subset,
    assign_program_qubits,
    score_subset,
)
from repro.compiler.routing import RoutedCircuit, route_circuit
from repro.compiler.scheduling import Schedule, ScheduledOperation, asap_schedule
from repro.compiler.onequbit import (
    merge_single_qubit_gates,
    strip_identities,
    count_single_qubit_layers,
)
from repro.compiler.passes import map_and_route

__all__ = [
    "Layout",
    "choose_layout",
    "choose_physical_subset",
    "assign_program_qubits",
    "score_subset",
    "RoutedCircuit",
    "route_circuit",
    "Schedule",
    "ScheduledOperation",
    "asap_schedule",
    "merge_single_qubit_gates",
    "strip_identities",
    "count_single_qubit_layers",
    "map_and_route",
]
