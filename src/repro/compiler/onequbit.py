"""Single-qubit gate optimisation.

Merges runs of consecutive single-qubit gates on the same qubit into one
``U3`` rotation (or removes them when the product is the identity).  NuOp
decompositions interleave many single-qubit rotations; merging them before
simulation keeps the single-qubit gate count (and therefore the simulated
single-qubit error contribution) comparable to what an optimising vendor
compiler would execute.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.circuits.circuit import Operation, QuantumCircuit
from repro.circuits.gate import u3_gate
from repro.gates.unitary import allclose_up_to_global_phase, u3_angles_from_unitary


def merge_single_qubit_gates(circuit: QuantumCircuit, drop_identities: bool = True) -> QuantumCircuit:
    """Return an equivalent circuit with adjacent single-qubit gates merged.

    Runs of single-qubit gates on one qubit are multiplied together and
    re-emitted as a single ``U3`` gate immediately before the next
    multi-qubit operation on that qubit (or at the end of the circuit).
    Products equal to the identity are dropped when ``drop_identities``.
    """
    merged = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    pending: Dict[int, np.ndarray] = {}

    def flush(qubit: int) -> None:
        matrix = pending.pop(qubit, None)
        if matrix is None:
            return
        if drop_identities and allclose_up_to_global_phase(matrix, np.eye(2), atol=1e-9):
            return
        alpha, beta, lam = u3_angles_from_unitary(matrix)
        merged.append(u3_gate(alpha, beta, lam), [qubit])

    for operation in circuit:
        if len(operation.qubits) == 1:
            qubit = operation.qubits[0]
            accumulated = pending.get(qubit, np.eye(2, dtype=complex))
            pending[qubit] = operation.gate.matrix @ accumulated
        else:
            for qubit in operation.qubits:
                flush(qubit)
            merged.append_operation(operation)
    for qubit in sorted(list(pending)):
        flush(qubit)
    return merged


def count_single_qubit_layers(circuit: QuantumCircuit) -> int:
    """Number of single-qubit operations (diagnostic helper for tests)."""
    return sum(1 for operation in circuit if len(operation.qubits) == 1)


def strip_identities(circuit: QuantumCircuit, atol: float = 1e-9) -> QuantumCircuit:
    """Remove operations whose matrices are the identity up to global phase."""
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for operation in circuit:
        dim = operation.gate.matrix.shape[0]
        if allclose_up_to_global_phase(operation.gate.matrix, np.eye(dim), atol=atol):
            continue
        result.append_operation(operation)
    return result
