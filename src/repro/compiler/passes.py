"""Legacy device-mapping orchestration (superseded by the PassManager).

Figure 1 of the paper splits the compiler into (i) qubit mapping, routing
and scheduling and (ii) the NuOp gate-decomposition stage.
:func:`map_and_route` used to orchestrate stage (i) for the monolithic
``compile_circuit``; the whole toolflow is now expressed as composable
passes in :mod:`repro.compiler.manager` (``LayoutPass`` + ``RoutingPass``
replace this module), and standalone use of :func:`map_and_route` is
deprecated.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.layout import Layout, choose_layout
from repro.compiler.routing import RoutedCircuit, route_circuit
from repro.devices.device import Device


def map_and_route(
    circuit: QuantumCircuit,
    device: Device,
    gate_type_keys: Optional[Sequence[str]] = None,
    layout: Optional[Layout] = None,
    candidate_limit: int = 200,
    lookahead: int = 10,
) -> RoutedCircuit:
    """Run placement and routing, returning a routed circuit on device slots.

    .. deprecated::
        Use the PassManager pipelines instead -- ``compile_circuit`` with a
        pipeline name, or ``LayoutPass``/``RoutingPass`` from
        :mod:`repro.compiler.manager` for stage-level control.  This
        wrapper remains for scripts that only need placement + routing.

    Parameters
    ----------
    circuit:
        Application circuit on program qubits.
    device:
        Target device (calibration data must already be registered for the
        gate types used to score candidate placements).
    gate_type_keys:
        Gate types whose calibrated fidelities drive placement scoring
        (defaults to every registered type).
    layout:
        Optional pre-computed layout (used by experiments that compare
        instruction sets on identical placements).
    """
    warnings.warn(
        "map_and_route is deprecated; use compile_circuit with a pipeline name "
        "or the LayoutPass/RoutingPass passes from repro.compiler.manager",
        DeprecationWarning,
        stacklevel=2,
    )
    if layout is None:
        layout = choose_layout(circuit, device, gate_type_keys, candidate_limit)
    return route_circuit(circuit, device, layout, lookahead=lookahead)
