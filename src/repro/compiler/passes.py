"""Pass orchestration for the device-mapping stage of the toolflow.

Figure 1 of the paper splits the compiler into (i) qubit mapping, routing
and scheduling and (ii) the NuOp gate-decomposition stage.  This module
orchestrates stage (i); stage (ii) lives in :mod:`repro.core.pipeline`
which layers NuOp on top of the routed circuit produced here.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.layout import Layout, choose_layout
from repro.compiler.routing import RoutedCircuit, route_circuit
from repro.devices.device import Device


def map_and_route(
    circuit: QuantumCircuit,
    device: Device,
    gate_type_keys: Optional[Sequence[str]] = None,
    layout: Optional[Layout] = None,
    candidate_limit: int = 200,
    lookahead: int = 10,
) -> RoutedCircuit:
    """Run placement and routing, returning a routed circuit on device slots.

    Parameters
    ----------
    circuit:
        Application circuit on program qubits.
    device:
        Target device (calibration data must already be registered for the
        gate types used to score candidate placements).
    gate_type_keys:
        Gate types whose calibrated fidelities drive placement scoring
        (defaults to every registered type).
    layout:
        Optional pre-computed layout (used by experiments that compare
        instruction sets on identical placements).
    """
    if layout is None:
        layout = choose_layout(circuit, device, gate_type_keys, candidate_limit)
    return route_circuit(circuit, device, layout, lookahead=lookahead)
