"""Euler-basis rewriting of single-qubit gates.

Superconducting hardware executes single-qubit rotations as ``Rz``-framed
pulses: Z rotations are "virtual" (implemented as a phase-frame update, at
zero cost and zero error, McKay et al.) and only the X/Y rotations consume
pulse time.  This pass rewrites every single-qubit gate into an Euler
sequence -- ``Rz Ry Rz`` (``zyz``), ``Rz Rx Rz Rx Rz`` (``zxz``, the
hardware ``U3`` realisation with two ``sqrt(X)`` pulses) or a single ``U3``
-- and reports the number of *physical* (non-virtual) pulses, which is the
quantity an error model should charge for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.circuits.circuit import Operation, QuantumCircuit
from repro.circuits.gate import rx_gate, ry_gate, rz_gate, u3_gate
from repro.gates.unitary import allclose_up_to_global_phase, u3_angles_from_unitary, zyz_angles

SUPPORTED_BASES = ("zyz", "zxz", "u3")

_ANGLE_ATOL = 1e-9


def _wrap_angle(angle: float) -> float:
    """Wrap an angle into ``(-pi, pi]`` so near-zero rotations can be dropped."""
    wrapped = math.remainder(angle, 2.0 * math.pi)
    return wrapped


def _is_zero(angle: float) -> bool:
    return abs(_wrap_angle(angle)) < _ANGLE_ATOL


def euler_operations(matrix: np.ndarray, qubit: int, basis: str = "zyz") -> List[Operation]:
    """Euler-sequence operations implementing a single-qubit unitary.

    Near-zero rotations are omitted, so e.g. a plain ``Rz`` stays a single
    operation in the ``zyz`` basis.
    """
    if basis not in SUPPORTED_BASES:
        raise ValueError(f"basis must be one of {SUPPORTED_BASES}, got {basis!r}")
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError("euler_operations expects a single-qubit matrix")

    if basis == "u3":
        if allclose_up_to_global_phase(matrix, np.eye(2), atol=_ANGLE_ATOL):
            return []
        alpha, beta, lam = u3_angles_from_unitary(matrix)
        return [Operation(u3_gate(alpha, beta, lam), (qubit,))]

    alpha, theta, beta, _ = zyz_angles(matrix)
    alpha, theta, beta = _wrap_angle(alpha), _wrap_angle(theta), _wrap_angle(beta)

    operations: List[Operation] = []
    if basis == "zyz":
        if _is_zero(theta):
            combined = _wrap_angle(alpha + beta)
            if not _is_zero(combined):
                operations.append(Operation(rz_gate(combined), (qubit,)))
            return operations
        if not _is_zero(beta):
            operations.append(Operation(rz_gate(beta), (qubit,)))
        operations.append(Operation(ry_gate(theta), (qubit,)))
        if not _is_zero(alpha):
            operations.append(Operation(rz_gate(alpha), (qubit,)))
        return operations

    # zxz: Ry(theta) = Rz(pi/2) Rx(theta) Rz(-pi/2); fold the fixed frames
    # into the neighbouring virtual-Z rotations.
    half_pi = math.pi / 2.0
    first_z = _wrap_angle(beta - half_pi)
    last_z = _wrap_angle(alpha + half_pi)
    if _is_zero(theta):
        combined = _wrap_angle(alpha + beta)
        if not _is_zero(combined):
            operations.append(Operation(rz_gate(combined), (qubit,)))
        return operations
    if not _is_zero(first_z):
        operations.append(Operation(rz_gate(first_z), (qubit,)))
    operations.append(Operation(rx_gate(theta), (qubit,)))
    if not _is_zero(last_z):
        operations.append(Operation(rz_gate(last_z), (qubit,)))
    return operations


def rewrite_single_qubit_gates(circuit: QuantumCircuit, basis: str = "zyz") -> QuantumCircuit:
    """Rewrite every single-qubit gate of ``circuit`` into the chosen Euler basis."""
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for operation in circuit:
        if len(operation.qubits) != 1:
            result.append_operation(operation)
            continue
        for euler_operation in euler_operations(
            operation.gate.matrix, operation.qubits[0], basis=basis
        ):
            result.append_operation(euler_operation)
    return result


@dataclass(frozen=True)
class PulseCost:
    """Physical pulse accounting of a circuit after Euler rewriting.

    ``virtual_z`` rotations are free frame updates; ``physical_pulses``
    counts the Rx/Ry/U3 gates that consume pulse time and contribute
    single-qubit error.
    """

    virtual_z: int
    physical_pulses: int
    two_qubit_gates: int

    @property
    def total_error_weight(self) -> int:
        """Operations that contribute error (physical 1Q pulses + 2Q gates)."""
        return self.physical_pulses + self.two_qubit_gates


def pulse_cost(circuit: QuantumCircuit, basis: str = "zxz") -> PulseCost:
    """Count virtual-Z frame updates vs physical pulses after Euler rewriting."""
    rewritten = rewrite_single_qubit_gates(circuit, basis=basis)
    virtual = 0
    physical = 0
    two_qubit = 0
    for operation in rewritten:
        if operation.is_two_qubit:
            two_qubit += 1
        elif operation.gate.name == "rz":
            virtual += 1
        else:
            physical += 1
    return PulseCost(virtual_z=virtual, physical_pulses=physical, two_qubit_gates=two_qubit)
