"""Persistent on-disk compilation *and simulation* cache (the disk tier).

The in-memory :class:`~repro.core.pipeline.CompilationCache` dies with the
process, so every fresh CLI invocation, CI job or worker re-pays the full
NuOp compilation cost.  On single-CPU hosts that cost dominates study wall
time; this module makes it a one-time cost per *machine* instead of per
process.  The same root also persists a **simulation-result namespace**
(``get_simulation``/``put_simulation``, separate counters): measured
distribution vectors keyed by noise-program content, backend identity and
simulation options, so warm re-runs of a study skip the simulators the
way they already skip the compiler (see
:mod:`repro.experiments.engine`).

Design:

* **Content-addressed.** Entries are keyed by the same tuple the memory
  tier uses -- circuit, device-calibration, instruction-set, decomposer
  and pipeline-config fingerprints plus the scalar compile options
  (:func:`repro.core.pipeline.compilation_cache_key`) -- folded into one
  SHA-256 digest that names the entry file.  A hit is only possible when
  the cached call would have produced a bit-identical result.
* **Versioned schema.** Entries live under ``<root>/v<N>/`` and embed the
  schema version plus the full key; bumping
  :data:`DISK_CACHE_SCHEMA_VERSION` orphans old trees instead of
  mis-reading them, and any corrupt, truncated or foreign file is treated
  as a miss (and deleted best-effort), never an error.
* **Atomic writes.** Entries are pickled to a unique temporary file in the
  target directory and ``os.replace``-d into place, so concurrent
  processes see either no file or a complete one.
* **Layered, not invasive.** ``compile_circuit_cached`` checks memory ->
  disk -> compile; a disk hit is promoted to memory, a compile populates
  both.  The tier is inert unless configured -- via the
  ``REPRO_CACHE_DIR`` environment variable, the CLI ``--cache-dir`` flag
  or :func:`configure_disk_cache` -- so default test/library behaviour is
  unchanged.

Cache-hit *side-effect replay* (re-registering gate-type calibration so
the device RNG advances exactly as on a cold compile) is handled by the
caller in :mod:`repro.core.pipeline`; this module stores the emitted type
keys the replay needs alongside the compiled result.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.circuits.hashing import hash_scalars
from repro.config import str_env
from repro.resilience.faults import maybe_raise_io_fault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.core.pipeline import CompiledCircuit

DISK_CACHE_SCHEMA_VERSION = 2
"""Bump whenever the pickled payload layout or key composition changes.

v2: :class:`~repro.core.pipeline.CompiledCircuit` gained ``pass_stats``
(per-pass rewrite statistics); v1 entries lack the attribute and would
surface as broken objects, so they are orphaned instead."""

SIMULATION_KIND = "sim"
"""Namespace (subtree name) of the simulation-result tier: measured
distribution vectors keyed by noise-program content, backend identity and
simulation options -- see
:func:`repro.experiments.engine.simulation_cache_key`."""

DECOMP_KIND = "decomp"
"""Namespace (subtree name) of the decomposition-tabulation tier:
Weyl-chamber lookup tables keyed by gate-type fingerprint, grid
resolution and decomposer knobs -- see
:mod:`repro.compiler.tabulation`.  Own ``decomp_*`` counters, so
``repro cache stats`` reports table traffic separately from compile and
simulate traffic."""

MAX_BYTES_ENV_VAR = "REPRO_CACHE_MAX_BYTES"
"""Size cap (bytes) for the disk tier; entries are evicted LRU-by-mtime
once the footprint exceeds it.  Unset/empty means unbounded."""

_PICKLE_PROTOCOL = 4


def cache_key_digest(key: Tuple) -> str:
    """Fold a compilation-cache key tuple into one hex digest (the file name).

    Key components are digests and plain scalars, so
    :func:`repro.circuits.hashing.hash_scalars` renders them stably across
    processes and platforms; the leading namespace label keeps this digest
    family from colliding with other key families built over the same
    scalars.
    """
    return hash_scalars("disk-cache-key", DISK_CACHE_SCHEMA_VERSION, *key)


@dataclass
class DiskCacheEntry:
    """One persisted compilation result plus its replayable side effects."""

    compiled: "CompiledCircuit"
    emitted_type_keys: List[str]


class DiskCompilationCache:
    """Content-addressed, versioned, atomically-written compilation cache.

    Thread-safe for the statistics counters; file operations rely on the
    atomicity of ``os.replace`` for cross-process safety.  All I/O errors
    degrade to cache misses or dropped writes -- a broken cache directory
    must never break a compilation.
    """

    def __init__(self, root: os.PathLike, max_bytes: Optional[int] = None) -> None:
        self.root = Path(root).expanduser()
        self._max_bytes_override = max_bytes
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        # The simulation-result tier (get_simulation/put_simulation) keeps
        # its own hit/miss/write counters so `repro cache stats` can show
        # compile and simulate traffic separately.
        self.sim_hits = 0
        self.sim_misses = 0
        self.sim_writes = 0
        # Same split for the decomposition-tabulation tier
        # (get_decomposition_table/put_decomposition_table).
        self.decomp_hits = 0
        self.decomp_misses = 0
        self.decomp_writes = 0

    @property
    def max_bytes(self) -> Optional[int]:
        """Size cap in bytes, or ``None`` when unbounded.

        An explicit constructor argument wins; otherwise
        ``REPRO_CACHE_MAX_BYTES`` is re-consulted on every access (like
        ``REPRO_CACHE_DIR``), so long-lived shared registry instances pick
        up a cap set after they were first constructed.
        """
        if self._max_bytes_override is not None:
            return self._max_bytes_override
        return _default_max_bytes()

    # -- paths --------------------------------------------------------------

    @property
    def version_dir(self) -> Path:
        """Directory holding entries of the current schema version."""
        return self.root / f"v{DISK_CACHE_SCHEMA_VERSION}"

    def _version_dirs(self) -> List[Path]:
        """Every schema-version subtree under the root, current or orphaned.

        Schema bumps orphan old trees rather than migrating them; ``clear``
        and the size-cap eviction sweep must still see those orphans or an
        upgrade would leave unbounded, uncollectable garbage behind.
        """
        if not self.root.is_dir():
            return []
        return sorted(
            path
            for path in self.root.glob("v*")
            if path.is_dir() and path.name[1:].isdigit()
        )

    def _entry_path(self, digest: str) -> Path:
        # Two-character fan-out keeps directories small at production entry
        # counts (the git object-store layout).
        return self.version_dir / digest[:2] / f"{digest}.pkl"

    def _blob_path(self, kind: str, digest: str) -> Path:
        # Auxiliary payloads (autotuner verdicts, ...) live in a namespaced
        # subtree of the same versioned root, with the same fan-out.
        return self.version_dir / kind / digest[:2] / f"{digest}.pkl"

    # -- payload plumbing ----------------------------------------------------

    def _read_payload(
        self, path: Path, key: Tuple, family: str = "compile"
    ) -> Optional[Dict[str, object]]:
        """Load + validate one payload file; any failure is a recorded miss.

        ``family`` selects the counter group (``"compile"`` for compiled
        circuits and auxiliary blobs, ``"sim"`` for simulation results,
        ``"decomp"`` for decomposition-tabulation tables).
        """
        try:
            # Inside the try so an injected IO fault (``REPRO_FAULT_PLAN``,
            # e.g. truncated reads) exercises the same except branches a
            # real corrupt/unreadable file would.
            maybe_raise_io_fault("disk.read")
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self._record(hit=False, family=family)
            return None
        except Exception:
            # pickle.load on corrupt/foreign bytes can raise nearly anything
            # (UnpicklingError, EOFError, TypeError, ImportError, ...); every
            # unreadable entry is a miss, and deleting it keeps it from
            # failing every future lookup.
            self._discard(path)
            self._record(hit=False, family=family)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != DISK_CACHE_SCHEMA_VERSION
            or payload.get("key") != list(key)
        ):
            self._record(hit=False, family=family)
            return None
        self._record(hit=True, family=family)
        if self.max_bytes is not None:
            # Refresh LRU recency for size-cap eviction.  Skipped on
            # unbounded caches so reads stay mtime-neutral (the CI
            # warm-start check relies on "no file changed after the cold
            # process" to prove every compile was served from disk).
            self._touch(path)
        return payload

    def _write_payload(
        self, path: Path, payload: Dict[str, object], family: str = "compile"
    ) -> bool:
        """Atomically write one payload file, then enforce the size cap."""
        try:
            # Inside the try: injected ENOSPC/EACCES faults degrade to a
            # dropped write exactly as a genuinely full disk would.
            maybe_raise_io_fault("disk.write")
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    pickle.dump(payload, handle, protocol=_PICKLE_PROTOCOL)
                os.replace(temp_name, path)
            except BaseException:
                self._discard(Path(temp_name))
                raise
        except Exception:
            # Unpicklable payload members surface as TypeError/AttributeError
            # rather than PicklingError; a failed cache write must never
            # break the compilation that produced the result.
            return False
        with self._lock:
            if family == "sim":
                self.sim_writes += 1
            elif family == "decomp":
                self.decomp_writes += 1
            else:
                self.writes += 1
        self._evict_over_cap(protect=path)
        return True

    # -- core operations ----------------------------------------------------

    def get(self, key: Tuple) -> Optional[DiskCacheEntry]:
        """Load the entry for ``key``, or ``None`` on any kind of miss.

        Mismatched schema versions, corrupt pickles, truncated files and
        digest collisions with a different key all count as misses;
        unreadable files are deleted best-effort so they do not fail every
        future lookup.
        """
        payload = self._read_payload(self._entry_path(cache_key_digest(key)), key)
        if payload is None:
            return None
        return DiskCacheEntry(
            compiled=payload["compiled"],
            emitted_type_keys=list(payload["emitted_type_keys"]),
        )

    def put(
        self,
        key: Tuple,
        compiled: "CompiledCircuit",
        emitted_type_keys: Sequence[str],
    ) -> bool:
        """Persist a compilation result; returns False when the write failed.

        The payload is pickled to a unique temporary file in the entry's
        directory and renamed into place, so readers never observe a
        partial entry and the last concurrent writer wins.
        """
        payload = {
            "schema": DISK_CACHE_SCHEMA_VERSION,
            "key": list(key),
            "compiled": compiled,
            "emitted_type_keys": list(emitted_type_keys),
        }
        return self._write_payload(self._entry_path(cache_key_digest(key)), payload)

    def has_entry(self, key: Tuple) -> bool:
        """True when a compilation entry file exists for ``key``.

        Existence probe (no counters, no deserialisation) for shard
        handoff in the study service: a host that does not own a key's
        shard polls the shared artifact store for another host's result
        without distorting the hit/miss statistics.  A present-but-corrupt
        file counts as present; the next real lookup deletes it.
        """
        try:
            return self._entry_path(cache_key_digest(key)).is_file()
        except OSError:
            return False

    def get_blob(self, kind: str, key: Tuple) -> Optional[object]:
        """Load an auxiliary payload (e.g. an autotuner verdict) for ``key``.

        Blobs share the versioned root, the content-addressed naming, the
        validation rules and the hit/miss/eviction accounting of compiled
        entries -- they are just namespaced under ``<version>/<kind>/``.
        """
        payload = self._read_payload(self._blob_path(kind, cache_key_digest(key)), key)
        if payload is None:
            return None
        return payload.get("value")

    def put_blob(self, kind: str, key: Tuple, value: object) -> bool:
        """Persist an auxiliary payload; returns False when the write failed."""
        payload = {
            "schema": DISK_CACHE_SCHEMA_VERSION,
            "key": list(key),
            "value": value,
        }
        return self._write_payload(self._blob_path(kind, cache_key_digest(key)), payload)

    # -- simulation-result tier ---------------------------------------------

    def get_simulation(self, key: Tuple) -> Optional[object]:
        """Load a persisted measured-distribution vector, or ``None`` on a miss.

        The simulation-result tier shares the versioned root, the
        content-addressed naming, the validation rules and the eviction
        sweep of compiled entries -- it is the ``<version>/sim/``
        namespace with its own hit/miss/write counters, so ``repro cache
        stats`` reports compile and simulate traffic separately.  Keys
        are built by
        :func:`repro.experiments.engine.simulation_cache_key` (noise
        program content x backend name/version x simulation options).
        """
        payload = self._read_payload(
            self._blob_path(SIMULATION_KIND, cache_key_digest(key)), key, family="sim"
        )
        if payload is None:
            return None
        return payload.get("vector")

    def has_simulation(self, key: Tuple) -> bool:
        """True when an entry file exists for ``key`` (no counters, no read).

        Cheap existence probe for the engine's memory-to-disk backfill: a
        memory-tier hit must not skip persistence when this directory has
        never seen the vector, but probing with :meth:`get_simulation`
        would distort the hit/miss counters (and deserialise a vector
        nobody needs).  A present-but-corrupt file counts as present; the
        next real lookup deletes it and the vector is re-persisted then.
        """
        try:
            return self._blob_path(SIMULATION_KIND, cache_key_digest(key)).is_file()
        except OSError:
            return False

    def put_simulation(self, key: Tuple, vector: object) -> bool:
        """Persist a measured-distribution vector; False when the write failed."""
        payload = {
            "schema": DISK_CACHE_SCHEMA_VERSION,
            "key": list(key),
            "vector": vector,
        }
        return self._write_payload(
            self._blob_path(SIMULATION_KIND, cache_key_digest(key)), payload, family="sim"
        )

    # -- decomposition-tabulation tier ----------------------------------------

    def get_decomposition_table(self, key: Tuple) -> Optional[object]:
        """Load a persisted Weyl-chamber lookup table, or ``None`` on a miss.

        The decomposition-tabulation tier shares the versioned root, the
        content-addressed naming, the validation rules and the eviction
        sweep of compiled entries -- it is the ``<version>/decomp/``
        namespace with its own hit/miss/write counters.  Keys are built
        by :meth:`repro.compiler.tabulation.TableSpec.cache_key`
        (gate-type fingerprint x grid resolution x decomposer knobs).
        """
        payload = self._read_payload(
            self._blob_path(DECOMP_KIND, cache_key_digest(key)), key, family="decomp"
        )
        if payload is None:
            return None
        return payload.get("table")

    def has_decomposition_table(self, key: Tuple) -> bool:
        """True when an entry file exists for ``key`` (no counters, no read).

        Existence probe mirroring :meth:`has_simulation`: lets callers
        decide whether to persist without distorting the hit/miss
        statistics.  A present-but-corrupt file counts as present; the
        next real lookup deletes it and the table is re-persisted then.
        """
        try:
            return self._blob_path(DECOMP_KIND, cache_key_digest(key)).is_file()
        except OSError:
            return False

    def put_decomposition_table(self, key: Tuple, table: object) -> bool:
        """Persist a Weyl-chamber lookup table; False when the write failed."""
        payload = {
            "schema": DISK_CACHE_SCHEMA_VERSION,
            "key": list(key),
            "table": table,
        }
        return self._write_payload(
            self._blob_path(DECOMP_KIND, cache_key_digest(key)), payload, family="decomp"
        )

    def clear(self) -> int:
        """Delete every entry of *every* schema version; returns the count.

        Covers orphaned trees left behind by schema bumps, sweeps ``*.tmp``
        leftovers from writers killed mid-``put`` (invisible to lookups but
        they would otherwise accumulate) and removes the emptied fan-out
        directories, so a cleared tree does not slowly fill with hundreds
        of empty two-character directories.  A never-written cache
        directory clears cleanly to 0 without touching the disk.
        """
        removed = 0
        for version_dir in self._version_dirs():
            for entry in sorted(version_dir.rglob("*.pkl")):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    continue
            for orphan in version_dir.rglob("*.tmp"):
                self._discard(orphan)
            # Deepest-first so parent fan-out/namespace directories empty
            # out before their own rmdir attempt; non-empty ones just fail
            # silently.
            subdirectories = sorted(
                (path for path in version_dir.rglob("*") if path.is_dir()),
                key=lambda path: len(path.parts),
                reverse=True,
            )
            for directory in subdirectories:
                try:
                    directory.rmdir()
                except OSError:
                    continue
        return removed

    # -- size cap ------------------------------------------------------------

    def _evict_over_cap(self, protect: Optional[Path] = None) -> int:
        """Evict least-recently-used entries until the footprint fits the cap.

        Recency is mtime: reads touch their entry, so untouched entries age
        out first (LRU).  ``protect`` (the entry just written) is never
        evicted, so a cap smaller than a single entry still serves it.
        Returns the number of evicted files.

        The full tree walk per write is deliberate: concurrent processes
        share the directory, so any in-memory running total would go stale
        the moment another writer lands an entry.  Writes only happen on
        compile misses (seconds each), which dwarfs an O(entries) stat
        sweep at realistic cache sizes.  The walk spans *every* schema
        version, so after an upgrade the orphaned old tree counts against
        the cap and -- being untouched -- ages out first.
        """
        max_bytes = self.max_bytes  # one env consultation per sweep
        if max_bytes is None:
            return 0
        entries = []
        total = 0
        for version_dir in self._version_dirs():
            for path in version_dir.rglob("*.pkl"):
                try:
                    status = path.stat()
                except OSError:
                    continue
                total += status.st_size
                if protect is None or path != protect:
                    entries.append((status.st_mtime, status.st_size, path))
        if total <= max_bytes:
            return 0
        evicted = 0
        for _, size, path in sorted(entries, key=lambda item: item[0]):
            if total <= max_bytes:
                break
            self._discard(path)
            total -= size
            evicted += 1
        if evicted:
            with self._lock:
                self.evictions += evicted
        return evicted

    # -- reporting ----------------------------------------------------------

    def _footprint(self) -> Tuple[int, int]:
        """``(entry_count, total_bytes)`` of compiled entries + auxiliary blobs.

        Excludes the ``sim`` and ``decomp`` namespaces, which are reported
        separately (``sim_entries``/``sim_bytes`` and
        ``decomp_entries``/``decomp_bytes`` in :meth:`stats`) so
        ``entries`` keeps meaning "how many compilation-side results are
        persisted".
        """
        if not self.version_dir.is_dir():
            return 0, 0
        excluded = (
            self.version_dir / SIMULATION_KIND,
            self.version_dir / DECOMP_KIND,
        )
        count = 0
        total = 0
        for entry in self.version_dir.rglob("*.pkl"):
            if any(parent in entry.parents for parent in excluded):
                continue
            count += 1
            try:
                total += entry.stat().st_size
            except OSError:
                continue
        return count, total

    def entry_count(self) -> int:
        """Number of persisted compilation-side entries (excludes ``sim``)."""
        return self._footprint()[0]

    def _kind_footprint(self, kind: str) -> Tuple[int, int]:
        """``(entry_count, total_bytes)`` of one namespaced subtree."""
        kind_dir = self.version_dir / kind
        if not kind_dir.is_dir():
            return 0, 0
        count = 0
        total = 0
        for entry in kind_dir.rglob("*.pkl"):
            count += 1
            try:
                total += entry.stat().st_size
            except OSError:
                continue
        return count, total

    def size_bytes(self) -> int:
        """Total size of the persisted compilation-side entries, in bytes."""
        return self._footprint()[1]

    def _orphan_bytes(self) -> int:
        """Bytes held by entries of *other* (orphaned) schema versions."""
        total = 0
        for version_dir in self._version_dirs():
            if version_dir == self.version_dir:
                continue
            for path in version_dir.rglob("*.pkl"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
        return total

    def stats(self) -> Dict[str, object]:
        """Counters plus on-disk footprint (for the CLI and benchmarks).

        Reports cleanly (all zeros) for a cache directory nothing was ever
        written to.
        """
        with self._lock:
            hits, misses, writes, evictions = (
                self.hits,
                self.misses,
                self.writes,
                self.evictions,
            )
            sim_hits, sim_misses, sim_writes = (
                self.sim_hits,
                self.sim_misses,
                self.sim_writes,
            )
            decomp_hits, decomp_misses, decomp_writes = (
                self.decomp_hits,
                self.decomp_misses,
                self.decomp_writes,
            )
        entries, size_bytes = self._footprint()
        sim_entries, sim_bytes = self._kind_footprint(SIMULATION_KIND)
        decomp_entries, decomp_bytes = self._kind_footprint(DECOMP_KIND)
        return {
            "cache_dir": str(self.root),
            "schema_version": DISK_CACHE_SCHEMA_VERSION,
            "hits": hits,
            "misses": misses,
            "writes": writes,
            "evictions": evictions,
            "sim_hits": sim_hits,
            "sim_misses": sim_misses,
            "sim_writes": sim_writes,
            "sim_entries": sim_entries,
            "sim_bytes": sim_bytes,
            "decomp_hits": decomp_hits,
            "decomp_misses": decomp_misses,
            "decomp_writes": decomp_writes,
            "decomp_entries": decomp_entries,
            "decomp_bytes": decomp_bytes,
            "entries": entries,
            "size_bytes": size_bytes,
            "orphan_bytes": self._orphan_bytes(),
            "max_bytes": self.max_bytes,  # None = unbounded (CLI renders it)
        }

    # -- internals ----------------------------------------------------------

    def _record(self, hit: bool, family: str = "compile") -> None:
        with self._lock:
            if family == "sim":
                if hit:
                    self.sim_hits += 1
                else:
                    self.sim_misses += 1
            elif family == "decomp":
                if hit:
                    self.decomp_hits += 1
                else:
                    self.decomp_misses += 1
            elif hit:
                self.hits += 1
            else:
                self.misses += 1

    @staticmethod
    def _touch(path: Path) -> None:
        """Best-effort mtime refresh (LRU recency for size-cap eviction)."""
        try:
            os.utime(path)
        except OSError:
            pass

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


def _default_max_bytes() -> Optional[int]:
    """Disk-tier size cap from ``REPRO_CACHE_MAX_BYTES`` (``None`` = unbounded).

    Re-read on every access (like ``REPRO_CACHE_DIR``).  Invalid values
    -- non-numeric, zero or negative -- are ignored with a warning rather
    than silently capping the cache at nothing
    (:func:`repro.config.positive_int_env`, the policy every cache-bound
    variable shares).
    """
    from repro.config import positive_int_env

    return positive_int_env(
        MAX_BYTES_ENV_VAR, None, invalid_note="disk cache stays unbounded"
    )


# ---------------------------------------------------------------------------
# Global configuration (env var / CLI flag)
# ---------------------------------------------------------------------------

CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

_DISABLED = object()
_EXPLICIT: Optional[object] = None
_INSTANCES: Dict[str, DiskCompilationCache] = {}
_CONFIG_LOCK = threading.Lock()


def _instance_for(cache_dir: os.PathLike) -> DiskCompilationCache:
    """Shared per-directory instance; caller must hold ``_CONFIG_LOCK``.

    Keys are normalised absolute paths, so ``./cache``, ``cache`` and the
    absolute spelling all resolve to the same instance and its counters.
    """
    key = os.path.abspath(os.path.expanduser(str(cache_dir)))
    cache = _INSTANCES.get(key)
    if cache is None:
        # Construct from the normalized path too: a relative cache_dir must
        # not leave the shared instance's filesystem root CWD-dependent.
        cache = DiskCompilationCache(key)
        _INSTANCES[key] = cache
    return cache


def disk_cache_for(cache_dir: os.PathLike) -> DiskCompilationCache:
    """The shared :class:`DiskCompilationCache` for a directory.

    Every consumer of a cache directory -- ``run_study(cache_dir=...)``,
    the CLI's ``--cache-dir`` flag, ``configure_disk_cache`` and the
    ``REPRO_CACHE_DIR`` resolution -- goes through this registry, so
    hit/miss/write counters accumulate on one instance per directory and
    ``repro cache stats`` sees the traffic of per-study caches too.
    """
    with _CONFIG_LOCK:
        return _instance_for(cache_dir)


def configure_disk_cache(cache_dir: Optional[str]) -> Optional[DiskCompilationCache]:
    """Explicitly set (or disable) the process-wide disk cache.

    ``cache_dir=None`` disables the tier even when ``REPRO_CACHE_DIR`` is
    set; a path enables it there.  Returns the active cache (or ``None``).
    Use :func:`reset_disk_cache_configuration` to fall back to the
    environment variable again.
    """
    global _EXPLICIT
    with _CONFIG_LOCK:
        if cache_dir is None:
            _EXPLICIT = _DISABLED
            return None
        cache = _instance_for(cache_dir)
        _EXPLICIT = cache
        return cache


def reset_disk_cache_configuration() -> None:
    """Drop any explicit configuration; ``REPRO_CACHE_DIR`` governs again."""
    global _EXPLICIT
    with _CONFIG_LOCK:
        _EXPLICIT = None


def get_global_disk_cache() -> Optional[DiskCompilationCache]:
    """The process-wide disk cache, or ``None`` when the tier is inactive.

    Resolution order: an explicit :func:`configure_disk_cache` call wins
    (including an explicit disable); otherwise the ``REPRO_CACHE_DIR``
    environment variable is consulted on every call, so tests and
    subprocess harnesses can toggle the tier without re-imports.
    Instances are cached per directory so statistics accumulate.
    """
    with _CONFIG_LOCK:
        if _EXPLICIT is _DISABLED:
            return None
        if _EXPLICIT is not None:
            return _EXPLICIT  # type: ignore[return-value]
        cache_dir = str_env(CACHE_DIR_ENV_VAR)
        if not cache_dir:
            return None
        return _instance_for(cache_dir)
