"""Persistent on-disk compilation cache (the disk tier).

The in-memory :class:`~repro.core.pipeline.CompilationCache` dies with the
process, so every fresh CLI invocation, CI job or worker re-pays the full
NuOp compilation cost.  On single-CPU hosts that cost dominates study wall
time; this module makes it a one-time cost per *machine* instead of per
process.

Design:

* **Content-addressed.** Entries are keyed by the same tuple the memory
  tier uses -- circuit, device-calibration, instruction-set, decomposer
  and pipeline-config fingerprints plus the scalar compile options
  (:func:`repro.core.pipeline.compilation_cache_key`) -- folded into one
  SHA-256 digest that names the entry file.  A hit is only possible when
  the cached call would have produced a bit-identical result.
* **Versioned schema.** Entries live under ``<root>/v<N>/`` and embed the
  schema version plus the full key; bumping
  :data:`DISK_CACHE_SCHEMA_VERSION` orphans old trees instead of
  mis-reading them, and any corrupt, truncated or foreign file is treated
  as a miss (and deleted best-effort), never an error.
* **Atomic writes.** Entries are pickled to a unique temporary file in the
  target directory and ``os.replace``-d into place, so concurrent
  processes see either no file or a complete one.
* **Layered, not invasive.** ``compile_circuit_cached`` checks memory ->
  disk -> compile; a disk hit is promoted to memory, a compile populates
  both.  The tier is inert unless configured -- via the
  ``REPRO_CACHE_DIR`` environment variable, the CLI ``--cache-dir`` flag
  or :func:`configure_disk_cache` -- so default test/library behaviour is
  unchanged.

Cache-hit *side-effect replay* (re-registering gate-type calibration so
the device RNG advances exactly as on a cold compile) is handled by the
caller in :mod:`repro.core.pipeline`; this module stores the emitted type
keys the replay needs alongside the compiled result.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.circuits.hashing import hash_scalars

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.core.pipeline import CompiledCircuit

DISK_CACHE_SCHEMA_VERSION = 1
"""Bump whenever the pickled payload layout or key composition changes."""

_PICKLE_PROTOCOL = 4


def cache_key_digest(key: Tuple) -> str:
    """Fold a compilation-cache key tuple into one hex digest (the file name).

    Key components are digests and plain scalars, so
    :func:`repro.circuits.hashing.hash_scalars` renders them stably across
    processes and platforms; the leading namespace label keeps this digest
    family from colliding with other key families built over the same
    scalars.
    """
    return hash_scalars("disk-cache-key", DISK_CACHE_SCHEMA_VERSION, *key)


@dataclass
class DiskCacheEntry:
    """One persisted compilation result plus its replayable side effects."""

    compiled: "CompiledCircuit"
    emitted_type_keys: List[str]


class DiskCompilationCache:
    """Content-addressed, versioned, atomically-written compilation cache.

    Thread-safe for the statistics counters; file operations rely on the
    atomicity of ``os.replace`` for cross-process safety.  All I/O errors
    degrade to cache misses or dropped writes -- a broken cache directory
    must never break a compilation.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root).expanduser()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- paths --------------------------------------------------------------

    @property
    def version_dir(self) -> Path:
        """Directory holding entries of the current schema version."""
        return self.root / f"v{DISK_CACHE_SCHEMA_VERSION}"

    def _entry_path(self, digest: str) -> Path:
        # Two-character fan-out keeps directories small at production entry
        # counts (the git object-store layout).
        return self.version_dir / digest[:2] / f"{digest}.pkl"

    # -- core operations ----------------------------------------------------

    def get(self, key: Tuple) -> Optional[DiskCacheEntry]:
        """Load the entry for ``key``, or ``None`` on any kind of miss.

        Mismatched schema versions, corrupt pickles, truncated files and
        digest collisions with a different key all count as misses;
        unreadable files are deleted best-effort so they do not fail every
        future lookup.
        """
        path = self._entry_path(cache_key_digest(key))
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self._record(hit=False)
            return None
        except Exception:
            # pickle.load on corrupt/foreign bytes can raise nearly anything
            # (UnpicklingError, EOFError, TypeError, ImportError, ...); every
            # unreadable entry is a miss, and deleting it keeps it from
            # failing every future lookup.
            self._discard(path)
            self._record(hit=False)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != DISK_CACHE_SCHEMA_VERSION
            or payload.get("key") != list(key)
        ):
            self._record(hit=False)
            return None
        self._record(hit=True)
        return DiskCacheEntry(
            compiled=payload["compiled"],
            emitted_type_keys=list(payload["emitted_type_keys"]),
        )

    def put(
        self,
        key: Tuple,
        compiled: "CompiledCircuit",
        emitted_type_keys: Sequence[str],
    ) -> bool:
        """Persist a compilation result; returns False when the write failed.

        The payload is pickled to a unique temporary file in the entry's
        directory and renamed into place, so readers never observe a
        partial entry and the last concurrent writer wins.
        """
        path = self._entry_path(cache_key_digest(key))
        payload = {
            "schema": DISK_CACHE_SCHEMA_VERSION,
            "key": list(key),
            "compiled": compiled,
            "emitted_type_keys": list(emitted_type_keys),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(descriptor, "wb") as handle:
                    pickle.dump(payload, handle, protocol=_PICKLE_PROTOCOL)
                os.replace(temp_name, path)
            except BaseException:
                self._discard(Path(temp_name))
                raise
        except Exception:
            # Unpicklable payload members surface as TypeError/AttributeError
            # rather than PicklingError; a failed cache write must never
            # break the compilation that produced the result.
            return False
        with self._lock:
            self.writes += 1
        return True

    def clear(self) -> int:
        """Delete every entry of the current schema version; returns the count.

        Also sweeps ``*.tmp`` leftovers from writers killed mid-``put``
        (they are invisible to lookups but would otherwise accumulate).
        """
        removed = 0
        for entry in sorted(self.version_dir.rglob("*.pkl")):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                continue
        for orphan in self.version_dir.rglob("*.tmp"):
            self._discard(orphan)
        return removed

    # -- reporting ----------------------------------------------------------

    def _footprint(self) -> Tuple[int, int]:
        """One tree walk returning ``(entry_count, total_bytes)``."""
        if not self.version_dir.is_dir():
            return 0, 0
        count = 0
        total = 0
        for entry in self.version_dir.rglob("*.pkl"):
            count += 1
            try:
                total += entry.stat().st_size
            except OSError:
                continue
        return count, total

    def entry_count(self) -> int:
        """Number of persisted entries in the current schema version."""
        return self._footprint()[0]

    def size_bytes(self) -> int:
        """Total size of the persisted entries, in bytes."""
        return self._footprint()[1]

    def stats(self) -> Dict[str, object]:
        """Counters plus on-disk footprint (for the CLI and benchmarks)."""
        with self._lock:
            hits, misses, writes = self.hits, self.misses, self.writes
        entries, size_bytes = self._footprint()
        return {
            "cache_dir": str(self.root),
            "schema_version": DISK_CACHE_SCHEMA_VERSION,
            "hits": hits,
            "misses": misses,
            "writes": writes,
            "entries": entries,
            "size_bytes": size_bytes,
        }

    # -- internals ----------------------------------------------------------

    def _record(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Global configuration (env var / CLI flag)
# ---------------------------------------------------------------------------

CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

_DISABLED = object()
_EXPLICIT: Optional[object] = None
_INSTANCES: Dict[str, DiskCompilationCache] = {}
_CONFIG_LOCK = threading.Lock()


def configure_disk_cache(cache_dir: Optional[str]) -> Optional[DiskCompilationCache]:
    """Explicitly set (or disable) the process-wide disk cache.

    ``cache_dir=None`` disables the tier even when ``REPRO_CACHE_DIR`` is
    set; a path enables it there.  Returns the active cache (or ``None``).
    Use :func:`reset_disk_cache_configuration` to fall back to the
    environment variable again.
    """
    global _EXPLICIT
    with _CONFIG_LOCK:
        if cache_dir is None:
            _EXPLICIT = _DISABLED
            return None
        cache = _INSTANCES.setdefault(
            str(cache_dir), DiskCompilationCache(cache_dir)
        )
        _EXPLICIT = cache
        return cache


def reset_disk_cache_configuration() -> None:
    """Drop any explicit configuration; ``REPRO_CACHE_DIR`` governs again."""
    global _EXPLICIT
    with _CONFIG_LOCK:
        _EXPLICIT = None


def get_global_disk_cache() -> Optional[DiskCompilationCache]:
    """The process-wide disk cache, or ``None`` when the tier is inactive.

    Resolution order: an explicit :func:`configure_disk_cache` call wins
    (including an explicit disable); otherwise the ``REPRO_CACHE_DIR``
    environment variable is consulted on every call, so tests and
    subprocess harnesses can toggle the tier without re-imports.
    Instances are cached per directory so statistics accumulate.
    """
    with _CONFIG_LOCK:
        if _EXPLICIT is _DISABLED:
            return None
        if _EXPLICIT is not None:
            return _EXPLICIT  # type: ignore[return-value]
        cache_dir = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
        if not cache_dir:
            return None
        return _INSTANCES.setdefault(cache_dir, DiskCompilationCache(cache_dir))
