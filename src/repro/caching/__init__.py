"""Persistent caching tiers for the compilation toolflow."""

from repro.caching.disk import (
    DISK_CACHE_SCHEMA_VERSION,
    DiskCacheEntry,
    DiskCompilationCache,
    configure_disk_cache,
    get_global_disk_cache,
    reset_disk_cache_configuration,
)

__all__ = [
    "DISK_CACHE_SCHEMA_VERSION",
    "DiskCacheEntry",
    "DiskCompilationCache",
    "configure_disk_cache",
    "get_global_disk_cache",
    "reset_disk_cache_configuration",
]
