"""Utilities for working with unitary matrices.

This module provides the numerical plumbing shared by the rest of the
library: random unitary sampling (Haar measure), fidelity measures used by
NuOp (Hilbert-Schmidt inner product, Eq. 1 of the paper), global-phase
insensitive comparisons, single-qubit (ZYZ / U3) synthesis and
nearest-Kronecker-product factoring of two-qubit local unitaries.
"""

from __future__ import annotations

import cmath
import math
from typing import Optional, Sequence, Tuple

import numpy as np


def is_unitary(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """Return True if ``matrix`` is unitary within tolerance ``atol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    product = matrix.conj().T @ matrix
    return bool(np.allclose(product, np.eye(matrix.shape[0]), atol=atol))


def is_hermitian(matrix: np.ndarray, atol: float = 1e-9) -> bool:
    """Return True if ``matrix`` is Hermitian within tolerance ``atol``."""
    matrix = np.asarray(matrix, dtype=complex)
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


def random_unitary(dim: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Sample a Haar-random unitary of dimension ``dim``.

    Uses the QR decomposition of a Ginibre-ensemble matrix with the phase
    correction of Mezzadri (2007) so that the distribution is exactly the
    Haar measure.
    """
    rng = np.random.default_rng(rng)
    ginibre = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(ginibre)
    diag = np.diagonal(r)
    phases = diag / np.abs(diag)
    return q * phases


def random_special_unitary(
    dim: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Sample a Haar-random special unitary (determinant 1)."""
    u = random_unitary(dim, rng)
    det = np.linalg.det(u)
    return u / det ** (1.0 / dim)


def random_su4(rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Sample a Haar-random SU(4) matrix.

    Quantum Volume circuits draw their two-qubit blocks from this
    distribution (Figure 2a of the paper).
    """
    return random_special_unitary(4, rng)


def remove_global_phase(matrix: np.ndarray) -> np.ndarray:
    """Return ``matrix`` rescaled so its largest-magnitude entry is real positive."""
    matrix = np.asarray(matrix, dtype=complex)
    index = np.unravel_index(np.argmax(np.abs(matrix)), matrix.shape)
    phase = matrix[index] / abs(matrix[index])
    return matrix / phase


def allclose_up_to_global_phase(
    a: np.ndarray, b: np.ndarray, atol: float = 1e-7
) -> bool:
    """Return True if ``a`` and ``b`` are equal up to a global phase."""
    a = np.asarray(a, dtype=complex)
    b = np.asarray(b, dtype=complex)
    if a.shape != b.shape:
        return False
    # Optimal alignment phase under the Frobenius inner product.
    overlap = np.vdot(b, a)
    if abs(overlap) < 1e-12:
        return bool(np.allclose(a, b, atol=atol))
    phase = overlap / abs(overlap)
    return bool(np.allclose(a, b * phase, atol=atol))


def hilbert_schmidt_fidelity(u_decomposed: np.ndarray, u_target: np.ndarray) -> float:
    """Decomposition fidelity ``F_d`` from Eq. 1 of the paper.

    ``F_d = |Tr(Ud^dagger Ut)| / dim``.  The absolute value makes the
    measure insensitive to global phase, which physical circuits cannot
    observe.  The value is 1 when the decomposition matches the target and
    approaches 0 for orthogonal unitaries.
    """
    u_decomposed = np.asarray(u_decomposed, dtype=complex)
    u_target = np.asarray(u_target, dtype=complex)
    dim = u_target.shape[0]
    return float(abs(np.trace(u_decomposed.conj().T @ u_target)) / dim)


def average_gate_fidelity(u_decomposed: np.ndarray, u_target: np.ndarray) -> float:
    """Average gate fidelity between two unitaries.

    ``F_avg = (|Tr(Ud^dagger Ut)|^2 + d) / (d^2 + d)`` where ``d`` is the
    Hilbert-space dimension.  This is the state-averaged fidelity of the
    channel ``Ud Ut^dagger`` and is the quantity experiments report.
    """
    u_decomposed = np.asarray(u_decomposed, dtype=complex)
    u_target = np.asarray(u_target, dtype=complex)
    dim = u_target.shape[0]
    overlap = abs(np.trace(u_decomposed.conj().T @ u_target)) ** 2
    return float((overlap + dim) / (dim * dim + dim))


def process_fidelity_from_hs(hs_fidelity: float, dim: int = 4) -> float:
    """Convert a Hilbert-Schmidt fidelity ``|Tr|/d`` into a process fidelity.

    Process fidelity is ``|Tr|^2 / d^2``, i.e. the square of the
    Hilbert-Schmidt fidelity.
    """
    return float(hs_fidelity**2)


def unitary_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Phase-insensitive distance ``1 - F_d`` between two unitaries."""
    return 1.0 - hilbert_schmidt_fidelity(a, b)


def kron_n(*matrices: np.ndarray) -> np.ndarray:
    """Kronecker product of an arbitrary number of matrices, left to right."""
    result = np.array([[1.0 + 0j]])
    for matrix in matrices:
        result = np.kron(result, np.asarray(matrix, dtype=complex))
    return result


def embed_unitary(
    gate: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Embed a k-qubit gate acting on ``qubits`` into an ``num_qubits`` unitary.

    Qubit 0 is the most significant bit of the basis index (big-endian),
    matching the convention of :mod:`repro.circuits` and
    :mod:`repro.simulators`.
    """
    gate = np.asarray(gate, dtype=complex)
    k = int(round(math.log2(gate.shape[0])))
    if gate.shape != (2**k, 2**k):
        raise ValueError("gate matrix must be square with power-of-two dimension")
    if len(qubits) != k:
        raise ValueError(f"gate acts on {k} qubits but {len(qubits)} indices given")
    if len(set(qubits)) != k:
        raise ValueError("qubit indices must be distinct")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise ValueError("qubit index out of range")

    dim = 2**num_qubits
    others = [q for q in range(num_qubits) if q not in qubits]
    perm = list(qubits) + others
    big = np.kron(gate, np.eye(2 ** len(others), dtype=complex))
    # ``big`` acts on qubits ordered as ``perm`` (gate qubits first).  Reorder
    # its row and column axes back to the standard qubit order.
    tensor = big.reshape((2,) * (2 * num_qubits))
    inverse = [perm.index(q) for q in range(num_qubits)]
    order = inverse + [num_qubits + axis for axis in inverse]
    tensor = np.transpose(tensor, order)
    return tensor.reshape(dim, dim)


def nearest_kronecker_product(
    matrix: np.ndarray, dims: Tuple[int, int] = (2, 2)
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Factor ``matrix`` into the closest Kronecker product ``A (x) B``.

    Uses the Pitsianis-Van Loan rearrangement plus a rank-1 SVD
    approximation.  Returns ``(A, B, residual)`` where ``residual`` is the
    Frobenius norm of ``matrix - A (x) B``; it is ~0 when the input is an
    exact tensor product (e.g. the local factors of a KAK decomposition).
    """
    matrix = np.asarray(matrix, dtype=complex)
    d1, d2 = dims
    if matrix.shape != (d1 * d2, d1 * d2):
        raise ValueError("matrix shape incompatible with requested factor dims")
    blocks = matrix.reshape(d1, d2, d1, d2).transpose(0, 2, 1, 3).reshape(
        d1 * d1, d2 * d2
    )
    u, s, vh = np.linalg.svd(blocks)
    a = np.sqrt(s[0]) * u[:, 0].reshape(d1, d1)
    b = np.sqrt(s[0]) * vh[0, :].reshape(d2, d2)
    residual = float(np.linalg.norm(matrix - np.kron(a, b)))
    return a, b, residual


def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Decompose a single-qubit unitary into ZYZ Euler angles.

    Returns ``(alpha, theta, beta, phase)`` such that::

        matrix = exp(i*phase) * Rz(alpha) @ Ry(theta) @ Rz(beta)
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError("zyz_angles requires a 2x2 matrix")
    det = np.linalg.det(matrix)
    phase = 0.5 * cmath.phase(det)
    su2 = matrix * np.exp(-1j * phase)
    # su2 = [[a, -conj(b)], [b, conj(a)]] in terms of Cayley-Klein params.
    theta = 2.0 * math.atan2(abs(su2[1, 0]), abs(su2[0, 0]))
    angle_plus = cmath.phase(su2[1, 1]) if abs(su2[1, 1]) > 1e-12 else 0.0
    angle_minus = cmath.phase(su2[1, 0]) if abs(su2[1, 0]) > 1e-12 else 0.0
    alpha = angle_plus + angle_minus
    beta = angle_plus - angle_minus
    return alpha, theta, beta, phase


def u3_angles_from_unitary(matrix: np.ndarray) -> Tuple[float, float, float]:
    """Return ``(alpha, beta, lam)`` such that ``u3(alpha, beta, lam)`` equals
    ``matrix`` up to global phase.

    This is the inverse of :func:`repro.gates.parametric.u3` and is used to
    report NuOp decompositions in the U3 form shown in Figure 2 of the
    paper.
    """
    from repro.gates.parametric import u3

    alpha_z, theta_y, beta_z, _ = zyz_angles(np.asarray(matrix, dtype=complex))
    # Rz(a) Ry(t) Rz(b) = u3(t, a, b) up to global phase with the paper's
    # U3 convention; verify and correct the half-angle bookkeeping directly.
    candidate = u3(theta_y, alpha_z, beta_z)
    if allclose_up_to_global_phase(candidate, matrix, atol=1e-6):
        return theta_y, alpha_z, beta_z
    # Fall back to a short numerical polish (rarely needed; guards against
    # branch-cut corner cases such as theta ~ pi).
    from scipy.optimize import minimize

    def objective(params: np.ndarray) -> float:
        return 1.0 - hilbert_schmidt_fidelity(u3(*params), matrix)

    best = None
    for start in ([theta_y, alpha_z, beta_z], [0.1, 0.2, 0.3], [np.pi / 2, 0.0, 0.0]):
        result = minimize(objective, np.asarray(start, dtype=float), method="BFGS")
        if best is None or result.fun < best.fun:
            best = result
    return float(best.x[0]), float(best.x[1]), float(best.x[2])
