"""Fixed (non-parametric) gate matrices.

All matrices use the computational basis ordering ``|q1 q0>`` is *not*
used; instead we use the conventional big-endian ordering where the first
qubit of a gate is the most significant bit of the basis index.  For a
two-qubit gate acting on qubits ``(a, b)``, basis state ``|a b>`` maps to
index ``2*a + b``.  This matches the matrices printed in the paper
(Table I).
"""

from __future__ import annotations

import numpy as np

# ---------------------------------------------------------------------------
# Single-qubit gates
# ---------------------------------------------------------------------------

I1 = np.eye(2, dtype=complex)
"""Single-qubit identity."""

I2 = np.eye(4, dtype=complex)
"""Two-qubit identity."""

X = np.array([[0, 1], [1, 0]], dtype=complex)
"""Pauli X."""

Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
"""Pauli Y."""

Z = np.array([[1, 0], [0, -1]], dtype=complex)
"""Pauli Z."""

H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
"""Hadamard."""

S = np.array([[1, 0], [0, 1j]], dtype=complex)
"""Phase gate (sqrt(Z))."""

SDG = S.conj().T
"""Inverse phase gate."""

T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)
"""T gate (fourth root of Z)."""

TDG = T.conj().T
"""Inverse T gate."""

SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
"""Square root of X."""

# ---------------------------------------------------------------------------
# Two-qubit gates
# ---------------------------------------------------------------------------

CZ = np.diag([1, 1, 1, -1]).astype(complex)
"""Controlled-Z gate (Table I)."""

CNOT = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=complex,
)
"""Controlled-NOT with the first qubit as control."""

SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)
"""SWAP gate."""

ISWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1j, 0],
        [0, 1j, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)
"""iSWAP gate; locally equivalent to ``XY(pi)`` and ``fSim(pi/2, 0)``."""

SQRT_ISWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 1 / np.sqrt(2), 1j / np.sqrt(2), 0],
        [0, 1j / np.sqrt(2), 1 / np.sqrt(2), 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)
"""sqrt(iSWAP) gate; equal to ``fSim(pi/4, 0)`` up to convention (S2 in the paper)."""


def _syc_matrix() -> np.ndarray:
    """Google Sycamore gate ``SYC = fSim(pi/2, pi/6)`` (S1 in the paper)."""
    theta = np.pi / 2
    phi = np.pi / 6
    return np.array(
        [
            [1, 0, 0, 0],
            [0, np.cos(theta), -1j * np.sin(theta), 0],
            [0, -1j * np.sin(theta), np.cos(theta), 0],
            [0, 0, 0, np.exp(-1j * phi)],
        ],
        dtype=complex,
    )


SYC = _syc_matrix()
"""Google Sycamore gate ``fSim(pi/2, pi/6)``."""


STANDARD_GATES = {
    "i": I1,
    "id": I1,
    "x": X,
    "y": Y,
    "z": Z,
    "h": H,
    "s": S,
    "sdg": SDG,
    "t": T,
    "tdg": TDG,
    "sx": SX,
    "cz": CZ,
    "cnot": CNOT,
    "cx": CNOT,
    "swap": SWAP,
    "iswap": ISWAP,
    "sqrt_iswap": SQRT_ISWAP,
    "sqiswap": SQRT_ISWAP,
    "syc": SYC,
}
"""Mapping from lower-case gate name to matrix."""


def standard_gate(name: str) -> np.ndarray:
    """Return a copy of the named standard gate matrix.

    Parameters
    ----------
    name:
        Case-insensitive gate name; see :data:`STANDARD_GATES` for the list
        of recognised names.

    Raises
    ------
    KeyError
        If the gate name is not known.
    """
    key = name.lower()
    if key not in STANDARD_GATES:
        raise KeyError(f"unknown standard gate {name!r}")
    return STANDARD_GATES[key].copy()
