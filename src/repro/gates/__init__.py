"""Gate library: fixed and parametric quantum gate unitaries.

This subpackage is the lowest-level substrate of the reproduction.  It
provides:

* :mod:`repro.gates.standard` -- fixed single- and two-qubit gate matrices
  (Pauli gates, Hadamard, CZ, CNOT, iSWAP, SWAP, SYC, ...).
* :mod:`repro.gates.parametric` -- parameterized gate families used by the
  paper: ``U3``, axis rotations, ``fSim(theta, phi)``, ``XY(theta)``,
  ``CPHASE(phi)`` and the canonical (Weyl) two-qubit gate.
* :mod:`repro.gates.unitary` -- utilities for working with unitaries:
  Haar-random sampling, fidelity measures (Hilbert-Schmidt / average gate
  fidelity), global-phase-insensitive comparison, single-qubit (ZYZ)
  synthesis and nearest-Kronecker-product factoring.
* :mod:`repro.gates.kak` -- local-equivalence invariants of two-qubit
  unitaries (Makhlin-style invariants computed from the magic-basis
  ``gamma`` matrix), Weyl-chamber coordinates and minimal gate-count
  criteria used by the KAK/"Cirq-like" baseline decomposer.
"""

from repro.gates.standard import (
    I1,
    I2,
    X,
    Y,
    Z,
    H,
    S,
    SDG,
    T,
    TDG,
    SX,
    CZ,
    CNOT,
    SWAP,
    ISWAP,
    SQRT_ISWAP,
    SYC,
    standard_gate,
    STANDARD_GATES,
)
from repro.gates.parametric import (
    rx,
    ry,
    rz,
    phase_gate,
    u3,
    fsim,
    xy,
    cphase,
    rzz,
    rxx_plus_ryy,
    canonical_gate,
    controlled_rz,
)
from repro.gates.unitary import (
    is_unitary,
    is_hermitian,
    random_unitary,
    random_su4,
    random_special_unitary,
    allclose_up_to_global_phase,
    remove_global_phase,
    hilbert_schmidt_fidelity,
    average_gate_fidelity,
    process_fidelity_from_hs,
    unitary_distance,
    kron_n,
    embed_unitary,
    nearest_kronecker_product,
    zyz_angles,
    u3_angles_from_unitary,
)
from repro.gates.kak import (
    MAGIC_BASIS,
    gamma_matrix,
    local_invariants,
    invariant_distance,
    is_locally_equivalent,
    weyl_coordinates,
    min_cz_count,
    min_iswap_count,
    min_sqrt_iswap_count,
    min_gate_count,
)

__all__ = [
    # standard
    "I1",
    "I2",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
    "CZ",
    "CNOT",
    "SWAP",
    "ISWAP",
    "SQRT_ISWAP",
    "SYC",
    "standard_gate",
    "STANDARD_GATES",
    # parametric
    "rx",
    "ry",
    "rz",
    "phase_gate",
    "u3",
    "fsim",
    "xy",
    "cphase",
    "rzz",
    "rxx_plus_ryy",
    "canonical_gate",
    "controlled_rz",
    # unitary utils
    "is_unitary",
    "is_hermitian",
    "random_unitary",
    "random_su4",
    "random_special_unitary",
    "allclose_up_to_global_phase",
    "remove_global_phase",
    "hilbert_schmidt_fidelity",
    "average_gate_fidelity",
    "process_fidelity_from_hs",
    "unitary_distance",
    "kron_n",
    "embed_unitary",
    "nearest_kronecker_product",
    "zyz_angles",
    "u3_angles_from_unitary",
    # kak
    "MAGIC_BASIS",
    "gamma_matrix",
    "local_invariants",
    "invariant_distance",
    "is_locally_equivalent",
    "weyl_coordinates",
    "min_cz_count",
    "min_iswap_count",
    "min_sqrt_iswap_count",
    "min_gate_count",
]
