"""Local-equivalence analysis of two-qubit unitaries (KAK / Weyl chamber).

The paper's baseline decomposer ("Cirq-like", Section VII.A / Figure 6) is a
KAK-style analytic decomposition.  This module provides the invariant
machinery it rests on:

* the magic (Bell) basis and the ``gamma`` matrix ``m m^T`` whose spectrum
  is invariant under single-qubit rotations before and after the gate,
* local invariants (characteristic-polynomial coefficients of ``gamma``,
  equivalent to the Makhlin invariants),
* a local-equivalence test,
* Weyl-chamber coordinates ``(x, y, z)`` with
  ``pi/4 >= x >= y >= |z|``,
* minimal two-qubit gate counts for CZ / iSWAP / sqrt(iSWAP) bases
  (the CZ criterion is the exact Shende-Bullock-Markov result; the iSWAP
  and sqrt(iSWAP) counts are documented polytope heuristics that are
  cross-validated against NuOp in the test suite).
"""

from __future__ import annotations

import itertools
from typing import Optional, Tuple

import numpy as np

from repro.gates import standard
from repro.gates.parametric import canonical_gate
from repro.gates.unitary import is_unitary

MAGIC_BASIS = (
    np.array(
        [
            [1, 0, 0, 1j],
            [0, 1j, 1, 0],
            [0, 1j, -1, 0],
            [1, 0, 0, -1j],
        ],
        dtype=complex,
    )
    / np.sqrt(2)
)
"""The magic (Bell-like) basis change matrix.

In this basis every tensor product of single-qubit unitaries becomes a real
orthogonal matrix, which is what makes the ``gamma`` spectrum a local
invariant.
"""

_ATOL = 1e-7


def _to_su4(matrix: np.ndarray) -> np.ndarray:
    """Rescale a 4x4 unitary to determinant one (principal fourth root)."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (4, 4):
        raise ValueError("expected a two-qubit (4x4) unitary")
    det = np.linalg.det(matrix)
    return matrix / det ** 0.25


def gamma_matrix(matrix: np.ndarray) -> np.ndarray:
    """Return ``gamma(U) = m m^T`` with ``m`` the SU(4) form of ``U`` in the magic basis.

    The spectrum of ``gamma`` is invariant (up to an overall sign from the
    fourth-root ambiguity of the SU(4) normalisation) under multiplication
    of ``U`` by single-qubit unitaries on either side.
    """
    m = MAGIC_BASIS.conj().T @ _to_su4(matrix) @ MAGIC_BASIS
    return m @ m.T


def local_invariants(matrix: np.ndarray) -> Tuple[complex, complex, complex]:
    """Characteristic-polynomial coefficients ``(e1, e2, e3)`` of ``gamma(U)``.

    ``det(lambda I - gamma) = lambda^4 - e1 lambda^3 + e2 lambda^2 - e3 lambda + 1``.
    Two two-qubit unitaries are locally equivalent exactly when their
    invariants coincide, modulo the sign ambiguity ``(e1, e2, e3) ->
    (-e1, e2, -e3)`` coming from the SU(4) normalisation.
    """
    gamma = gamma_matrix(matrix)
    eigenvalues = np.linalg.eigvals(gamma)
    e1 = complex(np.sum(eigenvalues))
    e2 = complex(
        sum(
            eigenvalues[i] * eigenvalues[j]
            for i, j in itertools.combinations(range(4), 2)
        )
    )
    e3 = complex(
        sum(
            eigenvalues[i] * eigenvalues[j] * eigenvalues[k]
            for i, j, k in itertools.combinations(range(4), 3)
        )
    )
    return e1, e2, e3


def canonical_invariants(
    x: np.ndarray, y: np.ndarray, z: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Closed-form local invariants of ``canonical_gate(x, y, z)``.

    In the magic basis the canonical gate ``exp(i (x XX + y YY + z ZZ))``
    is diagonal with eigenphases ``(x - y + z, -x + y + z, x + y - z,
    -x - y - z)``, so ``gamma`` has eigenvalues ``exp(2i t_k)`` and the
    characteristic-polynomial coefficients follow from Newton's
    identities without building a single matrix.  Accepts scalars or
    broadcastable arrays (the tabulation grid evaluates thousands of
    chamber points in one call); agrees with
    :func:`local_invariants` applied to the assembled gate to ~1e-15.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    z = np.asarray(z, dtype=float)
    phases = np.stack(
        [x - y + z, -x + y + z, x + y - z, -x - y - z], axis=-1
    )
    lam = np.exp(2j * phases)
    e1 = lam.sum(axis=-1)
    e2 = (e1**2 - (lam**2).sum(axis=-1)) / 2.0
    # The eigenvalues multiply to one, so e3 = sum of reciprocals = conj(e1).
    e3 = np.conj(e1)
    return e1, e2, e3


def invariant_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Distance between the local-invariant vectors of two unitaries.

    The distance is zero exactly when the two gates are locally equivalent
    (equal up to single-qubit rotations before/after and global phase).
    """
    ea = np.asarray(local_invariants(a))
    eb = np.asarray(local_invariants(b))
    flip = np.array([-1.0, 1.0, -1.0])
    direct = float(np.linalg.norm(ea - eb))
    flipped = float(np.linalg.norm(ea * flip - eb))
    return min(direct, flipped)


def is_locally_equivalent(a: np.ndarray, b: np.ndarray, atol: float = 1e-6) -> bool:
    """Return True if ``a`` and ``b`` differ only by single-qubit rotations."""
    return invariant_distance(a, b) < atol


_COARSE_GRID: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None


def _coarse_chamber_grid() -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Chamber grid points and their closed-form invariants, built once.

    Returns ``(x, y, z, invariants)`` flat arrays; ``invariants`` has shape
    ``(points, 3)``.  The grid is immutable and deterministic, so the
    benign build race between threads is harmless.
    """
    global _COARSE_GRID
    if _COARSE_GRID is None:
        quarter = np.pi / 4
        axis = np.linspace(0.0, quarter, 33)
        grid_x, grid_y, grid_z = np.meshgrid(
            axis, axis, np.concatenate([-axis[:0:-1], axis]), indexing="ij"
        )
        inside = (grid_x >= grid_y - 1e-12) & (grid_y >= np.abs(grid_z) - 1e-12)
        grid_x, grid_y, grid_z = grid_x[inside], grid_y[inside], grid_z[inside]
        candidates = np.stack(
            canonical_invariants(grid_x, grid_y, grid_z), axis=-1
        )
        _COARSE_GRID = (grid_x, grid_y, grid_z, candidates)
    return _COARSE_GRID


def weyl_coordinates(
    matrix: np.ndarray, refine: bool = True
) -> Tuple[float, float, float]:
    """Weyl-chamber coordinates ``(x, y, z)`` of a two-qubit unitary.

    Every two-qubit unitary is locally equivalent to the canonical gate
    ``exp(i (x XX + y YY + z ZZ))`` for a unique point in the Weyl chamber
    ``pi/4 >= x >= y >= |z|`` (with ``z >= 0`` when ``x = pi/4``).  The
    coordinates are found by matching local invariants against the
    canonical family: the target's invariants are computed once, the
    canonical side comes from the closed form
    (:func:`canonical_invariants`), a vectorised chamber grid seeds a
    bounded least-squares refinement.  The result is
    convention-independent because it is defined through the library's
    own :func:`repro.gates.parametric.canonical_gate`.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if not is_unitary(matrix, atol=1e-6):
        raise ValueError("weyl_coordinates requires a unitary matrix")

    target = np.asarray(local_invariants(matrix))
    flip = np.array([-1.0, 1.0, -1.0])

    quarter = np.pi / 4
    grid_x, grid_y, grid_z, candidates = _coarse_chamber_grid()
    distances = np.minimum(
        np.linalg.norm(candidates - target, axis=-1),
        np.linalg.norm(candidates * flip - target, axis=-1),
    )
    best_index = int(np.argmin(distances))
    best_coords = np.array(
        [grid_x[best_index], grid_y[best_index], grid_z[best_index]]
    )
    best_value = float(distances[best_index])
    if refine and best_value > 1e-12:
        from scipy.optimize import least_squares

        # The invariants are smooth in the coordinates, so the matching
        # problem is a tiny nonlinear least-squares system; trust-region
        # refinement converges quadratically where the old derivative-free
        # Powell polish stalled.  Both sign branches of the fourth-root
        # ambiguity are tried (cheapest first) because the coarse scan
        # only identifies the branch up to its grid resolution.
        branches = (np.ones(3), flip)
        if np.linalg.norm(
            candidates[best_index] * flip - target
        ) < np.linalg.norm(candidates[best_index] - target):
            branches = (flip, np.ones(3))
        for branch in branches:
            def residual(coords: np.ndarray) -> np.ndarray:
                delta = np.asarray(canonical_invariants(*coords)) * branch - target
                return np.concatenate([delta.real, delta.imag])

            result = least_squares(
                residual,
                best_coords,
                bounds=([0.0, 0.0, -quarter], [quarter, quarter, quarter]),
                xtol=1e-15,
                ftol=1e-15,
                gtol=1e-15,
                max_nfev=200,
            )
            value = float(np.linalg.norm(result.fun))
            if value < best_value:
                best_coords = result.x
                best_value = value
            if best_value < 1e-10:
                break
    # Canonicalise into the chamber.  The eigenphase multiset of the
    # canonical gate is invariant under coordinate permutations and under
    # flipping the signs of any two coordinates, so the optimiser may land
    # on any such image inside the search box (e.g. ``(x, -z, -y)``);
    # sorting by magnitude and repairing signs in pairs maps it back.
    values = [float(v) for v in best_coords]
    values.sort(key=abs, reverse=True)
    x, y, z = values
    if x < 0 and y < 0:
        x, y = -x, -y
    elif x < 0:
        x, z = -x, -z
    elif y < 0:
        y, z = -y, -z
    if abs(x - np.pi / 4) < 1e-9 and z < 0:
        z = -z
    return x, y, z


def min_cz_count(matrix: np.ndarray, atol: float = 1e-6) -> int:
    """Minimum number of CZ (equivalently CNOT) gates needed to implement ``matrix`` exactly.

    Implements the Shende-Bullock-Markov criteria:

    * 0 gates if the unitary is a tensor product of single-qubit gates,
    * 1 gate if it is locally equivalent to CZ,
    * 2 gates if ``Tr(gamma)`` is real,
    * 3 gates otherwise.
    """
    if is_locally_equivalent(matrix, np.eye(4), atol=atol):
        return 0
    if is_locally_equivalent(matrix, standard.CZ, atol=atol):
        return 1
    e1, _, _ = local_invariants(matrix)
    if abs(e1.imag) < max(atol, 1e-6):
        return 2
    return 3


def min_iswap_count(matrix: np.ndarray, atol: float = 1e-6) -> int:
    """Minimum number of iSWAP gates needed for ``matrix`` (polytope heuristic).

    Exact for the 0- and 1-gate classes; uses the ``z = 0`` Weyl-plane rule
    for the 2-gate class (two iSWAP applications with arbitrary interleaved
    single-qubit gates reach exactly the gates with vanishing third Weyl
    coordinate); everything else needs 3.
    """
    if is_locally_equivalent(matrix, np.eye(4), atol=atol):
        return 0
    if is_locally_equivalent(matrix, standard.ISWAP, atol=atol):
        return 1
    _, _, z = weyl_coordinates(matrix)
    if abs(z) < 1e-4:
        return 2
    return 3


def min_sqrt_iswap_count(matrix: np.ndarray, atol: float = 1e-6) -> int:
    """Minimum number of sqrt(iSWAP) gates for ``matrix`` (polytope heuristic).

    Exact for the 0- and 1-gate classes; the 2-gate class is approximated by
    the ``z = 0`` Weyl plane (which contains CZ, iSWAP and every XY(theta)
    gate); generic gates and SWAP need 3.
    """
    if is_locally_equivalent(matrix, np.eye(4), atol=atol):
        return 0
    if is_locally_equivalent(matrix, standard.SQRT_ISWAP, atol=atol):
        return 1
    _, _, z = weyl_coordinates(matrix)
    if abs(z) < 1e-4:
        return 2
    return 3


def min_gate_count(matrix: np.ndarray, basis: str, atol: float = 1e-6) -> int:
    """Dispatch to the minimal-count rule for the named two-qubit basis gate.

    Parameters
    ----------
    matrix:
        Target two-qubit unitary.
    basis:
        One of ``"cz"``, ``"cnot"``, ``"cx"``, ``"iswap"``, ``"sqrt_iswap"``.
    """
    key = basis.lower()
    if key in ("cz", "cnot", "cx"):
        return min_cz_count(matrix, atol=atol)
    if key == "iswap":
        return min_iswap_count(matrix, atol=atol)
    if key in ("sqrt_iswap", "sqiswap"):
        return min_sqrt_iswap_count(matrix, atol=atol)
    raise ValueError(f"no analytic gate-count rule for basis {basis!r}")
