"""Parametric gate families.

The key families from the paper (Table I):

* ``fSim(theta, phi)`` -- Google's proposed continuous family.
* ``XY(theta)`` -- Rigetti's proposed family; ``XY(theta)`` equals
  ``fSim(theta/2, 0)`` up to single-qubit rotations (the paper's identity
  ``XY(theta) = iSWAP(theta/2) = fSim(theta/2, 0)``).
* ``CPHASE(phi) = CZ(phi) = fSim(0, phi)``.
* ``U3(alpha, beta, lambda)`` -- arbitrary single-qubit rotation used in
  NuOp's template circuits.
"""

from __future__ import annotations

import numpy as np


def rx(theta: float) -> np.ndarray:
    """Rotation about the X axis by ``theta``."""
    c = np.cos(theta / 2)
    s = np.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation about the Y axis by ``theta``."""
    c = np.cos(theta / 2)
    s = np.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation about the Z axis by ``theta``."""
    return np.array(
        [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]], dtype=complex
    )


def phase_gate(phi: float) -> np.ndarray:
    """Diagonal phase gate ``diag(1, exp(i*phi))``."""
    return np.array([[1, 0], [0, np.exp(1j * phi)]], dtype=complex)


def u3(alpha: float, beta: float, lam: float) -> np.ndarray:
    """Arbitrary single-qubit rotation with three Euler angles.

    Uses the convention printed in the paper (footnote 1)::

        U3(a, b, l) = [[cos(a/2),           -exp(i*l) sin(a/2)],
                       [exp(i*b) sin(a/2),   exp(i*(b+l)) cos(a/2)]]
    """
    c = np.cos(alpha / 2)
    s = np.sin(alpha / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * beta) * s, np.exp(1j * (beta + lam)) * c],
        ],
        dtype=complex,
    )


def fsim(theta: float, phi: float) -> np.ndarray:
    """Google ``fSim(theta, phi)`` gate (Table I).

    ``fSim(pi/2, pi/6)`` is the Sycamore (SYC) gate, ``fSim(pi/4, 0)`` is
    sqrt(iSWAP), ``fSim(0, pi)`` is CZ and ``fSim(pi/2, 0)`` is iSWAP (all up
    to single-qubit rotations and global phase).
    """
    c = np.cos(theta)
    s = np.sin(theta)
    return np.array(
        [
            [1, 0, 0, 0],
            [0, c, -1j * s, 0],
            [0, -1j * s, c, 0],
            [0, 0, 0, np.exp(-1j * phi)],
        ],
        dtype=complex,
    )


def xy(theta: float) -> np.ndarray:
    """Rigetti ``XY(theta)`` gate (Table I).

    ``XY(pi)`` is the iSWAP gate up to single-qubit rotations, and
    ``XY(theta)`` is locally equivalent to ``fSim(theta/2, 0)``.
    """
    c = np.cos(theta / 2)
    s = np.sin(theta / 2)
    return np.array(
        [
            [1, 0, 0, 0],
            [0, c, 1j * s, 0],
            [0, 1j * s, c, 0],
            [0, 0, 0, 1],
        ],
        dtype=complex,
    )


def cphase(phi: float) -> np.ndarray:
    """Controlled-phase gate ``CZ(phi) = diag(1, 1, 1, exp(i*phi))``.

    ``cphase(pi)`` is the CZ gate.  In fSim notation this is
    ``fSim(0, -phi)`` (the fSim convention carries a minus sign on phi).
    """
    return np.diag([1, 1, 1, np.exp(1j * phi)]).astype(complex)


def rzz(beta: float) -> np.ndarray:
    """Two-qubit ZZ interaction ``exp(-i * beta * Z (x) Z)``.

    This is the native two-qubit operation of QAOA MaxCut circuits
    (Figure 2b of the paper) and of the Fermi-Hubbard Trotter step.
    """
    return np.diag(
        [
            np.exp(-1j * beta),
            np.exp(1j * beta),
            np.exp(1j * beta),
            np.exp(-1j * beta),
        ]
    ).astype(complex)


def rxx_plus_ryy(beta: float) -> np.ndarray:
    """Excitation-preserving ``exp(-i * beta * (XX + YY) / 2)`` interaction.

    This is the hopping term of the Fermi-Hubbard model after the
    Jordan-Wigner transformation; it is locally equivalent to an
    ``XY(2*beta)`` rotation.
    """
    c = np.cos(beta)
    s = np.sin(beta)
    return np.array(
        [
            [1, 0, 0, 0],
            [0, c, -1j * s, 0],
            [0, -1j * s, c, 0],
            [0, 0, 0, 1],
        ],
        dtype=complex,
    )


def canonical_gate(a: float, b: float, c: float) -> np.ndarray:
    """Canonical (Weyl chamber) two-qubit gate ``exp(i (a XX + b YY + c ZZ))``.

    Every two-qubit unitary is equivalent, up to single-qubit rotations
    before and after, to a canonical gate.  The coordinates ``(a, b, c)``
    are the Weyl-chamber coordinates returned by
    :func:`repro.gates.kak.weyl_coordinates`.
    """
    xx = np.kron(np.array([[0, 1], [1, 0]]), np.array([[0, 1], [1, 0]]))
    yy = np.kron(np.array([[0, -1j], [1j, 0]]), np.array([[0, -1j], [1j, 0]]))
    zz = np.kron(np.diag([1, -1]), np.diag([1, -1]))
    from scipy.linalg import expm

    return expm(1j * (a * xx + b * yy + c * zz)).astype(complex)


def controlled_rz(phi: float) -> np.ndarray:
    """Controlled-RZ gate used by the QFT circuit, ``diag(1,1,1,e^{i phi})``.

    Alias for :func:`cphase`; kept separate because the QFT generator in
    :mod:`repro.applications.qft` refers to controlled rotations
    ``CZ(pi / 2**t)``.
    """
    return cphase(phi)
