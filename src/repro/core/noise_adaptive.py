"""Noise-adaptive gate-type selection (Section V.B of the paper).

When an instruction set exposes several two-qubit gate types, NuOp chooses,
for every application operation and every qubit pair, the gate type whose
decomposition maximises the overall fidelity ``F_u = F_d * F_h`` -- where
``F_h`` uses the *calibrated* per-edge fidelity of that gate type.  This is
the mechanism behind the Figure 5 example and the Figure 10b vs 10e
ablation: with noise variation across gate types, adaptivity buys extra
reliability on top of the instruction-count reduction.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.decomposer import NuOpDecomposer, TwoQubitDecomposition
from repro.core.instruction_sets import InstructionSet


def decompose_with_instruction_set(
    decomposer: NuOpDecomposer,
    target: np.ndarray,
    instruction_set: InstructionSet,
    edge_fidelities: Optional[Dict[str, float]] = None,
    approximate: bool = True,
    single_qubit_fidelity: float = 1.0,
    default_gate_fidelity: float = 1.0,
    max_layers: Optional[int] = None,
) -> TwoQubitDecomposition:
    """Best decomposition of ``target`` under an instruction set on one edge.

    Parameters
    ----------
    decomposer:
        The (cached) NuOp decomposer.
    target:
        Application two-qubit unitary.
    instruction_set:
        Candidate instruction set (discrete or continuous).
    edge_fidelities:
        Calibrated fidelity of each gate type (keyed by
        :attr:`GateType.type_key`) on the qubit pair where the operation
        will execute.  Missing keys fall back to ``default_gate_fidelity``.
    approximate:
        Use the Eq. 2 objective (default).  When False, exact
        decompositions are produced and ranked by ``F_h`` alone.
    single_qubit_fidelity:
        Optional fidelity of the interleaved single-qubit gates.
    """
    edge_fidelities = edge_fidelities or {}

    if instruction_set.is_continuous:
        family = instruction_set.continuous_family
        fidelity = edge_fidelities.get("*", default_gate_fidelity)
        if approximate:
            return decomposer.decompose_approximate(
                target,
                family=family,
                gate_fidelity=fidelity,
                single_qubit_fidelity=single_qubit_fidelity,
                max_layers=max_layers,
                label=instruction_set.name,
            )
        decomposition = decomposer.decompose_exact(
            target, family=family, max_layers=max_layers, label=instruction_set.name
        )
        decomposition.hardware_fidelity = fidelity**decomposition.num_layers
        return decomposition

    best: Optional[TwoQubitDecomposition] = None
    for gate_type in instruction_set.gate_types:
        fidelity = edge_fidelities.get(gate_type.type_key, default_gate_fidelity)
        if approximate:
            candidate = decomposer.decompose_approximate(
                target,
                gate=gate_type.gate,
                gate_fidelity=fidelity,
                single_qubit_fidelity=single_qubit_fidelity,
                max_layers=max_layers,
                label=gate_type.label,
            )
        else:
            candidate = decomposer.decompose_exact(
                target, gate=gate_type.gate, max_layers=max_layers, label=gate_type.label
            )
            candidate.hardware_fidelity = fidelity**candidate.num_layers
        if best is None or candidate.overall_fidelity > best.overall_fidelity + 1e-12:
            best = candidate
    return best


def best_gate_type_per_edge(
    decomposer: NuOpDecomposer,
    target: np.ndarray,
    instruction_set: InstructionSet,
    per_edge_fidelities: Dict[tuple, Dict[str, float]],
    approximate: bool = True,
) -> Dict[tuple, str]:
    """For diagnostics: the gate-type label chosen on every edge for one target.

    Reproduces the Figure 5 narrative (CZ chosen on pair (2, 3), XY(pi) on
    pair (3, 4) of Aspen-8).
    """
    choices: Dict[tuple, str] = {}
    for edge, fidelities in per_edge_fidelities.items():
        decomposition = decompose_with_instruction_set(
            decomposer,
            target,
            instruction_set,
            edge_fidelities=fidelities,
            approximate=approximate,
        )
        choices[edge] = decomposition.gate_type_label or instruction_set.name
    return choices
