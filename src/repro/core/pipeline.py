"""End-to-end compilation pipeline (Figure 1 of the paper).

``compile_circuit`` is a thin driver over the PassManager architecture
(:mod:`repro.compiler.manager`): it resolves a named pipeline (``default``,
``exact``, ``no-cancellation``, ...), runs its passes over a shared
:class:`~repro.compiler.manager.PassContext` and packages the result as a
:class:`CompiledCircuit` carrying the statistics the experiments report --
two-qubit instruction counts, gate-type usage, swap counts, estimated
fidelities and per-pass wall times.

The pre-PassManager monolithic implementation is retained verbatim as
:func:`compile_circuit_reference`; ``tests/test_compiler_passes.py``
asserts the ``default`` pipeline reproduces it bit-for-bit (including the
device calibration RNG consumption order).

Two cache tiers back :func:`compile_circuit_cached`:

* a process-local, LRU-bounded :class:`CompilationCache` (memory tier),
* an optional persistent :class:`~repro.caching.disk.DiskCompilationCache`
  (disk tier, enabled via ``REPRO_CACHE_DIR`` / ``--cache-dir``) that
  warm-starts *fresh processes* -- see :mod:`repro.caching.disk`.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.hashing import (
    circuit_fingerprint,
    hash_scalars,
    instruction_set_fingerprint,
)
from repro.compiler.layout import Layout
from repro.compiler.manager import (
    PassContext,
    PassStatistics,
    PipelineConfig,
    resolve_pipeline,
)
from repro.compiler.onequbit import merge_single_qubit_gates
from repro.compiler.routing import RoutedCircuit
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import InstructionSet
from repro.core.noise_adaptive import decompose_with_instruction_set
from repro.devices.device import Device


@dataclass
class CompiledCircuit:
    """A fully compiled circuit plus bookkeeping for the experiments."""

    circuit: QuantumCircuit
    physical_qubits: Tuple[int, ...]
    initial_mapping: Dict[int, int]
    final_mapping: Dict[int, int]
    instruction_set_name: str
    num_swaps: int = 0
    gate_type_usage: Dict[str, int] = field(default_factory=dict)
    decomposition_fidelities: List[float] = field(default_factory=list)
    estimated_hardware_fidelity: float = 1.0
    pipeline_name: str = "default"
    pass_timings: Dict[str, float] = field(default_factory=dict)
    """Per-pass wall times of the compilation that *produced* this object;
    cache hits return the producing compile's timings, not the hit's."""
    pass_stats: List[PassStatistics] = field(default_factory=list)
    """Per-pass rewrite statistics (gates removed/added, 2Q and depth
    deltas, wall time) in execution order, recorded by the PassManager.
    Like ``pass_timings``, cache hits carry the producing compile's
    records."""
    emitted_gate_types: List[str] = field(default_factory=list)
    schedule_duration: Optional[float] = None

    @property
    def two_qubit_gate_count(self) -> int:
        """Number of hardware two-qubit instructions in the compiled circuit."""
        return self.circuit.num_two_qubit_gates()

    @property
    def average_decomposition_fidelity(self) -> float:
        """Mean ``F_d`` over the decomposed application operations."""
        if not self.decomposition_fidelities:
            return 1.0
        return float(np.mean(self.decomposition_fidelities))

    def program_qubit_order(self) -> List[int]:
        """``order[i]`` = slot holding program qubit ``i`` at the end of the circuit."""
        return [self.final_mapping[q] for q in sorted(self.final_mapping)]


class NuOpPass:
    """Circuit-level NuOp pass: decompose every two-qubit operation.

    The pass walks a routed circuit (expressed on layout slots), looks up
    the calibrated fidelity of every candidate gate type on the physical
    edge behind each operation, and splices in the decomposition that
    maximises ``F_d * F_h``.
    """

    def __init__(
        self,
        instruction_set: InstructionSet,
        decomposer: Optional[NuOpDecomposer] = None,
        approximate: bool = True,
        use_noise_adaptivity: bool = True,
        max_layers: Optional[int] = None,
    ):
        self.instruction_set = instruction_set
        self.decomposer = decomposer if decomposer is not None else NuOpDecomposer()
        self.approximate = approximate
        self.use_noise_adaptivity = use_noise_adaptivity
        self.max_layers = max_layers

    def _edge_fidelities(
        self, device: Device, physical_pair: Sequence[int]
    ) -> Dict[str, float]:
        if self.instruction_set.is_continuous:
            mean_error = device.two_qubit_error_distribution.expected()
            return {"*": 1.0 - mean_error}
        fidelities = {}
        for gate_type in self.instruction_set.gate_types:
            if self.use_noise_adaptivity:
                fidelity = device.gate_fidelity(gate_type.type_key, physical_pair)
            else:
                fidelity = 1.0 - device.two_qubit_error_distribution.expected()
            fidelities[gate_type.type_key] = fidelity
        return fidelities

    def run(
        self,
        circuit: QuantumCircuit,
        device: Device,
        physical_qubits: Sequence[int],
    ) -> Tuple[QuantumCircuit, Dict[str, int], List[float], float]:
        """Decompose ``circuit`` (on slots) for the instruction set.

        Returns ``(decomposed_circuit, gate_type_usage, decomposition_fidelities,
        estimated_hardware_fidelity)``.
        """
        single_qubit_fidelity = 1.0 - np.mean(
            [device.noise_model.single_qubit_error_rate(q) for q in physical_qubits]
        )
        output = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_{self.instruction_set.name}")
        usage: Dict[str, int] = {}
        fidelities: List[float] = []
        hardware_estimate = 1.0

        for operation in circuit:
            if not operation.is_two_qubit:
                output.append_operation(operation)
                continue
            slot_a, slot_b = operation.qubits
            physical_pair = (physical_qubits[slot_a], physical_qubits[slot_b])
            edge_fidelities = self._edge_fidelities(device, physical_pair)
            decomposition = decompose_with_instruction_set(
                self.decomposer,
                operation.gate.matrix,
                self.instruction_set,
                edge_fidelities=edge_fidelities,
                approximate=self.approximate,
                single_qubit_fidelity=float(single_qubit_fidelity),
                max_layers=self.max_layers,
            )
            label = decomposition.gate_type_label or self.instruction_set.name
            usage[label] = usage.get(label, 0) + decomposition.num_layers
            fidelities.append(decomposition.decomposition_fidelity)
            hardware_estimate *= decomposition.overall_fidelity
            for new_operation in decomposition.operations((slot_a, slot_b)):
                output.append_operation(new_operation)
        return output, usage, fidelities, float(hardware_estimate)


def _is_auto_pipeline(pipeline: object) -> bool:
    """True when the caller asked the autotuner to pick the pipeline."""
    from repro.compiler.autotune import AUTO_PIPELINE

    return isinstance(pipeline, str) and pipeline == AUTO_PIPELINE


def compile_circuit(
    circuit: QuantumCircuit,
    device: Device,
    instruction_set: InstructionSet,
    decomposer: Optional[NuOpDecomposer] = None,
    approximate: bool = True,
    use_noise_adaptivity: bool = True,
    merge_single_qubit: bool = True,
    layout: Optional[Layout] = None,
    error_scale: float = 1.0,
    max_layers: Optional[int] = None,
    pipeline: Union[str, PipelineConfig] = "default",
) -> CompiledCircuit:
    """Compile an application circuit for a device and instruction set.

    Thin driver over the PassManager architecture: resolves ``pipeline``
    (a registry name or an explicit
    :class:`~repro.compiler.manager.PipelineConfig`), registers calibration
    data for the instruction set's gate types, runs the pipeline's passes
    over a shared context and packages the result.  The ``default``
    pipeline -- layout, routing, NuOp, single-qubit merge -- reproduces
    :func:`compile_circuit_reference` bit-for-bit.

    Pipeline ``overrides`` (e.g. the ``exact`` pipeline's
    ``approximate=False``) take precedence over the corresponding keyword
    arguments; that is what makes selecting a pipeline equivalent to the
    forked code path it replaces.

    ``error_scale`` scales the error rate of any gate type registered
    during this call; the Figure 10a-c "FullfSim at 1.5x/2x/3x error"
    sweeps use it.

    ``pipeline="auto"`` asks the pipeline autotuner
    (:mod:`repro.compiler.autotune`) to pick the candidate pipeline with
    the best predicted compiled fidelity for this exact (circuit, device
    calibration, instruction set) combination before compiling.
    """
    if _is_auto_pipeline(pipeline):
        from repro.compiler.autotune import autotune_pipeline

        verdict = autotune_pipeline(
            circuit,
            device,
            instruction_set,
            decomposer=decomposer,
            approximate=approximate,
            use_noise_adaptivity=use_noise_adaptivity,
            merge_single_qubit=merge_single_qubit,
            layout=layout,
            error_scale=error_scale,
            max_layers=max_layers,
        )
        pipeline = verdict.pipeline
        approximate, max_layers = verdict.compile_options(approximate, max_layers)
    config = resolve_pipeline(pipeline)
    options = {
        "approximate": approximate,
        "use_noise_adaptivity": use_noise_adaptivity,
        "error_scale": error_scale,
        "max_layers": max_layers,
    }
    options.update(config.overrides)

    decomposer = decomposer if decomposer is not None else NuOpDecomposer()
    if not instruction_set.is_continuous:
        device.ensure_gate_types(
            instruction_set.type_keys(), scale=float(options["error_scale"])
        )

    context = PassContext(
        circuit=circuit,
        device=device,
        instruction_set=instruction_set,
        decomposer=decomposer,
        approximate=bool(options["approximate"]),
        use_noise_adaptivity=bool(options["use_noise_adaptivity"]),
        error_scale=float(options["error_scale"]),
        max_layers=options["max_layers"],
        layout=layout,
    )
    config.build(merge_single_qubit=merge_single_qubit).run(context)

    return CompiledCircuit(
        circuit=context.circuit,
        physical_qubits=context.physical_qubits,
        initial_mapping=context.initial_mapping,
        final_mapping=context.final_mapping,
        instruction_set_name=instruction_set.name,
        num_swaps=context.num_swaps,
        gate_type_usage=context.gate_type_usage,
        decomposition_fidelities=context.decomposition_fidelities,
        estimated_hardware_fidelity=context.estimated_hardware_fidelity,
        pipeline_name=config.name,
        pass_timings=dict(context.pass_timings),
        pass_stats=list(context.pass_stats),
        emitted_gate_types=list(context.emitted_gate_types),
        schedule_duration=(
            context.schedule.total_duration if context.schedule is not None else None
        ),
    )


def compile_circuit_reference(
    circuit: QuantumCircuit,
    device: Device,
    instruction_set: InstructionSet,
    decomposer: Optional[NuOpDecomposer] = None,
    approximate: bool = True,
    use_noise_adaptivity: bool = True,
    merge_single_qubit: bool = True,
    layout: Optional[Layout] = None,
    error_scale: float = 1.0,
    max_layers: Optional[int] = None,
) -> CompiledCircuit:
    """The pre-PassManager monolithic implementation, kept as ground truth.

    ``tests/test_compiler_passes.py`` asserts the ``default`` pipeline
    reproduces this function bit-for-bit (compiled operations, mappings,
    statistics and device calibration RNG consumption).  Do not optimise
    or restructure it; its stasis is the point.
    """
    from repro.compiler.layout import choose_layout
    from repro.compiler.routing import route_circuit

    if not instruction_set.is_continuous:
        device.ensure_gate_types(instruction_set.type_keys(), scale=error_scale)
        scoring_keys = instruction_set.type_keys()
    else:
        scoring_keys = None

    if layout is None:
        layout = choose_layout(circuit, device, scoring_keys, 200)
    routed: RoutedCircuit = route_circuit(circuit, device, layout, lookahead=10)

    nuop = NuOpPass(
        instruction_set,
        decomposer=decomposer,
        approximate=approximate,
        use_noise_adaptivity=use_noise_adaptivity,
        max_layers=max_layers,
    )
    decomposed, usage, fidelities, hardware_estimate = nuop.run(
        routed.circuit, device, routed.physical_qubits
    )

    new_keys = sorted(
        {
            op.gate.type_key
            for op in decomposed
            if op.is_two_qubit
        }
    )
    device.ensure_gate_types(new_keys, scale=error_scale)

    if merge_single_qubit:
        decomposed = merge_single_qubit_gates(decomposed)

    return CompiledCircuit(
        circuit=decomposed,
        physical_qubits=routed.physical_qubits,
        initial_mapping=routed.initial_mapping,
        final_mapping=routed.final_mapping,
        instruction_set_name=instruction_set.name,
        num_swaps=routed.num_swaps,
        gate_type_usage=usage,
        decomposition_fidelities=fidelities,
        estimated_hardware_fidelity=hardware_estimate,
        emitted_gate_types=new_keys,
    )


# ---------------------------------------------------------------------------
# Compilation caching
# ---------------------------------------------------------------------------


def _decomposer_fingerprint(decomposer: NuOpDecomposer) -> str:
    """Digest of the decomposer configuration (its cache never changes results).

    The Weyl-chamber tabulation state is folded in only when active, as a
    trailing component: a decomposer with tabulation off hashes exactly
    as it did before tabulation existed, so pre-existing disk-cache
    entries stay valid.  (Tabulated results are polished from grid starts
    rather than optimised from scratch, so the two modes must never share
    compilation-cache entries.)
    """
    tabulation = decomposer.resolved_tabulation()
    extra = () if tabulation is None else tabulation.fingerprint()
    return hash_scalars(
        "decomposer",
        decomposer.max_layers,
        decomposer.restarts,
        decomposer.confirmation_restarts,
        decomposer.maxiter,
        decomposer.exact_threshold,
        decomposer.seed,
        *extra,
    )


@dataclass
class _CacheEntry:
    """A cached compilation result plus the side effects to replay on a hit."""

    compiled: CompiledCircuit
    emitted_type_keys: List[str]


class CompilationCache:
    """Keyed cache around :func:`compile_circuit`.

    Keys combine content digests of the circuit, the instruction set, the
    device calibration state, the decomposer configuration and the
    pipeline config with the scalar compilation options, so a hit is only
    possible when the cached call would have produced a bit-identical
    result.

    ``compile_circuit`` has a side effect the cache must preserve: it
    registers calibration data for gate types the device has not seen yet,
    consuming the device's calibration RNG.  On a hit the cache *replays*
    those registrations (the instruction set's own types, then the gate
    types emitted by the decomposition, in the same order the original
    call used), so a warm-cache run leaves the device in exactly the state
    a cold run would -- the property the determinism test suite pins down.

    The cache is thread-safe and bounded with **LRU eviction** (a hit
    refreshes the entry's recency); the bound is the ``max_entries``
    constructor argument, and the process-global instance reads it from
    the ``REPRO_COMPILE_CACHE_SIZE`` environment variable (default 4096).
    The experiment engine shares that global instance across studies so
    ideal sweep workloads (same circuits, many error scales) reuse work.
    """

    def __init__(self, max_entries: int = 4096):
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple, _CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Current hit/miss/size counters (for benchmark reporting)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
            }

    def _get(self, key: Tuple) -> Optional[_CacheEntry]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
            else:
                self.misses += 1
            return entry

    def _put(self, key: Tuple, entry: _CacheEntry) -> None:
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)


_DEFAULT_COMPILE_CACHE_SIZE = 4096

COMPILE_CACHE_SIZE_ENV_VAR = "REPRO_COMPILE_CACHE_SIZE"
"""Environment variable overriding the global memory-cache bound.  Read
once, when the process-global cache is constructed at import time."""


def _default_cache_size() -> int:
    """Global memory-cache bound, configurable via ``REPRO_COMPILE_CACHE_SIZE``.

    Invalid values -- non-numeric, zero or negative -- fall back to the
    documented default (4096) with a warning, instead of being silently
    clamped; a zero-entry cache would defeat the determinism-preserving
    side-effect replay without telling anyone why everything got slow.
    Parsing policy: :func:`repro.config.positive_int_env`.
    """
    from repro.config import positive_int_env

    return positive_int_env(COMPILE_CACHE_SIZE_ENV_VAR, _DEFAULT_COMPILE_CACHE_SIZE)


_GLOBAL_COMPILATION_CACHE = CompilationCache(max_entries=_default_cache_size())


def global_compilation_cache() -> CompilationCache:
    """The process-wide compilation cache used when no explicit cache is given."""
    return _GLOBAL_COMPILATION_CACHE


def compilation_cache_key(
    circuit: QuantumCircuit,
    device: Device,
    instruction_set: InstructionSet,
    decomposer: NuOpDecomposer,
    approximate: bool,
    use_noise_adaptivity: bool,
    merge_single_qubit: bool,
    error_scale: float,
    max_layers: Optional[int],
    pipeline_config: PipelineConfig,
) -> Tuple:
    """Content-addressed key shared by the memory and disk cache tiers.

    Every component is a digest or plain scalar, so the tuple is hashable,
    order-stable and serialisable across processes (the disk tier folds it
    into a single SHA-256 file name).
    """
    return (
        circuit_fingerprint(circuit),
        device.calibration_fingerprint(),
        instruction_set_fingerprint(instruction_set),
        _decomposer_fingerprint(decomposer),
        pipeline_config.fingerprint(),
        bool(approximate),
        bool(use_noise_adaptivity),
        bool(merge_single_qubit),
        float(error_scale),
        max_layers,
    )


def _stamp_pipeline_name(
    compiled: CompiledCircuit, pipeline_config: PipelineConfig
) -> CompiledCircuit:
    """Relabel a cached result compiled under a content-equal pipeline alias.

    ``default`` and ``no-cancellation`` share fingerprints (and therefore
    cache entries) on purpose; a hit must still report the pipeline the
    *caller* selected.  The common same-name path returns the shared
    object untouched; the alias path gets a shallow copy.
    """
    if compiled.pipeline_name == pipeline_config.name:
        return compiled
    return dataclasses.replace(compiled, pipeline_name=pipeline_config.name)


def _replay_registrations(
    device: Device,
    instruction_set: InstructionSet,
    emitted_type_keys: Sequence[str],
    error_scale: float,
) -> None:
    """Re-run the calibration registrations of the original compilation.

    Keeps the device RNG in exactly the state a cold compile would leave
    it: instruction-set types first (as the driver registers them), then
    the gate types the decomposition emitted.
    """
    if not instruction_set.is_continuous:
        device.ensure_gate_types(instruction_set.type_keys(), scale=error_scale)
    device.ensure_gate_types(list(emitted_type_keys), scale=error_scale)


def compile_circuit_cached(
    circuit: QuantumCircuit,
    device: Device,
    instruction_set: InstructionSet,
    decomposer: Optional[NuOpDecomposer] = None,
    approximate: bool = True,
    use_noise_adaptivity: bool = True,
    merge_single_qubit: bool = True,
    layout: Optional[Layout] = None,
    error_scale: float = 1.0,
    max_layers: Optional[int] = None,
    pipeline: Union[str, PipelineConfig] = "default",
    cache: Optional[CompilationCache] = None,
    disk_cache: Optional["object"] = None,
) -> CompiledCircuit:
    """Drop-in replacement for :func:`compile_circuit` backed by cache tiers.

    Identical signature and semantics; lookup order is **memory -> disk ->
    compile**.  The memory tier defaults to the process-global
    :class:`CompilationCache`; the disk tier defaults to the globally
    configured :class:`~repro.caching.disk.DiskCompilationCache` (none
    unless ``REPRO_CACHE_DIR`` is set or
    :func:`repro.caching.disk.configure_disk_cache` was called), so a
    fresh process warm-starts from results persisted by earlier ones.
    A disk hit is promoted into the memory tier; a compile populates both.

    Callers must treat the returned :class:`CompiledCircuit` as immutable.
    Calls with an explicit ``layout`` bypass every tier: pinned layouts are
    used by experiments that deliberately compare instruction sets on
    identical placements, and caching them would need the layout content in
    the key for little gain.
    """
    from repro.caching.disk import get_global_disk_cache

    decomposer = decomposer if decomposer is not None else NuOpDecomposer()
    if _is_auto_pipeline(pipeline):
        from repro.compiler.autotune import autotune_pipeline

        verdict = autotune_pipeline(
            circuit,
            device,
            instruction_set,
            decomposer=decomposer,
            approximate=approximate,
            use_noise_adaptivity=use_noise_adaptivity,
            merge_single_qubit=merge_single_qubit,
            layout=layout,
            error_scale=error_scale,
            max_layers=max_layers,
            cache=cache,
            disk_cache=disk_cache,
        )
        pipeline = verdict.pipeline
        approximate, max_layers = verdict.compile_options(approximate, max_layers)
    pipeline_config = resolve_pipeline(pipeline)
    if layout is not None:
        return compile_circuit(
            circuit,
            device,
            instruction_set,
            decomposer=decomposer,
            approximate=approximate,
            use_noise_adaptivity=use_noise_adaptivity,
            merge_single_qubit=merge_single_qubit,
            layout=layout,
            error_scale=error_scale,
            max_layers=max_layers,
            pipeline=pipeline_config,
        )
    cache = cache if cache is not None else _GLOBAL_COMPILATION_CACHE
    disk = disk_cache if disk_cache is not None else get_global_disk_cache()
    effective_scale = float(
        pipeline_config.overrides.get("error_scale", error_scale)
    )
    key = compilation_cache_key(
        circuit,
        device,
        instruction_set,
        decomposer,
        approximate,
        use_noise_adaptivity,
        merge_single_qubit,
        error_scale,
        max_layers,
        pipeline_config,
    )
    entry = cache._get(key)
    if entry is not None:
        _replay_registrations(
            device, instruction_set, entry.emitted_type_keys, effective_scale
        )
        return _stamp_pipeline_name(entry.compiled, pipeline_config)

    if disk is not None:
        stored = disk.get(key)
        if stored is not None:
            entry = _CacheEntry(
                compiled=stored.compiled,
                emitted_type_keys=list(stored.emitted_type_keys),
            )
            cache._put(key, entry)
            _replay_registrations(
                device, instruction_set, entry.emitted_type_keys, effective_scale
            )
            return _stamp_pipeline_name(entry.compiled, pipeline_config)

    compiled = compile_circuit(
        circuit,
        device,
        instruction_set,
        decomposer=decomposer,
        approximate=approximate,
        use_noise_adaptivity=use_noise_adaptivity,
        merge_single_qubit=merge_single_qubit,
        layout=None,
        error_scale=error_scale,
        max_layers=max_layers,
        pipeline=pipeline_config,
    )
    emitted = list(compiled.emitted_gate_types)
    cache._put(key, _CacheEntry(compiled=compiled, emitted_type_keys=emitted))
    if disk is not None:
        disk.put(key, compiled, emitted)
    return compiled
