"""End-to-end compilation pipeline (Figure 1 of the paper).

``compile_circuit`` chains the device-mapping compiler
(:mod:`repro.compiler`) with the NuOp decomposition pass
(:class:`NuOpPass`): layout, routing, per-operation noise-adaptive gate
decomposition and single-qubit gate merging.  The result carries the
statistics the experiments report: two-qubit instruction counts, gate-type
usage, swap counts and estimated fidelities.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Operation, QuantumCircuit
from repro.circuits.gate import named_gate
from repro.circuits.hashing import (
    circuit_fingerprint,
    hash_scalars,
    instruction_set_fingerprint,
)
from repro.compiler.layout import Layout
from repro.compiler.onequbit import merge_single_qubit_gates
from repro.compiler.passes import map_and_route
from repro.compiler.routing import RoutedCircuit
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import InstructionSet
from repro.core.noise_adaptive import decompose_with_instruction_set
from repro.devices.device import Device


@dataclass
class CompiledCircuit:
    """A fully compiled circuit plus bookkeeping for the experiments."""

    circuit: QuantumCircuit
    physical_qubits: Tuple[int, ...]
    initial_mapping: Dict[int, int]
    final_mapping: Dict[int, int]
    instruction_set_name: str
    num_swaps: int = 0
    gate_type_usage: Dict[str, int] = field(default_factory=dict)
    decomposition_fidelities: List[float] = field(default_factory=list)
    estimated_hardware_fidelity: float = 1.0

    @property
    def two_qubit_gate_count(self) -> int:
        """Number of hardware two-qubit instructions in the compiled circuit."""
        return self.circuit.num_two_qubit_gates()

    @property
    def average_decomposition_fidelity(self) -> float:
        """Mean ``F_d`` over the decomposed application operations."""
        if not self.decomposition_fidelities:
            return 1.0
        return float(np.mean(self.decomposition_fidelities))

    def program_qubit_order(self) -> List[int]:
        """``order[i]`` = slot holding program qubit ``i`` at the end of the circuit."""
        return [self.final_mapping[q] for q in sorted(self.final_mapping)]


class NuOpPass:
    """Circuit-level NuOp pass: decompose every two-qubit operation.

    The pass walks a routed circuit (expressed on layout slots), looks up
    the calibrated fidelity of every candidate gate type on the physical
    edge behind each operation, and splices in the decomposition that
    maximises ``F_d * F_h``.
    """

    def __init__(
        self,
        instruction_set: InstructionSet,
        decomposer: Optional[NuOpDecomposer] = None,
        approximate: bool = True,
        use_noise_adaptivity: bool = True,
        max_layers: Optional[int] = None,
    ):
        self.instruction_set = instruction_set
        self.decomposer = decomposer if decomposer is not None else NuOpDecomposer()
        self.approximate = approximate
        self.use_noise_adaptivity = use_noise_adaptivity
        self.max_layers = max_layers

    def _edge_fidelities(
        self, device: Device, physical_pair: Sequence[int]
    ) -> Dict[str, float]:
        if self.instruction_set.is_continuous:
            mean_error = device.two_qubit_error_distribution.expected()
            return {"*": 1.0 - mean_error}
        fidelities = {}
        for gate_type in self.instruction_set.gate_types:
            if self.use_noise_adaptivity:
                fidelity = device.gate_fidelity(gate_type.type_key, physical_pair)
            else:
                fidelity = 1.0 - device.two_qubit_error_distribution.expected()
            fidelities[gate_type.type_key] = fidelity
        return fidelities

    def run(
        self,
        circuit: QuantumCircuit,
        device: Device,
        physical_qubits: Sequence[int],
    ) -> Tuple[QuantumCircuit, Dict[str, int], List[float], float]:
        """Decompose ``circuit`` (on slots) for the instruction set.

        Returns ``(decomposed_circuit, gate_type_usage, decomposition_fidelities,
        estimated_hardware_fidelity)``.
        """
        single_qubit_fidelity = 1.0 - np.mean(
            [device.noise_model.single_qubit_error_rate(q) for q in physical_qubits]
        )
        output = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_{self.instruction_set.name}")
        usage: Dict[str, int] = {}
        fidelities: List[float] = []
        hardware_estimate = 1.0

        for operation in circuit:
            if not operation.is_two_qubit:
                output.append_operation(operation)
                continue
            slot_a, slot_b = operation.qubits
            physical_pair = (physical_qubits[slot_a], physical_qubits[slot_b])
            edge_fidelities = self._edge_fidelities(device, physical_pair)
            decomposition = decompose_with_instruction_set(
                self.decomposer,
                operation.gate.matrix,
                self.instruction_set,
                edge_fidelities=edge_fidelities,
                approximate=self.approximate,
                single_qubit_fidelity=float(single_qubit_fidelity),
                max_layers=self.max_layers,
            )
            label = decomposition.gate_type_label or self.instruction_set.name
            usage[label] = usage.get(label, 0) + decomposition.num_layers
            fidelities.append(decomposition.decomposition_fidelity)
            hardware_estimate *= decomposition.overall_fidelity
            for new_operation in decomposition.operations((slot_a, slot_b)):
                output.append_operation(new_operation)
        return output, usage, fidelities, float(hardware_estimate)


def compile_circuit(
    circuit: QuantumCircuit,
    device: Device,
    instruction_set: InstructionSet,
    decomposer: Optional[NuOpDecomposer] = None,
    approximate: bool = True,
    use_noise_adaptivity: bool = True,
    merge_single_qubit: bool = True,
    layout: Optional[Layout] = None,
    error_scale: float = 1.0,
    max_layers: Optional[int] = None,
) -> CompiledCircuit:
    """Compile an application circuit for a device and instruction set.

    Steps: register calibration data for the instruction set's gate types,
    choose a layout, route, run NuOp, merge single-qubit gates, and make
    sure every gate type appearing in the output (relevant for continuous
    families) has calibration data for the simulator.

    ``error_scale`` scales the error rate of any gate type registered
    during this call; the Figure 10a-c "FullfSim at 1.5x/2x/3x error"
    sweeps use it.
    """
    if not instruction_set.is_continuous:
        device.ensure_gate_types(instruction_set.type_keys(), scale=error_scale)
        scoring_keys = instruction_set.type_keys()
    else:
        scoring_keys = None

    routed: RoutedCircuit = map_and_route(
        circuit, device, gate_type_keys=scoring_keys, layout=layout
    )

    nuop = NuOpPass(
        instruction_set,
        decomposer=decomposer,
        approximate=approximate,
        use_noise_adaptivity=use_noise_adaptivity,
        max_layers=max_layers,
    )
    decomposed, usage, fidelities, hardware_estimate = nuop.run(
        routed.circuit, device, routed.physical_qubits
    )

    # Continuous families emit freshly-parameterised gates; give them
    # calibration data so the noise model can simulate them.
    new_keys = sorted(
        {
            op.gate.type_key
            for op in decomposed
            if op.is_two_qubit
        }
    )
    device.ensure_gate_types(new_keys, scale=error_scale)

    if merge_single_qubit:
        decomposed = merge_single_qubit_gates(decomposed)

    return CompiledCircuit(
        circuit=decomposed,
        physical_qubits=routed.physical_qubits,
        initial_mapping=routed.initial_mapping,
        final_mapping=routed.final_mapping,
        instruction_set_name=instruction_set.name,
        num_swaps=routed.num_swaps,
        gate_type_usage=usage,
        decomposition_fidelities=fidelities,
        estimated_hardware_fidelity=hardware_estimate,
    )


# ---------------------------------------------------------------------------
# Compilation caching
# ---------------------------------------------------------------------------


def _decomposer_fingerprint(decomposer: NuOpDecomposer) -> str:
    """Digest of the decomposer configuration (its cache never changes results)."""
    return hash_scalars(
        "decomposer",
        decomposer.max_layers,
        decomposer.restarts,
        decomposer.confirmation_restarts,
        decomposer.maxiter,
        decomposer.exact_threshold,
        decomposer.seed,
    )


@dataclass
class _CacheEntry:
    """A cached compilation result plus the side effects to replay on a hit."""

    compiled: CompiledCircuit
    emitted_type_keys: List[str]


class CompilationCache:
    """Keyed cache around :func:`compile_circuit`.

    Keys combine content digests of the circuit, the instruction set, the
    device calibration state and the decomposer configuration with the
    scalar compilation options, so a hit is only possible when the cached
    call would have produced a bit-identical result.

    ``compile_circuit`` has a side effect the cache must preserve: it
    registers calibration data for gate types the device has not seen yet,
    consuming the device's calibration RNG.  On a hit the cache *replays*
    those registrations (the instruction set's own types, then the gate
    types emitted by the decomposition, in the same order the original
    call used), so a warm-cache run leaves the device in exactly the state
    a cold run would -- the property the determinism test suite pins down.

    The cache is thread-safe and bounded (FIFO eviction); the experiment
    engine shares one process-global instance across studies so ideal
    sweep workloads (same circuits, many error scales) reuse work.
    """

    def __init__(self, max_entries: int = 4096):
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple, _CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        """Current hit/miss/size counters (for benchmark reporting)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}

    def _get(self, key: Tuple) -> Optional[_CacheEntry]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
            else:
                self.misses += 1
            return entry

    def _put(self, key: Tuple, entry: _CacheEntry) -> None:
        with self._lock:
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)


_GLOBAL_COMPILATION_CACHE = CompilationCache()


def global_compilation_cache() -> CompilationCache:
    """The process-wide compilation cache used when no explicit cache is given."""
    return _GLOBAL_COMPILATION_CACHE


def compile_circuit_cached(
    circuit: QuantumCircuit,
    device: Device,
    instruction_set: InstructionSet,
    decomposer: Optional[NuOpDecomposer] = None,
    approximate: bool = True,
    use_noise_adaptivity: bool = True,
    merge_single_qubit: bool = True,
    layout: Optional[Layout] = None,
    error_scale: float = 1.0,
    max_layers: Optional[int] = None,
    cache: Optional[CompilationCache] = None,
) -> CompiledCircuit:
    """Drop-in replacement for :func:`compile_circuit` backed by a cache.

    Identical signature and semantics; results are returned from ``cache``
    (default: the process-global cache) when the exact same compilation has
    been performed before against a device in the same calibration state.
    Callers must treat the returned :class:`CompiledCircuit` as immutable.
    Calls with an explicit ``layout`` bypass the cache: pinned layouts are
    used by experiments that deliberately compare instruction sets on
    identical placements, and caching them would need the layout content in
    the key for little gain.
    """
    decomposer = decomposer if decomposer is not None else NuOpDecomposer()
    if layout is not None:
        return compile_circuit(
            circuit,
            device,
            instruction_set,
            decomposer=decomposer,
            approximate=approximate,
            use_noise_adaptivity=use_noise_adaptivity,
            merge_single_qubit=merge_single_qubit,
            layout=layout,
            error_scale=error_scale,
            max_layers=max_layers,
        )
    cache = cache if cache is not None else _GLOBAL_COMPILATION_CACHE
    key = (
        circuit_fingerprint(circuit),
        device.calibration_fingerprint(),
        instruction_set_fingerprint(instruction_set),
        _decomposer_fingerprint(decomposer),
        bool(approximate),
        bool(use_noise_adaptivity),
        bool(merge_single_qubit),
        float(error_scale),
        max_layers,
    )
    entry = cache._get(key)
    if entry is not None:
        # Replay the calibration registrations of the original call so the
        # device RNG advances exactly as it did on the cold path.
        if not instruction_set.is_continuous:
            device.ensure_gate_types(instruction_set.type_keys(), scale=error_scale)
        device.ensure_gate_types(entry.emitted_type_keys, scale=error_scale)
        return entry.compiled

    compiled = compile_circuit(
        circuit,
        device,
        instruction_set,
        decomposer=decomposer,
        approximate=approximate,
        use_noise_adaptivity=use_noise_adaptivity,
        merge_single_qubit=merge_single_qubit,
        layout=None,
        error_scale=error_scale,
        max_layers=max_layers,
    )
    # merge_single_qubit only rewrites single-qubit runs, so the two-qubit
    # type keys of the merged circuit equal the keys compile_circuit
    # registered from the pre-merge decomposition.
    emitted = sorted({op.gate.type_key for op in compiled.circuit if op.is_two_qubit})
    cache._put(key, _CacheEntry(compiled=compiled, emitted_type_keys=emitted))
    return compiled
