"""Instruction-set design from expressivity characterisation (Section VIII.A).

The paper selects its S1-S7 gate types by hand from the Figure 8 heatmaps:
gate types that give low instruction counts across several applications are
kept.  This module turns that procedure into an algorithm:

1. :func:`candidate_gate_grid` enumerates candidate fSim gate types on a
   parameter grid (the same grid as Figure 8),
2. :func:`expressivity_table` measures, with NuOp, how many applications of
   each candidate are needed for every application unitary,
3. :func:`greedy_instruction_set` greedily picks the ``k`` candidates that
   minimise the workload-weighted average instruction count, assuming a
   noise-adaptive compiler that always uses the best available type
   (exactly what NuOp does at compile time), and
4. :func:`design_tradeoff_curve` sweeps ``k`` and attaches the calibration
   cost of each proposed set, exposing the expressivity-vs-calibration
   Pareto frontier the paper navigates by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.calibration.model import CalibrationModel
from repro.circuits.gate import Gate, fsim_gate, named_gate
from repro.core.decomposer import NuOpDecomposer

CandidateKey = str
"""Identifier of a candidate gate type (its :attr:`Gate.type_key`)."""


@dataclass(frozen=True)
class CandidateGate:
    """One candidate hardware gate type for instruction-set design."""

    key: CandidateKey
    gate: Gate
    theta: Optional[float] = None
    phi: Optional[float] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.theta is None:
            return f"CandidateGate({self.key})"
        return f"CandidateGate(fSim({self.theta:.3f}, {self.phi:.3f}))"


def candidate_gate_grid(
    theta_points: int = 5,
    phi_points: int = 5,
    include_swap: bool = True,
) -> List[CandidateGate]:
    """Candidate fSim(theta, phi) gate types on a uniform parameter grid.

    The identity corner ``fSim(0, 0)`` is excluded (it cannot generate
    entanglement); the hardware SWAP gate is appended when requested since
    the paper finds it disproportionately valuable on connectivity-limited
    devices.
    """
    if theta_points < 2 or phi_points < 2:
        raise ValueError("the grid needs at least two points per axis")
    candidates: List[CandidateGate] = []
    for theta in np.linspace(0.0, np.pi / 2, theta_points):
        for phi in np.linspace(0.0, np.pi, phi_points):
            if theta < 1e-9 and phi < 1e-9:
                continue
            gate = fsim_gate(float(theta), float(phi))
            candidates.append(CandidateGate(gate.type_key, gate, float(theta), float(phi)))
    if include_swap:
        swap = named_gate("swap")
        candidates.append(CandidateGate(swap.type_key, swap))
    return candidates


@dataclass
class ExpressivityTable:
    """Per-candidate, per-unitary exact gate counts for several workloads.

    ``counts[application][candidate_key]`` is an array with one entry per
    application unitary: the number of hardware applications of that
    candidate needed to express the unitary (NuOp exact mode).  Unitaries
    that the candidate cannot express within the layer budget are charged
    the budget plus one, which penalises weak candidates without making the
    averages infinite.
    """

    candidates: Dict[CandidateKey, CandidateGate]
    counts: Dict[str, Dict[CandidateKey, np.ndarray]] = field(default_factory=dict)
    max_layers: int = 6

    def applications(self) -> List[str]:
        """Workload names in the table."""
        return list(self.counts)

    def mean_count(self, application: str, candidate: CandidateKey) -> float:
        """Average gate count of one candidate on one workload."""
        return float(np.mean(self.counts[application][candidate]))

    def best_counts(
        self, application: str, selection: Sequence[CandidateKey]
    ) -> np.ndarray:
        """Per-unitary count when the compiler may pick any selected candidate."""
        if not selection:
            raise ValueError("the selection must contain at least one candidate")
        stacked = np.stack([self.counts[application][key] for key in selection])
        return stacked.min(axis=0)

    def selection_cost(
        self,
        selection: Sequence[CandidateKey],
        weights: Optional[Mapping[str, float]] = None,
    ) -> float:
        """Workload-weighted mean instruction count of an instruction set."""
        weights = dict(weights or {})
        total = 0.0
        weight_sum = 0.0
        for application in self.counts:
            weight = float(weights.get(application, 1.0))
            total += weight * float(np.mean(self.best_counts(application, selection)))
            weight_sum += weight
        return total / weight_sum if weight_sum else float("nan")


def expressivity_table(
    application_unitaries: Mapping[str, Sequence[np.ndarray]],
    candidates: Sequence[CandidateGate],
    decomposer: Optional[NuOpDecomposer] = None,
    max_layers: int = 6,
) -> ExpressivityTable:
    """Measure exact NuOp gate counts for every (candidate, unitary) pair."""
    if not application_unitaries or not candidates:
        raise ValueError("need at least one application and one candidate")
    decomposer = decomposer if decomposer is not None else NuOpDecomposer(max_layers=max_layers)
    table = ExpressivityTable(
        candidates={candidate.key: candidate for candidate in candidates},
        max_layers=max_layers,
    )
    for application, unitaries in application_unitaries.items():
        per_candidate: Dict[CandidateKey, np.ndarray] = {}
        for candidate in candidates:
            counts = []
            for unitary in unitaries:
                decomposition = decomposer.decompose_exact(
                    unitary, gate=candidate.gate, max_layers=max_layers
                )
                if decomposition.decomposition_fidelity >= decomposer.exact_threshold:
                    counts.append(decomposition.num_layers)
                else:
                    counts.append(max_layers + 1)
            per_candidate[candidate.key] = np.asarray(counts, dtype=float)
        table.counts[application] = per_candidate
    return table


@dataclass
class DesignedInstructionSet:
    """Output of the greedy design: selected gate types plus their cost."""

    selection: List[CandidateKey]
    mean_instruction_count: float
    per_application_counts: Dict[str, float]
    calibration_hours: Optional[float] = None

    @property
    def num_gate_types(self) -> int:
        """Number of selected gate types."""
        return len(self.selection)


def greedy_instruction_set(
    table: ExpressivityTable,
    num_gate_types: int,
    weights: Optional[Mapping[str, float]] = None,
    required: Sequence[CandidateKey] = (),
) -> DesignedInstructionSet:
    """Greedily select ``num_gate_types`` candidates minimising the weighted count.

    ``required`` seeds the selection (e.g. force CZ because error
    correction needs it); remaining slots are filled one at a time with the
    candidate giving the largest reduction in the weighted average
    instruction count.  Ties are broken deterministically by candidate key.
    """
    if num_gate_types < 1:
        raise ValueError("the instruction set needs at least one gate type")
    unknown = [key for key in required if key not in table.candidates]
    if unknown:
        raise ValueError(f"required candidates not in the table: {unknown}")
    if num_gate_types < len(required):
        raise ValueError("num_gate_types is smaller than the required seed set")

    selection: List[CandidateKey] = list(required)
    remaining = [key for key in sorted(table.candidates) if key not in selection]

    while len(selection) < num_gate_types and remaining:
        best_key = None
        best_cost = np.inf
        for key in remaining:
            cost = table.selection_cost(selection + [key], weights)
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_key = key
        if best_key is None:
            break
        selection.append(best_key)
        remaining.remove(best_key)

    per_application = {
        application: float(np.mean(table.best_counts(application, selection)))
        for application in table.counts
    }
    return DesignedInstructionSet(
        selection=selection,
        mean_instruction_count=table.selection_cost(selection, weights),
        per_application_counts=per_application,
    )


def design_tradeoff_curve(
    table: ExpressivityTable,
    max_gate_types: int = 8,
    weights: Optional[Mapping[str, float]] = None,
    calibration_model: Optional[CalibrationModel] = None,
    required: Sequence[CandidateKey] = (),
) -> List[DesignedInstructionSet]:
    """Greedy designs for every set size from 1 (or the seed size) to the maximum.

    Each design is annotated with its daily calibration time so callers can
    locate the expressivity-vs-calibration sweet spot (the paper's 4-8
    recommendation emerges as the knee of this curve).
    """
    calibration_model = calibration_model or CalibrationModel()
    designs: List[DesignedInstructionSet] = []
    start = max(len(required), 1)
    for size in range(start, max_gate_types + 1):
        design = greedy_instruction_set(table, size, weights=weights, required=required)
        design.calibration_hours = calibration_model.calibration_time_hours(design.num_gate_types)
        designs.append(design)
    return designs


def knee_of_curve(designs: Sequence[DesignedInstructionSet], tolerance: float = 0.05) -> int:
    """Smallest set size whose cost is within ``tolerance`` of the largest set's cost.

    This is the quantitative version of "diminishing returns after 4-8
    types": adding gate types past the knee buys almost no expressivity
    while calibration cost keeps growing linearly.
    """
    if not designs:
        raise ValueError("need at least one design")
    ordered = sorted(designs, key=lambda d: d.num_gate_types)
    best_cost = ordered[-1].mean_instruction_count
    for design in ordered:
        if design.mean_instruction_count <= best_cost * (1.0 + tolerance):
            return design.num_gate_types
    return ordered[-1].num_gate_types
