"""Template circuits for NuOp's numerical decomposition (Figure 4 of the paper).

A template with ``L`` layers alternates arbitrary single-qubit rotations
(two ``U3`` gates per layer boundary) with the target hardware two-qubit
gate::

    K_0 -- G -- K_1 -- G -- ... -- G -- K_L

The optimisation variables are the ``6 (L+1)`` single-qubit angles; for the
continuous FullXY / FullfSim sets the two-qubit gate angles of every layer
are variables as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.gates.parametric import fsim, u3, xy


def _single_qubit_layer(params: np.ndarray) -> np.ndarray:
    """4x4 unitary of one boundary layer: ``U3(params[0]) (x) U3(params[1])``."""
    return np.kron(u3(*params[0]), u3(*params[1]))


def _u3_derivatives(alpha: float, beta: float, lam: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Partial derivatives of the U3 matrix with respect to its three angles."""
    half = alpha / 2.0
    c = np.cos(half)
    s = np.sin(half)
    eb = np.exp(1j * beta)
    el = np.exp(1j * lam)
    ebl = np.exp(1j * (beta + lam))
    d_alpha = 0.5 * np.array(
        [[-s, -el * c], [eb * c, -ebl * s]], dtype=complex
    )
    d_beta = np.array([[0, 0], [1j * eb * s, 1j * ebl * c]], dtype=complex)
    d_lam = np.array([[0, -1j * el * s], [0, 1j * ebl * c]], dtype=complex)
    return d_alpha, d_beta, d_lam


def _fsim_derivatives(theta: float, phi: float) -> Tuple[np.ndarray, np.ndarray]:
    """Partial derivatives of the fSim matrix with respect to (theta, phi)."""
    c = np.cos(theta)
    s = np.sin(theta)
    d_theta = np.zeros((4, 4), dtype=complex)
    d_theta[1, 1] = -s
    d_theta[1, 2] = -1j * c
    d_theta[2, 1] = -1j * c
    d_theta[2, 2] = -s
    d_phi = np.zeros((4, 4), dtype=complex)
    d_phi[3, 3] = -1j * np.exp(-1j * phi)
    return d_theta, d_phi


def _xy_derivative(theta: float) -> np.ndarray:
    """Derivative of the XY matrix with respect to theta."""
    half = theta / 2.0
    c = np.cos(half)
    s = np.sin(half)
    derivative = np.zeros((4, 4), dtype=complex)
    derivative[1, 1] = -0.5 * s
    derivative[1, 2] = 0.5j * c
    derivative[2, 1] = 0.5j * c
    derivative[2, 2] = -0.5 * s
    return derivative


@dataclass(frozen=True)
class TemplateSpec:
    """Description of a template: number of layers plus the entangling gate model.

    ``two_qubit_family`` selects how the entangling gates are produced:

    * ``"fixed"`` -- every layer applies ``fixed_gate_matrix``,
    * ``"fsim"``  -- layer ``i`` applies ``fSim(theta_i, phi_i)`` with the
      angles taken from the parameter vector,
    * ``"xy"``    -- layer ``i`` applies ``XY(theta_i)``.
    """

    num_layers: int
    two_qubit_family: str = "fixed"
    fixed_gate_matrix: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.num_layers < 0:
            raise ValueError("number of layers must be non-negative")
        if self.two_qubit_family not in ("fixed", "fsim", "xy"):
            raise ValueError("two_qubit_family must be 'fixed', 'fsim' or 'xy'")
        if self.two_qubit_family == "fixed" and self.num_layers > 0:
            if self.fixed_gate_matrix is None:
                raise ValueError("fixed templates need a gate matrix")
            object.__setattr__(
                self, "fixed_gate_matrix", np.asarray(self.fixed_gate_matrix, dtype=complex)
            )

    @property
    def num_single_qubit_parameters(self) -> int:
        """Number of single-qubit angles (6 per boundary layer)."""
        return 6 * (self.num_layers + 1)

    @property
    def num_two_qubit_parameters(self) -> int:
        """Number of entangling-gate angles that are optimisation variables."""
        if self.two_qubit_family == "fsim":
            return 2 * self.num_layers
        if self.two_qubit_family == "xy":
            return self.num_layers
        return 0

    @property
    def num_parameters(self) -> int:
        """Total number of optimisation variables."""
        return self.num_single_qubit_parameters + self.num_two_qubit_parameters

    # -- parameter handling ---------------------------------------------------

    def split_parameters(self, flat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Split a flat parameter vector into (single-qubit, two-qubit) blocks."""
        flat = np.asarray(flat, dtype=float)
        if flat.size != self.num_parameters:
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {flat.size}"
            )
        boundary = self.num_single_qubit_parameters
        single = flat[:boundary].reshape(self.num_layers + 1, 2, 3)
        two = flat[boundary:]
        return single, two

    def two_qubit_matrices(self, two_qubit_params: np.ndarray) -> List[np.ndarray]:
        """Entangling-gate matrices for every layer given the (possibly empty) angles."""
        if self.two_qubit_family == "fixed":
            return [self.fixed_gate_matrix] * self.num_layers
        if self.two_qubit_family == "fsim":
            pairs = np.asarray(two_qubit_params, dtype=float).reshape(self.num_layers, 2)
            return [fsim(theta, phi) for theta, phi in pairs]
        angles = np.asarray(two_qubit_params, dtype=float).reshape(self.num_layers)
        return [xy(theta) for theta in angles]

    def two_qubit_angles(self, two_qubit_params: np.ndarray) -> List[Tuple[float, ...]]:
        """Per-layer entangling-gate angles (empty tuples for fixed templates)."""
        if self.two_qubit_family == "fixed":
            return [() for _ in range(self.num_layers)]
        if self.two_qubit_family == "fsim":
            pairs = np.asarray(two_qubit_params, dtype=float).reshape(self.num_layers, 2)
            return [tuple(float(v) for v in pair) for pair in pairs]
        angles = np.asarray(two_qubit_params, dtype=float).reshape(self.num_layers)
        return [(float(a),) for a in angles]

    # -- evaluation -------------------------------------------------------------

    def unitary(self, flat_params: np.ndarray) -> np.ndarray:
        """Unitary represented by the template for the given parameters."""
        single, two = self.split_parameters(flat_params)
        matrices = self.two_qubit_matrices(two)
        unitary = _single_qubit_layer(single[0])
        for layer in range(self.num_layers):
            unitary = matrices[layer] @ unitary
            unitary = _single_qubit_layer(single[layer + 1]) @ unitary
        return unitary

    def initial_parameters(
        self, rng: Optional[np.random.Generator] = None, scale: float = np.pi
    ) -> np.ndarray:
        """A parameter vector: zeros when ``rng`` is None, random otherwise."""
        if rng is None:
            return np.zeros(self.num_parameters)
        return rng.uniform(-scale, scale, size=self.num_parameters)

    # -- objective with analytic gradient -----------------------------------------

    def _factors_with_derivatives(
        self, flat_params: np.ndarray
    ) -> List[Tuple[np.ndarray, List[Tuple[int, np.ndarray]]]]:
        """Factor matrices in application order with per-parameter derivatives.

        Each entry is ``(factor_matrix, [(parameter_index, d factor / d parameter), ...])``.
        """
        single, two = self.split_parameters(flat_params)
        boundary_offset = 0
        two_offset = self.num_single_qubit_parameters
        entangling = self.two_qubit_matrices(two)
        factors: List[Tuple[np.ndarray, List[Tuple[int, np.ndarray]]]] = []

        def boundary_factor(layer_index: int) -> Tuple[np.ndarray, List[Tuple[int, np.ndarray]]]:
            params_a = single[layer_index, 0]
            params_b = single[layer_index, 1]
            u3_a = u3(*params_a)
            u3_b = u3(*params_b)
            matrix = np.kron(u3_a, u3_b)
            derivatives: List[Tuple[int, np.ndarray]] = []
            base = boundary_offset + 6 * layer_index
            for angle_index, d_matrix in enumerate(_u3_derivatives(*params_a)):
                derivatives.append((base + angle_index, np.kron(d_matrix, u3_b)))
            for angle_index, d_matrix in enumerate(_u3_derivatives(*params_b)):
                derivatives.append((base + 3 + angle_index, np.kron(u3_a, d_matrix)))
            return matrix, derivatives

        factors.append(boundary_factor(0))
        for layer in range(self.num_layers):
            matrix = entangling[layer]
            derivatives = []
            if self.two_qubit_family == "fsim":
                theta, phi = np.asarray(two, dtype=float).reshape(self.num_layers, 2)[layer]
                d_theta, d_phi = _fsim_derivatives(theta, phi)
                derivatives = [
                    (two_offset + 2 * layer, d_theta),
                    (two_offset + 2 * layer + 1, d_phi),
                ]
            elif self.two_qubit_family == "xy":
                theta = float(np.asarray(two, dtype=float).reshape(self.num_layers)[layer])
                derivatives = [(two_offset + layer, _xy_derivative(theta))]
            factors.append((matrix, derivatives))
            factors.append(boundary_factor(layer + 1))
        return factors

    def objective_with_gradient(
        self, flat_params: np.ndarray, target: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Value and gradient of ``1 - |Tr(U(params)^dagger target)| / 4``.

        The gradient is analytic: prefix/suffix products of the template
        factors turn every partial derivative into a single 4x4 trace,
        which makes BFGS roughly an order of magnitude faster than with
        finite differences.
        """
        target = np.asarray(target, dtype=complex)
        factors = self._factors_with_derivatives(np.asarray(flat_params, dtype=float))
        matrices = [matrix for matrix, _ in factors]
        count = len(matrices)

        # prefix[m] = F_{m-1} ... F_0 (identity for m = 0)
        prefix = [np.eye(4, dtype=complex)]
        for matrix in matrices:
            prefix.append(matrix @ prefix[-1])
        # suffix[m] = F_{count-1} ... F_m (identity for m = count)
        suffix = [np.eye(4, dtype=complex)] * (count + 1)
        running = np.eye(4, dtype=complex)
        for m in range(count - 1, -1, -1):
            running = running @ matrices[m]
            suffix[m] = running

        unitary = prefix[count]
        overlap = np.trace(unitary.conj().T @ target)
        magnitude = abs(overlap)
        value = 1.0 - magnitude / 4.0

        gradient = np.zeros(len(flat_params))
        if magnitude < 1e-12:
            return value, gradient
        scale = overlap.conjugate() / magnitude
        for m, (_, derivatives) in enumerate(factors):
            if not derivatives:
                continue
            left = suffix[m + 1]
            right = prefix[m]
            # M = left^dagger @ target @ right^dagger, so that
            # Tr((left dF right)^dagger target) = Tr(dF^dagger M).
            middle = left.conj().T @ target @ right.conj().T
            for parameter_index, d_factor in derivatives:
                d_overlap = np.trace(d_factor.conj().T @ middle)
                gradient[parameter_index] = -np.real(scale * d_overlap) / 4.0
        return value, gradient


def fixed_gate_template(num_layers: int, gate_matrix: np.ndarray) -> TemplateSpec:
    """Template whose entangling gates are all the given fixed hardware gate."""
    return TemplateSpec(num_layers=num_layers, two_qubit_family="fixed", fixed_gate_matrix=gate_matrix)


def continuous_family_template(num_layers: int, family: str) -> TemplateSpec:
    """Template whose entangling-gate angles are optimisation variables (FullXY / FullfSim)."""
    return TemplateSpec(num_layers=num_layers, two_qubit_family=family)
