"""NuOp: the paper's core contribution.

* :mod:`repro.core.gate_types` / :mod:`repro.core.instruction_sets` --
  the S1-S7 / R1-R5 / G1-G7 / FullXY / FullfSim catalogue (Table II).
* :mod:`repro.core.templates` -- template circuits (Figure 4).
* :mod:`repro.core.decomposer` -- BFGS-based decomposition (Section V.A)
  with exact and approximate (Eq. 2) modes.
* :mod:`repro.core.noise_adaptive` -- gate-type selection across an
  instruction set using per-edge calibrated fidelities (Section V.B).
* :mod:`repro.core.baseline` -- analytic KAK / gate-identity baseline
  ("Cirq-like", Figure 6).
* :mod:`repro.core.pipeline` -- the end-to-end compilation pipeline
  (Figure 1).
"""

from repro.core.gate_types import (
    GateType,
    google_gate_type,
    rigetti_gate_type,
    all_google_types,
    all_rigetti_types,
    S_TYPE_FSIM_PARAMETERS,
    S_TYPE_XY_ANGLES,
)
from repro.core.instruction_sets import (
    InstructionSet,
    single_gate_set,
    google_instruction_set,
    rigetti_instruction_set,
    full_xy_set,
    full_fsim_set,
    google_catalogue,
    rigetti_catalogue,
    table2_catalogue,
)
from repro.core.templates import (
    TemplateSpec,
    fixed_gate_template,
    continuous_family_template,
)
from repro.core.decomposer import (
    NuOpDecomposer,
    TwoQubitDecomposition,
    LayerSolution,
    decompose_local_unitary,
    EXACT_FIDELITY_THRESHOLD,
)
from repro.core.noise_adaptive import (
    decompose_with_instruction_set,
    best_gate_type_per_edge,
)
from repro.core.baseline import (
    BaselineDecomposition,
    UnsupportedDecompositionError,
    baseline_gate_count,
    baseline_counts_for_targets,
    is_swap_like,
)
from repro.core.pipeline import CompiledCircuit, NuOpPass, compile_circuit

__all__ = [
    "GateType",
    "google_gate_type",
    "rigetti_gate_type",
    "all_google_types",
    "all_rigetti_types",
    "S_TYPE_FSIM_PARAMETERS",
    "S_TYPE_XY_ANGLES",
    "InstructionSet",
    "single_gate_set",
    "google_instruction_set",
    "rigetti_instruction_set",
    "full_xy_set",
    "full_fsim_set",
    "google_catalogue",
    "rigetti_catalogue",
    "table2_catalogue",
    "TemplateSpec",
    "fixed_gate_template",
    "continuous_family_template",
    "NuOpDecomposer",
    "TwoQubitDecomposition",
    "LayerSolution",
    "decompose_local_unitary",
    "EXACT_FIDELITY_THRESHOLD",
    "decompose_with_instruction_set",
    "best_gate_type_per_edge",
    "BaselineDecomposition",
    "UnsupportedDecompositionError",
    "baseline_gate_count",
    "baseline_counts_for_targets",
    "is_swap_like",
    "CompiledCircuit",
    "NuOpPass",
    "compile_circuit",
]
