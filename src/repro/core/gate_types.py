"""Hardware two-qubit gate types (the S1-S7 catalogue of the paper).

A :class:`GateType` is a named, concrete two-qubit hardware gate.  Table II
of the paper defines seven baseline types (selected from the Figure 8
expressivity characterisation) plus the hardware SWAP gate:

========  =======================  ==========================
Label     fSim parameters          Equivalent vendor gate
========  =======================  ==========================
``S1``    fSim(pi/2, pi/6)         Google SYC
``S2``    fSim(pi/4, 0)            sqrt(iSWAP) / XY(pi/2)
``S3``    fSim(0, pi)              CZ
``S4``    fSim(pi/2, 0)            iSWAP / XY(pi)
``S5``    fSim(pi/3, 0)            XY(2 pi/3)
``S6``    fSim(3 pi/8, 0)          XY(3 pi/4)
``S7``    fSim(pi/6, pi)           --
``SWAP``  fSim-inexpressible       native SWAP
========  =======================  ==========================

Two flavours are provided: the Google flavour builds every type as an
explicit fSim gate; the Rigetti flavour uses the CZ / XY(theta)
parameterisation of the same local-equivalence classes so that the Aspen-8
calibration data (keyed by ``cz`` and ``xy(pi)``) is picked up directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.circuits.gate import Gate, fsim_gate, named_gate, xy_gate


@dataclass(frozen=True)
class GateType:
    """A named two-qubit hardware gate type."""

    label: str
    gate: Gate

    @property
    def type_key(self) -> str:
        """Calibration key of the underlying gate (see :attr:`Gate.type_key`)."""
        return self.gate.type_key

    @property
    def matrix(self) -> np.ndarray:
        """Unitary matrix of the gate type."""
        return self.gate.matrix

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GateType({self.label}: {self.type_key})"


# fSim parameters of the baseline types (Table II).
S_TYPE_FSIM_PARAMETERS: Dict[str, Tuple[float, float]] = {
    "S1": (np.pi / 2, np.pi / 6),
    "S2": (np.pi / 4, 0.0),
    "S3": (0.0, np.pi),
    "S4": (np.pi / 2, 0.0),
    "S5": (np.pi / 3, 0.0),
    "S6": (3 * np.pi / 8, 0.0),
    "S7": (np.pi / 6, np.pi),
}

# XY(theta) angles realising the same classes (theta = 2 * fSim theta).
S_TYPE_XY_ANGLES: Dict[str, float] = {
    "S2": np.pi / 2,
    "S4": np.pi,
    "S5": 2 * np.pi / 3,
    "S6": 3 * np.pi / 4,
}


def google_gate_type(label: str) -> GateType:
    """Baseline type in the Google (fSim) parameterisation.

    ``S3`` is returned as the canonical ``cz`` gate rather than
    ``fSim(0, pi)``: the two matrices are identical, and using the
    canonical name keeps calibration keys stable across vendors.
    """
    if label == "SWAP":
        return GateType("SWAP", named_gate("swap"))
    if label == "S3":
        return GateType("S3", named_gate("cz"))
    if label not in S_TYPE_FSIM_PARAMETERS:
        raise ValueError(f"unknown gate type label {label!r}")
    theta, phi = S_TYPE_FSIM_PARAMETERS[label]
    return GateType(label, fsim_gate(theta, phi))


def rigetti_gate_type(label: str) -> GateType:
    """Baseline type in the Rigetti (CZ / XY) parameterisation.

    ``S3`` maps to the CZ gate and the iSWAP-like types map to ``XY(theta)``
    gates so that measured Aspen-8 calibration data (keyed ``cz`` and
    ``xy(pi)``) is used where available.
    """
    if label == "SWAP":
        return GateType("SWAP", named_gate("swap"))
    if label == "S3":
        return GateType("S3", named_gate("cz"))
    if label in S_TYPE_XY_ANGLES:
        return GateType(label, xy_gate(S_TYPE_XY_ANGLES[label]))
    if label in S_TYPE_FSIM_PARAMETERS:
        theta, phi = S_TYPE_FSIM_PARAMETERS[label]
        return GateType(label, fsim_gate(theta, phi))
    raise ValueError(f"unknown gate type label {label!r}")


def all_google_types() -> Dict[str, GateType]:
    """Every baseline type (S1-S7 plus SWAP) in the Google flavour."""
    labels = list(S_TYPE_FSIM_PARAMETERS) + ["SWAP"]
    return {label: google_gate_type(label) for label in labels}


def all_rigetti_types() -> Dict[str, GateType]:
    """Every baseline type usable on Rigetti hardware (S2-S6 plus SWAP)."""
    labels = ["S2", "S3", "S4", "S5", "S6", "SWAP"]
    return {label: rigetti_gate_type(label) for label in labels}
