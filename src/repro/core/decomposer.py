"""NuOp: numerical-optimisation gate decomposition (Section V of the paper).

Given a target two-qubit application unitary and a hardware gate type,
NuOp builds template circuits with a growing number of entangling layers
(:mod:`repro.core.templates`), optimises the interleaved single-qubit
rotations with BFGS to maximise the decomposition fidelity ``F_d``
(Eq. 1), and selects the decomposition that satisfies the requested
fidelity threshold (exact mode) or maximises ``F_d * F_h`` (approximate /
noise-aware mode, Eq. 2).

The expensive part -- the per-layer-count optimisation -- depends only on
the target unitary and the hardware gate type, so results are cached and
re-used across qubit pairs and across circuits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.circuits.circuit import Operation, QuantumCircuit
from repro.circuits.gate import Gate, fsim_gate, u3_gate, xy_gate
from repro.config import positive_int_env
from repro.core.templates import (
    TemplateSpec,
    continuous_family_template,
    fixed_gate_template,
)
from repro.gates.unitary import hilbert_schmidt_fidelity, nearest_kronecker_product

EXACT_FIDELITY_THRESHOLD = 1.0 - 1e-6
"""Decomposition fidelity treated as numerically exact (paper uses 1e-6..1e-8 infidelity)."""

PROFILE_CACHE_SIZE_ENV_VAR = "REPRO_DECOMP_CACHE_SIZE"
"""Entry cap of the process-wide fidelity-profile LRU (default 4096).

The profile cache used to be an unbounded per-decomposer dict; a long
``repro serve`` worker decomposing a stream of distinct targets would
grow it without limit.  Invalid values warn and fall back to the default
(:func:`repro.config.positive_int_env`, the policy every cache-bound
variable shares).  Read once at import, like
``REPRO_COMPILE_CACHE_SIZE``."""

_DEFAULT_PROFILE_CACHE_SIZE = 4096

_PROFILE_CACHE_MAX_ENTRIES = positive_int_env(
    PROFILE_CACHE_SIZE_ENV_VAR,
    _DEFAULT_PROFILE_CACHE_SIZE,
    invalid_note="profile cache keeps the default size",
)

# Process-wide fidelity-profile LRU.  Keys fold in the decomposer's
# optimisation knobs (see NuOpDecomposer._profile_cache_key), so
# differently-configured decomposer instances never alias; identically
# configured ones share work, which is what a serve worker wants.  Every
# mutation happens under the paired lock (the lock-discipline source lint
# enforces the pairing).
_PROFILE_CACHE: "OrderedDict[Tuple, List[LayerSolution]]" = OrderedDict()
_PROFILE_CACHE_LOCK = threading.Lock()
_PROFILE_CACHE_COUNTERS = {"hits": 0, "misses": 0}


def _profile_cache_get(key: Tuple) -> Optional[List["LayerSolution"]]:
    """LRU lookup: a hit refreshes recency and returns the cached list itself."""
    with _PROFILE_CACHE_LOCK:
        profile = _PROFILE_CACHE.get(key)
        if profile is None:
            _PROFILE_CACHE_COUNTERS["misses"] += 1
            return None
        _PROFILE_CACHE.move_to_end(key)
        _PROFILE_CACHE_COUNTERS["hits"] += 1
        return profile


def _profile_cache_put(key: Tuple, profile: List["LayerSolution"]) -> None:
    with _PROFILE_CACHE_LOCK:
        _PROFILE_CACHE[key] = profile
        _PROFILE_CACHE.move_to_end(key)
        while len(_PROFILE_CACHE) > _PROFILE_CACHE_MAX_ENTRIES:
            _PROFILE_CACHE.popitem(last=False)


def profile_cache_stats() -> Dict[str, int]:
    """Counters + occupancy of the process-wide profile LRU (for the CLI)."""
    with _PROFILE_CACHE_LOCK:
        return {
            "hits": _PROFILE_CACHE_COUNTERS["hits"],
            "misses": _PROFILE_CACHE_COUNTERS["misses"],
            "entries": len(_PROFILE_CACHE),
            "max_entries": _PROFILE_CACHE_MAX_ENTRIES,
        }


def clear_profile_cache() -> None:
    """Drop every cached fidelity profile (counters keep accumulating)."""
    with _PROFILE_CACHE_LOCK:
        _PROFILE_CACHE.clear()


@dataclass(frozen=True)
class LayerSolution:
    """Best decomposition found for one specific layer count."""

    num_layers: int
    fidelity: float
    parameters: np.ndarray


@dataclass
class TwoQubitDecomposition:
    """A complete NuOp decomposition of one application two-qubit unitary.

    Attributes
    ----------
    target:
        The application unitary that was decomposed.
    hardware_gates:
        Concrete entangling gates, one per layer (all identical for fixed
        gate types; per-layer angles for continuous families).
    single_qubit_params:
        Array of shape ``(layers + 1, 2, 3)`` holding the U3 angles.
    decomposition_fidelity:
        ``F_d`` of Eq. 1.
    hardware_fidelity:
        ``F_h``: product of the calibrated fidelities of the gates in the
        decomposition (1.0 when no noise information was supplied).
    gate_type_label:
        Table II label of the chosen gate type (``None`` for continuous
        families).
    """

    target: np.ndarray
    hardware_gates: List[Gate]
    single_qubit_params: np.ndarray
    decomposition_fidelity: float
    hardware_fidelity: float = 1.0
    gate_type_label: Optional[str] = None

    @property
    def num_layers(self) -> int:
        """Number of entangling gates used."""
        return len(self.hardware_gates)

    @property
    def overall_fidelity(self) -> float:
        """``F_u = F_d * F_h`` (Eq. 2)."""
        return self.decomposition_fidelity * self.hardware_fidelity

    def operations(self, qubits: Sequence[int] = (0, 1)) -> List[Operation]:
        """Expand the decomposition into concrete operations on ``qubits``."""
        a, b = int(qubits[0]), int(qubits[1])
        result: List[Operation] = []

        def add_single_layer(layer_params: np.ndarray) -> None:
            for qubit, angles in zip((a, b), layer_params):
                result.append(Operation(u3_gate(*[float(v) for v in angles]), (qubit,)))

        add_single_layer(self.single_qubit_params[0])
        for index, gate in enumerate(self.hardware_gates):
            result.append(Operation(gate, (a, b)))
            add_single_layer(self.single_qubit_params[index + 1])
        return result

    def to_circuit(self) -> QuantumCircuit:
        """Two-qubit circuit fragment implementing the decomposition."""
        circuit = QuantumCircuit(2, name="nuop_decomposition")
        for operation in self.operations((0, 1)):
            circuit.append_operation(operation)
        return circuit

    def verify(self) -> float:
        """Recompute ``F_d`` from the expanded circuit (consistency check)."""
        return hilbert_schmidt_fidelity(self.to_circuit().to_unitary(), self.target)


@dataclass
class NuOpDecomposer:
    """Numerical-optimisation decomposer for two-qubit unitaries.

    Parameters
    ----------
    max_layers:
        Largest template size tried (the paper uses up to 10 but notes
        fewer than 4 layers almost always suffice).
    restarts:
        Number of random restarts per layer count, in addition to the
        deterministic all-zeros start.
    maxiter:
        BFGS iteration cap per restart.
    exact_threshold:
        ``F_d`` above which a decomposition is treated as exact and layer
        growth stops.
    seed:
        Seed of the restart generator (results are deterministic for a
        fixed seed).
    tabulation:
        Weyl-chamber tabulation knob.  ``None`` (default) consults the
        ``REPRO_DECOMP_TABULATION`` environment flag; ``False`` forces the
        classic per-target optimisation; ``True`` enables tabulation with
        the default grid; a
        :class:`repro.compiler.tabulation.TabulationConfig` enables it
        with explicit settings.  When inactive, every query follows the
        pre-tabulation code path bit for bit.
    """

    max_layers: int = 4
    restarts: int = 1
    confirmation_restarts: int = 2
    maxiter: int = 250
    exact_threshold: float = EXACT_FIDELITY_THRESHOLD
    seed: int = 7
    tabulation: object = None

    # -- low-level optimisation -------------------------------------------------

    def _optimise_template(
        self,
        target: np.ndarray,
        template: TemplateSpec,
        rng: np.random.Generator,
    ) -> Tuple[float, np.ndarray]:
        """Best fidelity and parameters for one template size."""
        target = np.asarray(target, dtype=complex)

        def objective(flat: np.ndarray):
            return template.objective_with_gradient(flat, target)

        if template.num_parameters == 0:
            return hilbert_schmidt_fidelity(template.unitary(np.zeros(0)), target), np.zeros(0)

        best_value = np.inf
        best_params = template.initial_parameters()

        def run_start(start: np.ndarray) -> None:
            nonlocal best_value, best_params
            result = minimize(
                objective,
                start,
                jac=True,
                method="L-BFGS-B",
                options={"maxiter": self.maxiter, "ftol": 1e-14, "gtol": 1e-10},
            )
            if result.fun < best_value:
                best_value = float(result.fun)
                best_params = np.asarray(result.x, dtype=float)

        starts = [template.initial_parameters()]
        num_random = self.restarts
        if template.num_two_qubit_parameters > 0:
            # Continuous-family templates have a rugged landscape (the
            # two-qubit angles are variables too); a handful of extra random
            # starts is needed to reliably find e.g. the one-layer
            # fSim(pi/2, pi) = SWAP solution instead of a two-layer local
            # optimum.  The early break below keeps the common case cheap.
            num_random = max(self.restarts, 6)
        starts += [template.initial_parameters(rng) for _ in range(num_random)]
        for start in starts:
            run_start(start)
            if best_value < 1.0 - self.exact_threshold:
                break
        # Near-misses (fidelity just below the exact threshold) are usually
        # local minima; spend a few extra restarts to confirm whether an
        # exact solution exists before reporting an approximate one.
        extra = 0
        while (
            1.0 - self.exact_threshold <= best_value < 2e-3
            and extra < self.confirmation_restarts
        ):
            run_start(template.initial_parameters(rng))
            extra += 1
        return 1.0 - best_value, best_params

    def _target_cache_key(self, target: np.ndarray) -> bytes:
        """Exact-bytes cache key for a target, canonicalised in global phase.

        The old key rounded entries to 10 decimals, so two *distinct*
        targets straddling a rounding boundary could collide and silently
        share one profile.  Hashing the exact bytes removes the aliasing;
        rotating the global phase first (largest-magnitude entry made
        real-positive) keeps the useful half of the old behaviour, because
        the objective ``|Tr(U^dagger target)| / 4`` is phase-invariant.
        """
        matrix = np.ascontiguousarray(np.asarray(target, dtype=complex))
        flat = matrix.reshape(-1)
        pivot = flat[int(np.argmax(np.abs(flat)))]
        magnitude = abs(pivot)
        if magnitude > 0.0:
            matrix = matrix * (pivot.conjugate() / magnitude)
        return matrix.tobytes()

    def _profile_cache_key(
        self, target: np.ndarray, gate_key: str, limit: int
    ) -> Tuple:
        """Key into the process-wide profile LRU.

        Folds in every optimisation knob (the cache is shared between
        decomposer instances) and the resolved tabulation state (a
        tabulated profile is polished from grid starts, so it must never
        alias an exhaustively optimised one).
        """
        config = self.resolved_tabulation()
        return (
            self._target_cache_key(target),
            gate_key,
            limit,
            self.restarts,
            self.confirmation_restarts,
            self.maxiter,
            self.exact_threshold,
            self.seed,
            None if config is None else config.fingerprint(),
        )

    def resolved_tabulation(self):
        """The active tabulation config, or ``None`` for the classic path."""
        from repro.compiler.tabulation import resolve_tabulation

        return resolve_tabulation(self.tabulation)

    def _make_template(self, num_layers: int, gate: Optional[Gate], family: Optional[str]) -> TemplateSpec:
        if family is None:
            if num_layers == 0:
                return TemplateSpec(num_layers=0, two_qubit_family="fixed", fixed_gate_matrix=None)
            return fixed_gate_template(num_layers, gate.matrix)
        return continuous_family_template(num_layers, family)

    # -- fidelity profiles -------------------------------------------------------

    def fidelity_profile(
        self,
        target: np.ndarray,
        gate: Optional[Gate] = None,
        family: Optional[str] = None,
        max_layers: Optional[int] = None,
    ) -> List[LayerSolution]:
        """Best ``F_d`` for every layer count from 0 up to ``max_layers``.

        Either ``gate`` (a fixed hardware gate) or ``family`` (``"xy"`` /
        ``"fsim"``) must be provided.  Layer growth stops early once the
        exact threshold is reached; the profile is cached in the
        process-wide LRU.  With tabulation active the per-layer solutions
        are polished from the nearest Weyl-chamber grid entry instead of
        being optimised from scratch.
        """
        if (gate is None) == (family is None):
            raise ValueError("provide exactly one of 'gate' or 'family'")
        limit = self.max_layers if max_layers is None else int(max_layers)
        cache_key = self._profile_cache_key(
            target, gate.type_key if gate is not None else f"family:{family}", limit
        )
        cached = _profile_cache_get(cache_key)
        if cached is not None:
            return cached

        profile: Optional[List[LayerSolution]] = None
        config = self.resolved_tabulation()
        if config is not None:
            from repro.compiler.tabulation import tabulated_profile

            profile = tabulated_profile(self, target, gate, family, limit, config)
        if profile is None:
            profile = self._optimised_profile(target, gate, family, limit)
        _profile_cache_put(cache_key, profile)
        return profile

    def _optimised_profile(
        self,
        target: np.ndarray,
        gate: Optional[Gate],
        family: Optional[str],
        limit: int,
    ) -> List[LayerSolution]:
        """The classic per-layer BFGS profile (the untabulated code path)."""
        rng = np.random.default_rng(self.seed)
        profile: List[LayerSolution] = []
        for num_layers in range(limit + 1):
            template = self._make_template(num_layers, gate, family)
            fidelity, params = self._optimise_template(target, template, rng)
            profile.append(LayerSolution(num_layers, fidelity, params))
            if fidelity >= self.exact_threshold:
                break
        return profile

    # -- decomposition construction ------------------------------------------------

    def _build_decomposition(
        self,
        target: np.ndarray,
        solution: LayerSolution,
        gate: Optional[Gate],
        family: Optional[str],
        hardware_fidelity: float,
        label: Optional[str],
    ) -> TwoQubitDecomposition:
        template = self._make_template(solution.num_layers, gate, family)
        single, two = template.split_parameters(solution.parameters)
        if family is None:
            hardware_gates = [gate] * solution.num_layers
        else:
            hardware_gates = []
            for angles in template.two_qubit_angles(two):
                if family == "fsim":
                    hardware_gates.append(fsim_gate(*angles))
                else:
                    hardware_gates.append(xy_gate(*angles))
        return TwoQubitDecomposition(
            target=np.asarray(target, dtype=complex),
            hardware_gates=hardware_gates,
            single_qubit_params=single,
            decomposition_fidelity=solution.fidelity,
            hardware_fidelity=hardware_fidelity,
            gate_type_label=label,
        )

    def decompose_exact(
        self,
        target: np.ndarray,
        gate: Optional[Gate] = None,
        family: Optional[str] = None,
        fidelity_threshold: Optional[float] = None,
        max_layers: Optional[int] = None,
        label: Optional[str] = None,
    ) -> TwoQubitDecomposition:
        """Smallest-layer decomposition whose ``F_d`` meets the threshold.

        If no template within ``max_layers`` reaches the threshold the best
        decomposition found is returned (its fidelity tells the caller how
        close it got).
        """
        threshold = self.exact_threshold if fidelity_threshold is None else fidelity_threshold
        config = self.resolved_tabulation()
        if config is not None:
            from repro.compiler.tabulation import tabulated_decompose_exact

            result = tabulated_decompose_exact(
                self, target, gate, family, threshold, max_layers, label, config
            )
            if result is not None:
                return result
        profile = self.fidelity_profile(target, gate=gate, family=family, max_layers=max_layers)
        chosen = None
        for solution in profile:
            if solution.fidelity >= threshold:
                chosen = solution
                break
        if chosen is None:
            chosen = max(profile, key=lambda item: item.fidelity)
        return self._build_decomposition(target, chosen, gate, family, 1.0, label)

    def decompose_approximate(
        self,
        target: np.ndarray,
        gate: Optional[Gate] = None,
        family: Optional[str] = None,
        gate_fidelity: float = 1.0,
        single_qubit_fidelity: float = 1.0,
        max_layers: Optional[int] = None,
        label: Optional[str] = None,
    ) -> TwoQubitDecomposition:
        """Decomposition maximising ``F_d * F_h`` (Eq. 2).

        ``gate_fidelity`` is the calibrated fidelity of the hardware
        two-qubit gate on the edge where the decomposition will run;
        ``single_qubit_fidelity`` optionally accounts for the interleaved
        U3 layers (two gates per boundary).

        With tabulation active the layer count is selected from the
        tabulated fidelity estimates and only the winner's single-qubit
        angles are polished, which is what makes warm lookups an order of
        magnitude cheaper than the full profile.
        """
        config = self.resolved_tabulation()
        if config is not None:
            from repro.compiler.tabulation import tabulated_decompose_approximate

            result = tabulated_decompose_approximate(
                self,
                target,
                gate,
                family,
                gate_fidelity,
                single_qubit_fidelity,
                max_layers,
                label,
                config,
            )
            if result is not None:
                return result
        profile = self.fidelity_profile(target, gate=gate, family=family, max_layers=max_layers)
        best_solution = None
        best_overall = -np.inf
        best_hardware = 1.0
        for solution in profile:
            hardware = gate_fidelity**solution.num_layers
            hardware *= single_qubit_fidelity ** (2 * (solution.num_layers + 1))
            overall = solution.fidelity * hardware
            if overall > best_overall + 1e-12:
                best_overall = overall
                best_solution = solution
                best_hardware = hardware
        return self._build_decomposition(
            target, best_solution, gate, family, best_hardware, label
        )

    def decompose_for_threshold(
        self,
        target: np.ndarray,
        gate: Optional[Gate] = None,
        family: Optional[str] = None,
        hardware_fidelity_target: float = 0.99,
        max_layers: Optional[int] = None,
        label: Optional[str] = None,
    ) -> TwoQubitDecomposition:
        """Approximate decomposition in the style of Figure 6's NuOp-99%/95% variants.

        ``hardware_fidelity_target`` plays the role of the per-gate
        hardware fidelity assumed when trading decomposition error against
        gate count (e.g. ``NuOp-95%`` assumes each additional hardware gate
        costs 5% fidelity).
        """
        return self.decompose_approximate(
            target,
            gate=gate,
            family=family,
            gate_fidelity=hardware_fidelity_target,
            max_layers=max_layers,
            label=label,
        )

    def clear_cache(self) -> None:
        """Drop every cached fidelity profile (the process-wide LRU)."""
        clear_profile_cache()


def decompose_local_unitary(target: np.ndarray) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Factor a 4x4 unitary into single-qubit gates when it is a tensor product.

    Returns ``(A, B)`` such that ``target = A (x) B`` up to numerical error,
    or ``None`` when the unitary is entangling.  Used as a fast path so
    non-entangling application operations never consume hardware two-qubit
    gates.
    """
    a, b, residual = nearest_kronecker_product(np.asarray(target, dtype=complex))
    if residual < 1e-7:
        # The rank-1 factors carry an arbitrary reciprocal scale; renormalise
        # each to a proper unitary (up to global phase).
        a = a / np.sqrt(abs(np.linalg.det(a)))
        b = b / np.sqrt(abs(np.linalg.det(b)))
        return a, b
    return None
