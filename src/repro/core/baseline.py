"""KAK-identity baseline decomposer ("Cirq-like", Figure 6 of the paper).

Industry compilers decompose two-qubit unitaries analytically: a KAK
decomposition targets the CZ/CNOT basis exactly, and other hardware gates
are reached by rewriting each CZ with fixed gate identities.  That is
exactly why Cirq needs 6 SYC gates for a Quantum-Volume unitary that NuOp
implements with 3 (Section VII.A).  This module reproduces that behaviour
as an analytic gate-count model:

* ``cz`` / ``cnot``: exact minimal count from the Shende-Bullock-Markov
  criteria (:func:`repro.gates.kak.min_cz_count`),
* ``syc``: every CZ of the analytic decomposition is rewritten with 2 SYC
  gates,
* ``iswap`` / ``sqrt_iswap``: the analytic library route goes through the
  CZ form as well, spending 1 extra gate relative to the Weyl-optimal
  count for generic unitaries,
* unsupported combinations raise, mirroring Cirq's missing
  ``sqrt_iswap``-target support noted in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.gates.kak import (
    is_locally_equivalent,
    min_cz_count,
    min_iswap_count,
    min_sqrt_iswap_count,
)
from repro.gates import standard


class UnsupportedDecompositionError(ValueError):
    """Raised when the analytic baseline has no routine for a target/basis pair."""


SUPPORTED_BASES = ("cz", "cnot", "cx", "syc", "iswap", "sqrt_iswap")


@dataclass(frozen=True)
class BaselineDecomposition:
    """Result of the analytic baseline: a gate count and the basis used."""

    basis: str
    num_two_qubit_gates: int
    decomposition_error: float = 0.0


def baseline_gate_count(
    unitary: np.ndarray,
    basis: str,
    allow_unsupported: bool = False,
) -> BaselineDecomposition:
    """Number of two-qubit basis gates the analytic (Cirq-like) flow would emit.

    Parameters
    ----------
    unitary:
        Target two-qubit unitary.
    basis:
        Hardware basis gate name (``cz``, ``cnot``, ``syc``, ``iswap``,
        ``sqrt_iswap``).
    allow_unsupported:
        The analytic library cannot target ``sqrt_iswap`` for generic SU(4)
        unitaries (the paper notes Cirq lacks this decomposition for QV
        circuits).  With ``allow_unsupported=True`` a conservative
        CZ-rewrite estimate is returned instead of raising.
    """
    key = basis.lower()
    if key not in SUPPORTED_BASES:
        raise UnsupportedDecompositionError(f"no analytic routine for basis {basis!r}")

    cz_count = min_cz_count(unitary)

    if key in ("cz", "cnot", "cx"):
        return BaselineDecomposition(key, cz_count)

    if key == "syc":
        # Each CZ of the analytic circuit is rewritten with two SYC gates.
        return BaselineDecomposition(key, 2 * cz_count)

    if key == "iswap":
        minimal = min_iswap_count(unitary)
        if cz_count >= 3:
            # Generic unitaries are routed through the CZ form with one
            # extra iSWAP of overhead (matching the ~4 gates the paper
            # reports for Cirq on QV unitaries).
            return BaselineDecomposition(key, minimal + 1)
        return BaselineDecomposition(key, minimal)

    # sqrt_iswap
    minimal = min_sqrt_iswap_count(unitary)
    if cz_count >= 3 and not allow_unsupported:
        raise UnsupportedDecompositionError(
            "the analytic library does not support generic unitaries in the "
            "sqrt(iSWAP) basis (Cirq limitation reported in the paper); pass "
            "allow_unsupported=True for a CZ-rewrite estimate"
        )
    if cz_count >= 3:
        return BaselineDecomposition(key, 2 * cz_count)
    return BaselineDecomposition(key, max(minimal, 2 * cz_count))


def baseline_counts_for_targets(
    unitaries,
    basis: str,
    allow_unsupported: bool = False,
) -> Dict[str, float]:
    """Average baseline gate count over an ensemble of target unitaries."""
    counts = [
        baseline_gate_count(u, basis, allow_unsupported=allow_unsupported).num_two_qubit_gates
        for u in unitaries
    ]
    return {
        "basis": basis,
        "mean_gate_count": float(np.mean(counts)),
        "max_gate_count": float(np.max(counts)),
    }


def is_swap_like(unitary: np.ndarray) -> bool:
    """True when the unitary is locally equivalent to SWAP (3 CZ / 3 iSWAP class)."""
    return is_locally_equivalent(unitary, standard.SWAP)
