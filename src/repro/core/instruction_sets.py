"""Instruction-set catalogue (Table II of the paper).

An :class:`InstructionSet` is the software-visible set of two-qubit gate
types (plus, implicitly, arbitrary single-qubit rotations).  Three kinds of
sets are studied:

* single-type sets ``S1``-``S7``,
* multi-type sets ``G1``-``G7`` (Google) and ``R1``-``R5`` (Rigetti),
* continuous families ``FullXY`` and ``FullfSim`` where NuOp may pick any
  gate angles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.gate_types import GateType, google_gate_type, rigetti_gate_type


@dataclass(frozen=True)
class InstructionSet:
    """A candidate hardware instruction set.

    Attributes
    ----------
    name:
        Table II label (``"S1"``, ``"G3"``, ``"R5"``, ``"FullfSim"``, ...).
    gate_types:
        The discrete two-qubit gate types exposed to the compiler.  Empty
        for fully continuous sets.
    continuous_family:
        ``None`` for discrete sets, ``"xy"`` or ``"fsim"`` when the entire
        continuous family is exposed (NuOp then optimises the two-qubit
        angles as well).
    vendor:
        ``"google"`` or ``"rigetti"``; informational.
    """

    name: str
    gate_types: Tuple[GateType, ...] = field(default_factory=tuple)
    continuous_family: Optional[str] = None
    vendor: str = "google"

    def __post_init__(self) -> None:
        if self.continuous_family not in (None, "xy", "fsim"):
            raise ValueError("continuous_family must be None, 'xy' or 'fsim'")
        if not self.gate_types and self.continuous_family is None:
            raise ValueError("an instruction set needs gate types or a continuous family")

    @property
    def is_continuous(self) -> bool:
        """True for the FullXY / FullfSim sets."""
        return self.continuous_family is not None

    @property
    def num_gate_types(self) -> int:
        """Number of discrete two-qubit gate types (0 for continuous sets)."""
        return len(self.gate_types)

    def type_keys(self) -> List[str]:
        """Calibration keys of every discrete gate type."""
        return [gate_type.type_key for gate_type in self.gate_types]

    def labels(self) -> List[str]:
        """Table II labels of the member gate types."""
        return [gate_type.label for gate_type in self.gate_types]

    def has_native_swap(self) -> bool:
        """True when the hardware SWAP gate is part of the set (R5 / G7)."""
        return any(gate_type.label == "SWAP" for gate_type in self.gate_types)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_continuous:
            return f"InstructionSet({self.name}: continuous {self.continuous_family})"
        return f"InstructionSet({self.name}: {', '.join(self.labels())})"


# ---------------------------------------------------------------------------
# Catalogue constructors
# ---------------------------------------------------------------------------

_GOOGLE_SET_MEMBERS: Dict[str, List[str]] = {
    "G1": ["S1", "S2"],
    "G2": ["S1", "S2", "S3"],
    "G3": ["S1", "S2", "S3", "S4"],
    "G4": ["S1", "S2", "S3", "S4", "S5"],
    "G5": ["S1", "S2", "S3", "S4", "S5", "S6"],
    "G6": ["S1", "S2", "S3", "S4", "S5", "S6", "S7"],
    "G7": ["S1", "S2", "S3", "S4", "S5", "S6", "S7", "SWAP"],
}

_RIGETTI_SET_MEMBERS: Dict[str, List[str]] = {
    "R1": ["S3", "S4"],
    "R2": ["S2", "S3", "S4"],
    "R3": ["S2", "S3", "S4", "S5"],
    "R4": ["S2", "S3", "S4", "S5", "S6"],
    "R5": ["S2", "S3", "S4", "S5", "S6", "SWAP"],
}


def single_gate_set(label: str, vendor: str = "google") -> InstructionSet:
    """Instruction set containing a single two-qubit gate type (S1-S7)."""
    builder = google_gate_type if vendor == "google" else rigetti_gate_type
    return InstructionSet(name=label, gate_types=(builder(label),), vendor=vendor)


def google_instruction_set(name: str) -> InstructionSet:
    """One of the multi-type Google sets G1-G7."""
    if name not in _GOOGLE_SET_MEMBERS:
        raise ValueError(f"unknown Google instruction set {name!r}")
    members = tuple(google_gate_type(label) for label in _GOOGLE_SET_MEMBERS[name])
    return InstructionSet(name=name, gate_types=members, vendor="google")


def rigetti_instruction_set(name: str) -> InstructionSet:
    """One of the multi-type Rigetti sets R1-R5."""
    if name not in _RIGETTI_SET_MEMBERS:
        raise ValueError(f"unknown Rigetti instruction set {name!r}")
    members = tuple(rigetti_gate_type(label) for label in _RIGETTI_SET_MEMBERS[name])
    return InstructionSet(name=name, gate_types=members, vendor="rigetti")


def full_xy_set() -> InstructionSet:
    """The fully continuous XY(theta) family (Rigetti proposal)."""
    return InstructionSet(name="FullXY", continuous_family="xy", vendor="rigetti")


def full_fsim_set() -> InstructionSet:
    """The fully continuous fSim(theta, phi) family (Google proposal)."""
    return InstructionSet(name="FullfSim", continuous_family="fsim", vendor="google")


def google_catalogue() -> Dict[str, InstructionSet]:
    """Every instruction set evaluated on Sycamore (Figure 10)."""
    catalogue: Dict[str, InstructionSet] = {}
    for label in ("S1", "S2", "S3", "S4", "S5", "S6", "S7"):
        catalogue[label] = single_gate_set(label, vendor="google")
    for name in _GOOGLE_SET_MEMBERS:
        catalogue[name] = google_instruction_set(name)
    catalogue["FullfSim"] = full_fsim_set()
    return catalogue


def rigetti_catalogue() -> Dict[str, InstructionSet]:
    """Every instruction set evaluated on Aspen-8 (Figure 9)."""
    catalogue: Dict[str, InstructionSet] = {}
    for label in ("S2", "S3", "S4", "S5", "S6"):
        catalogue[label] = single_gate_set(label, vendor="rigetti")
    for name in _RIGETTI_SET_MEMBERS:
        catalogue[name] = rigetti_instruction_set(name)
    catalogue["FullXY"] = full_xy_set()
    return catalogue


def table2_catalogue() -> Dict[str, InstructionSet]:
    """The complete Table II catalogue (Google + Rigetti + continuous sets)."""
    catalogue = google_catalogue()
    catalogue.update(rigetti_catalogue())
    return catalogue
