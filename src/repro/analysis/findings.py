"""The finding record every ``repro check`` prong reports.

A checker never raises on a violated invariant (except via the opt-in
:class:`~repro.analysis.circuit_checks.PassVerificationError` hook) --
it returns a list of :class:`Finding` records so callers can aggregate
across prongs, render them for humans, or emit them as JSON for CI.
An empty list means the checked artefact is clean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class Finding:
    """One violated invariant, lint rule or contract.

    Attributes
    ----------
    check:
        Stable rule identifier (``"connectivity"``, ``"cptp"``,
        ``"env-policy"``, ...); CI and tests match on it.
    message:
        Human-readable description of what is wrong, self-contained
        enough to act on without re-running the checker.
    where:
        Locator: a ``path:line`` for source lints, a pass name for the
        pass hook, a moment/group index or device/set/scale combination
        for the IR and channel checkers.  Empty when the artefact itself
        is the location.
    """

    check: str
    message: str
    where: str = ""

    def as_dict(self) -> Dict[str, str]:
        """Plain-dict form for the ``repro check --json`` report."""
        return {"check": self.check, "where": self.where, "message": self.message}

    def render(self) -> str:
        """One-line human-readable form."""
        location = f" [{self.where}]" if self.where else ""
        return f"{self.check}{location}: {self.message}"


def render_findings(findings: Sequence[Finding]) -> List[str]:
    """Render findings one per line (stable order: as reported)."""
    return [finding.render() for finding in findings]
