"""Channel checkers: CPTP verification of lowered noise programs.

Every noisy simulation in this repo replays either a
:class:`~repro.simulators.noise_program.NoiseProgram` (gate unitaries +
Kraus channels) or its fused
:class:`~repro.simulators.superop.SuperopProgram` lowering (one
``4^k x 4^k`` superoperator per fused group).  Physicality of those
artefacts -- each channel trace preserving (``sum_k K_k^† K_k = I``),
each fused group completely positive (Choi matrix PSD, via the existing
:func:`repro.simulators.superop.superoperator_to_choi`) and trace
preserving -- is the channel-level analogue of the IR invariants in
:mod:`repro.analysis.circuit_checks`: a violation means a wrong-but-
plausible distribution would be computed, cached under a content key,
and served to every warm request from then on.

``tests/test_superop.py`` asserted CPTP-ness of a handful of fixtures;
this module promotes that into a reusable production check, runnable
against **any** registered device x instruction set x error scale via
:func:`verify_device_set_cptp` / the ``repro check --programs`` sweep.

All tolerances are configurable; the default matches
:func:`repro.simulators.superop.is_cptp_superoperator`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.core.instruction_sets import InstructionSet
    from repro.devices.device import Device
    from repro.simulators.noise_program import NoiseProgram
    from repro.simulators.superop import SuperopProgram

DEFAULT_ATOL = 1e-9
"""Default absolute tolerance of every physicality comparison; the bar
:func:`repro.simulators.superop.is_cptp_superoperator` set."""


def check_kraus_operators(
    operators: Sequence[np.ndarray],
    atol: float = DEFAULT_ATOL,
    where: str = "",
) -> List[Finding]:
    """A Kraus set is square, uniform-dimension and trace preserving.

    Complete positivity is automatic for any map *given* in Kraus form;
    trace preservation (``sum_k K_k^† K_k = I``) is the contract this
    verifies -- it is what normalises probabilities after every channel
    application.
    """
    findings: List[Finding] = []
    if not operators:
        return [
            Finding(check="cptp", where=where, message="channel has no Kraus operators")
        ]
    mats = [np.asarray(op, dtype=complex) for op in operators]
    dim = mats[0].shape[0]
    for index, op in enumerate(mats):
        if op.ndim != 2 or op.shape != (dim, dim):
            findings.append(
                Finding(
                    check="cptp",
                    where=where,
                    message=(
                        f"Kraus operator {index} has shape {op.shape}, expected "
                        f"({dim}, {dim})"
                    ),
                )
            )
    if findings:
        return findings
    total = sum(op.conj().T @ op for op in mats)
    deviation = float(np.max(np.abs(total - np.eye(dim))))
    if deviation > atol:
        findings.append(
            Finding(
                check="cptp",
                where=where,
                message=(
                    f"channel is not trace preserving: max |sum K^†K - I| = "
                    f"{deviation:.3e} (atol {atol:.1e})"
                ),
            )
        )
    return findings


def check_unitary(
    matrix: np.ndarray, atol: float = DEFAULT_ATOL, where: str = ""
) -> List[Finding]:
    """A gate matrix is unitary within ``atol``."""
    mat = np.asarray(matrix, dtype=complex)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        return [
            Finding(
                check="unitary",
                where=where,
                message=f"gate matrix has non-square shape {mat.shape}",
            )
        ]
    deviation = float(np.max(np.abs(mat.conj().T @ mat - np.eye(mat.shape[0]))))
    if deviation > atol:
        return [
            Finding(
                check="unitary",
                where=where,
                message=(
                    f"gate matrix is not unitary: max |U^†U - I| = "
                    f"{deviation:.3e} (atol {atol:.1e})"
                ),
            )
        ]
    return []


def check_superoperator_cptp(
    superop: np.ndarray, atol: float = DEFAULT_ATOL, where: str = ""
) -> List[Finding]:
    """A superoperator is completely positive and trace preserving.

    Complete positivity via the Choi matrix's smallest eigenvalue, trace
    preservation via its partial trace -- both through the existing
    :func:`repro.simulators.superop.is_cptp_superoperator`, so checker
    and kernels agree on the vec convention by construction.
    """
    from repro.simulators.superop import is_cptp_superoperator

    completely_positive, trace_preserving = is_cptp_superoperator(superop, atol=atol)
    findings: List[Finding] = []
    if not completely_positive:
        findings.append(
            Finding(
                check="cptp",
                where=where,
                message=(
                    "superoperator is not completely positive (Choi matrix has a "
                    f"negative eigenvalue below -{atol:.1e})"
                ),
            )
        )
    if not trace_preserving:
        findings.append(
            Finding(
                check="cptp",
                where=where,
                message=(
                    "superoperator is not trace preserving (partial trace of the "
                    f"Choi matrix deviates from identity beyond {atol:.1e})"
                ),
            )
        )
    return findings


def check_noise_program(
    program: "NoiseProgram", atol: float = DEFAULT_ATOL, where: str = ""
) -> List[Finding]:
    """Every artefact of a lowered noise program is physical.

    Gate matrices unitary; every per-operation and idle Kraus channel
    trace preserving; moment durations non-negative; channel and gate
    qubit tuples inside the program register.  Also re-checks moment
    qubit-disjointness -- the structural invariant batched replay
    (one contraction per fused group) silently depends on.
    """
    from repro.analysis.circuit_checks import check_moment_disjointness

    prefix = f"{where}: " if where else ""
    findings: List[Finding] = []
    findings += [
        Finding(check=f.check, where=f"{prefix}{f.where}", message=f.message)
        for f in check_moment_disjointness([m.operations for m in program.moments])
    ]
    for m_index, moment in enumerate(program.moments):
        if moment.duration < 0:
            findings.append(
                Finding(
                    check="program",
                    where=f"{prefix}moment {m_index}",
                    message=f"negative duration {moment.duration}",
                )
            )
        for o_index, operation in enumerate(moment.operations):
            loc = f"{prefix}moment {m_index} op {o_index}"
            findings += check_unitary(operation.matrix, atol=atol, where=loc)
            findings += _check_program_qubits(operation.qubits, program.num_qubits, loc)
            for c_index, (channel, qubits) in enumerate(operation.channels):
                chan_loc = f"{loc} channel {c_index} ({channel.name})"
                findings += check_kraus_operators(
                    channel.operators, atol=atol, where=chan_loc
                )
                findings += _check_program_qubits(qubits, program.num_qubits, chan_loc)
        for c_index, (channel, qubits) in enumerate(moment.idle_channels):
            loc = f"{prefix}moment {m_index} idle {c_index} ({channel.name})"
            findings += check_kraus_operators(channel.operators, atol=atol, where=loc)
            findings += _check_program_qubits(qubits, program.num_qubits, loc)
    return findings


def _check_program_qubits(
    qubits: Sequence[int], num_qubits: int, where: str
) -> List[Finding]:
    """Qubit tuples are distinct and inside the program register."""
    qubits = tuple(qubits)
    findings: List[Finding] = []
    if len(set(qubits)) != len(qubits):
        findings.append(
            Finding(
                check="program", where=where, message=f"repeated qubit in {qubits}"
            )
        )
    out = [q for q in qubits if q < 0 or q >= num_qubits]
    if out:
        findings.append(
            Finding(
                check="program",
                where=where,
                message=f"qubit(s) {out} outside the {num_qubits}-qubit register",
            )
        )
    return findings


def check_superop_program(
    program: "SuperopProgram", atol: float = DEFAULT_ATOL, where: str = ""
) -> List[Finding]:
    """Every fused group of a superoperator program is CPTP.

    Each group composes a gate conjugation with its trailing channels;
    compositions of CPTP maps are CPTP, so a violation means the fusion
    itself (or an input channel) is broken.
    """
    prefix = f"{where}: " if where else ""
    findings: List[Finding] = []
    for index, group in enumerate(program.groups):
        loc = f"{prefix}group {index} qubits {group.qubits}"
        expected = 4 ** len(group.qubits)
        if group.superoperator.shape != (expected, expected):
            findings.append(
                Finding(
                    check="cptp",
                    where=loc,
                    message=(
                        f"superoperator shape {group.superoperator.shape} does not "
                        f"match {len(group.qubits)} qubit(s)"
                    ),
                )
            )
            continue
        findings += check_superoperator_cptp(group.superoperator, atol=atol, where=loc)
    return findings


# ---------------------------------------------------------------------------
# Device x instruction set x error scale sweeps
# ---------------------------------------------------------------------------


def verify_device_set_cptp(
    device: "Device",
    instruction_set: "InstructionSet",
    error_scales: Sequence[float] = (1.0,),
    num_qubits: int = 2,
    atol: float = DEFAULT_ATOL,
    decomposer: Optional[object] = None,
) -> List[Finding]:
    """Compile a probe circuit and verify every lowering is CPTP.

    Compiles a ``num_qubits`` GHZ probe for ``instruction_set`` on
    ``device`` once, lowers it to a :class:`NoiseProgram` at every error
    scale (the compiled circuit is scale-invariant; only channel tensors
    rescale), and checks both the Kraus-level program and its fused
    superoperator lowering.  This is the ``repro check --programs``
    work-unit and the sweep the channel-checker test matrix runs over
    every built-in device x Table II set.
    """
    from repro.applications.ghz import ghz_circuit
    from repro.core.pipeline import compile_circuit
    from repro.simulators.noise_program import noise_program_for
    from repro.simulators.superop import superop_program_for

    circuit = ghz_circuit(num_qubits)
    compiled = compile_circuit(
        circuit, device, instruction_set, decomposer=decomposer
    )
    findings: List[Finding] = []
    for scale in error_scales:
        where = f"{device.name}/{instruction_set.name}/scale={scale:g}"
        program = noise_program_for(compiled, device, error_scale=scale)
        findings += check_noise_program(program, atol=atol, where=where)
        findings += check_superop_program(
            superop_program_for(program), atol=atol, where=where
        )
    return findings
