"""Static verification of the repro stack (the ``repro check`` subsystem).

Three prongs, one per submodule:

* :mod:`repro.analysis.circuit_checks` -- IR invariants of compiled
  circuits (connectivity, gate-type registration, moment disjointness,
  schedule monotonicity) plus the opt-in per-pass ``REPRO_VERIFY_PASSES``
  hook the :class:`~repro.compiler.manager.PassManager` calls.
* :mod:`repro.analysis.channel_checks` -- CPTP verification of lowered
  noise programs and fused superoperator groups, sweepable over every
  registered device x instruction set x error scale.
* :mod:`repro.analysis.source_lints` -- stdlib-``ast`` lints for
  repo-specific contracts: cache-key (fingerprint) purity, the
  ``repro.config`` env-read policy, and cache/lock discipline.

All checkers report :class:`~repro.analysis.findings.Finding` records;
``repro check [--source|--circuits|--programs]`` is the CLI front end
and ``docs/analysis.md`` the narrative documentation.  This package
intentionally imports nothing heavy at the top level -- the compiler's
per-pass hook must not drag simulator modules into every compile.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, render_findings

__all__ = ["Finding", "render_findings"]
