"""Custom source lints over the ``repro`` package (stdlib ``ast`` only).

Three repo-specific rules that generic linters cannot know about, each
protecting an invariant the serving stack silently depends on:

**fingerprint-purity** -- every ``@dataclass`` with a ``fingerprint``
method must fold each declared field into the digest (directly, through
a same-class helper method, or wholesale via ``dataclasses.asdict``), or
carry an explicit entry in :data:`FINGERPRINT_ALLOWLIST` with a one-line
justification.  Fingerprints are cache-key components: a result-affecting
field outside the fingerprint is a cache-key collision -- two different
runs sharing one cached result -- which a warm multi-tenant ``repro
serve`` daemon would then serve forever.

**env-policy** -- every ``os.environ`` / ``os.getenv`` read outside
``repro/config.py`` must route through the :mod:`repro.config` helpers
(``positive_int_env`` / ``str_env`` / ``list_env`` / ``flag_env``), so
all knobs share one parse/strip/warn policy and the environment-variable
catalogue in ``docs/service.md`` stays authoritative.

**lock-discipline** -- module-level ``_*_CACHE`` ``OrderedDict`` caches
must have a paired ``_*_CACHE_LOCK`` and may only be mutated inside a
``with <that lock>:`` block.  These caches are shared across the
threaded daemon's request handlers; an unlocked ``popitem`` during a
concurrent ``move_to_end`` corrupts the dict.

All three run from ``repro check --source`` (and CI); findings are
:class:`~repro.analysis.findings.Finding` records with ``path:line``
locators.  No third-party dependencies: plain :mod:`ast`.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Union

from repro.analysis.findings import Finding

FINGERPRINT_ALLOWLIST: Dict[str, str] = {
    "SimulationOptions.method": (
        "the resolved backend's name+version are separate simulation-cache "
        "key components; hashing the *requested* method would split "
        "backend=/method= spellings of the same run"
    ),
    "SimulationOptions.batch": (
        "execution strategy, not distribution content: batched replay is "
        "held to <= 1e-10 of sequential, so both land under one cache key"
    ),
    "PipelineConfig.name": (
        "pipelines are content-addressed (passes + overrides); renamed "
        "aliases deliberately share compilation-cache entries"
    ),
    "PipelineConfig.description": "cosmetic documentation, never affects output",
    "NoiseProgram._superop": (
        "lazily derived fused lowering, fully determined by the "
        "fingerprinted moments"
    ),
    "NoiseProgram._trajectory_plan": (
        "lazily derived trajectory plan, fully determined by the "
        "fingerprinted moments"
    ),
    "TabulationConfig.build_on_miss": (
        "controls only *when* a decomposition table is built (inline vs "
        "pre-built by 'repro tabulate'), never its content; folding it in "
        "would split identical tables across two cache keys"
    ),
}
"""Fields deliberately excluded from their dataclass's ``fingerprint``.

Keys are ``"ClassName.field"``; values are the one-line justification
the purity analyzer demands (see ``docs/analysis.md`` for the policy).
``NoiseProgram._fingerprint`` needs no entry: the method reads it, so
the analyzer sees it as covered."""

CACHE_NAME_PATTERN = re.compile(r"^_[A-Za-z0-9_]*_CACHE$")
"""Module-level names the lock-discipline lint treats as shared caches."""

_MUTATING_METHODS = frozenset(
    {
        "clear",
        "pop",
        "popitem",
        "update",
        "setdefault",
        "move_to_end",
        "__setitem__",
        "__delitem__",
    }
)

_ENV_EXEMPT_FILES = ("config.py",)
"""Files (relative to the lint root) allowed to touch ``os.environ``."""


def default_source_root() -> Path:
    """The installed ``repro`` package directory (the default lint root)."""
    import repro

    return Path(repro.__file__).resolve().parent


def iter_source_files(root: Union[str, Path]) -> List[Path]:
    """Every ``*.py`` file under ``root``, sorted for stable reports."""
    return sorted(Path(root).rglob("*.py"))


def run_source_lints(
    root: Optional[Union[str, Path]] = None,
    allowlist: Optional[Mapping[str, str]] = None,
) -> List[Finding]:
    """Run all three lints over a source tree (default: the repro package).

    ``allowlist`` overrides :data:`FINGERPRINT_ALLOWLIST` (tests pass
    ``{}`` to exercise detection on synthetic trees).
    """
    root_path = Path(root).resolve() if root is not None else default_source_root()
    effective_allowlist = (
        dict(allowlist) if allowlist is not None else dict(FINGERPRINT_ALLOWLIST)
    )
    findings: List[Finding] = []
    seen_classes: Dict[str, Set[str]] = {}
    for path in iter_source_files(root_path):
        rel = path.relative_to(root_path).as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
        except SyntaxError as error:
            findings.append(
                Finding(
                    check="parse",
                    where=f"{rel}:{error.lineno or 0}",
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        if rel not in _ENV_EXEMPT_FILES:
            findings += _check_env_policy(tree, rel)
        findings += _check_lock_discipline(tree, rel)
        findings += _check_fingerprint_purity(
            tree, rel, effective_allowlist, seen_classes
        )
    findings += _check_allowlist_freshness(effective_allowlist, seen_classes)
    return findings


# ---------------------------------------------------------------------------
# env-policy
# ---------------------------------------------------------------------------


def _check_env_policy(tree: ast.AST, rel: str) -> List[Finding]:
    """Flag direct ``os.environ`` / ``os.getenv`` access."""
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "os"
            and node.attr in ("environ", "getenv")
        ):
            findings.append(
                Finding(
                    check="env-policy",
                    where=f"{rel}:{node.lineno}",
                    message=(
                        f"direct os.{node.attr} access; read environment knobs "
                        "through the repro.config helpers (positive_int_env / "
                        "str_env / list_env / flag_env)"
                    ),
                )
            )
        elif isinstance(node, ast.ImportFrom) and node.module == "os":
            names = [
                alias.name
                for alias in node.names
                if alias.name in ("environ", "getenv")
            ]
            if names:
                findings.append(
                    Finding(
                        check="env-policy",
                        where=f"{rel}:{node.lineno}",
                        message=(
                            f"importing {', '.join(names)} from os; read "
                            "environment knobs through the repro.config helpers"
                        ),
                    )
                )
    return findings


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------


def _is_plain_dict_value(value: Optional[ast.expr]) -> bool:
    """``OrderedDict()`` / ``dict()`` / ``{}`` -- a bare shared mapping.

    Cache *objects* (``CompilationCache(...)``) are excluded: they own
    their internal lock; the lint targets raw dicts whose callers must
    synchronise themselves.
    """
    if isinstance(value, ast.Dict):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in ("OrderedDict", "dict")
    return False


def _check_lock_discipline(tree: ast.Module, rel: str) -> List[Finding]:
    """Module-level ``_*_CACHE`` dicts: paired lock, mutations inside it."""
    caches: Dict[str, int] = {}
    locks: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if CACHE_NAME_PATTERN.match(target.id) and _is_plain_dict_value(value):
                caches[target.id] = stmt.lineno
            elif target.id.endswith("_LOCK"):
                locks.add(target.id)
    if not caches:
        return []
    findings: List[Finding] = []
    for cache, lineno in sorted(caches.items()):
        if f"{cache}_LOCK" not in locks:
            findings.append(
                Finding(
                    check="lock-discipline",
                    where=f"{rel}:{lineno}",
                    message=(
                        f"module-level cache {cache} has no paired {cache}_LOCK; "
                        "shared caches need a lock for the threaded daemon"
                    ),
                )
            )
    visitor = _LockVisitor(set(caches), rel)
    visitor.visit(tree)
    return findings + visitor.findings


class _LockVisitor(ast.NodeVisitor):
    """Track which locks are held lexically; flag unlocked cache mutation."""

    def __init__(self, caches: Set[str], rel: str):
        self.caches = caches
        self.rel = rel
        self.held: Set[str] = set()
        self.findings: List[Finding] = []

    def visit_With(self, node: ast.With) -> None:
        entered = {
            item.context_expr.id
            for item in node.items
            if isinstance(item.context_expr, ast.Name)
        }
        added = entered - self.held
        self.held |= added
        self.generic_visit(node)
        self.held -= added

    def _flag(self, cache: str, node: ast.AST, what: str) -> None:
        if f"{cache}_LOCK" in self.held:
            return
        self.findings.append(
            Finding(
                check="lock-discipline",
                where=f"{self.rel}:{node.lineno}",
                message=(
                    f"{what} of {cache} outside 'with {cache}_LOCK:'; every "
                    "mutation of a module-level cache must hold its lock"
                ),
            )
        )

    def _check_subscript_target(self, target: ast.expr, node: ast.AST, what: str) -> None:
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and target.value.id in self.caches
        ):
            self._flag(target.value.id, node, what)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_subscript_target(target, node, "item assignment")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_subscript_target(node.target, node, "augmented assignment")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_subscript_target(node.target, node, "item assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_subscript_target(target, node, "item deletion")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.caches
            and func.attr in _MUTATING_METHODS
        ):
            self._flag(func.value.id, node, f".{func.attr}() call")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# fingerprint-purity
# ---------------------------------------------------------------------------


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _declared_fields(node: ast.ClassDef) -> Dict[str, int]:
    """Dataclass fields (AnnAssign targets, minus ClassVars) -> line numbers."""
    fields: Dict[str, int] = {}
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        annotation_names = {
            sub.id for sub in ast.walk(stmt.annotation) if isinstance(sub, ast.Name)
        } | {
            sub.attr
            for sub in ast.walk(stmt.annotation)
            if isinstance(sub, ast.Attribute)
        }
        if "ClassVar" in annotation_names:
            continue
        fields[stmt.target.id] = stmt.lineno
    return fields


def _method_coverage(
    methods: Mapping[str, ast.FunctionDef], start: str
) -> "tuple[Set[str], bool]":
    """``(self.X names read, whole-instance digest?)`` reachable from ``start``.

    Follows same-class helper calls transitively (``fingerprint`` ->
    ``to_json_dict``); a ``dataclasses.asdict(self)`` / ``astuple(self)``
    anywhere in the closure counts as covering every field.
    """
    referenced: Set[str] = set()
    covers_all = False
    visited: Set[str] = set()
    worklist = [start]
    while worklist:
        name = worklist.pop()
        if name in visited or name not in methods:
            continue
        visited.add(name)
        for node in ast.walk(methods[name]):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                referenced.add(node.attr)
                if node.attr in methods:
                    worklist.append(node.attr)
            elif isinstance(node, ast.Call) and node.args:
                func = node.func
                func_name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else ""
                )
                first = node.args[0]
                if (
                    func_name in ("asdict", "astuple")
                    and isinstance(first, ast.Name)
                    and first.id == "self"
                ):
                    covers_all = True
    return referenced, covers_all


def _check_fingerprint_purity(
    tree: ast.AST,
    rel: str,
    allowlist: Mapping[str, str],
    seen_classes: Dict[str, Set[str]],
) -> List[Finding]:
    """Every field of a fingerprinted dataclass is hashed or allowlisted."""
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef) or not _is_dataclass_decorated(node):
            continue
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "fingerprint" not in methods:
            continue
        fields = _declared_fields(node)
        seen_classes[node.name] = set(fields)
        referenced, covers_all = _method_coverage(methods, "fingerprint")
        if covers_all:
            continue
        for field_name, lineno in sorted(fields.items()):
            if field_name in referenced:
                continue
            if f"{node.name}.{field_name}" in allowlist:
                continue
            findings.append(
                Finding(
                    check="fingerprint-purity",
                    where=f"{rel}:{lineno}",
                    message=(
                        f"{node.name}.{field_name} is not folded into "
                        f"{node.name}.fingerprint() and has no allowlist entry; "
                        "an unhashed result-affecting field is a cache-key "
                        "collision (add it to the digest with a schema bump, or "
                        "allowlist it with a justification)"
                    ),
                )
            )
    return findings


def _check_allowlist_freshness(
    allowlist: Mapping[str, str], seen_classes: Mapping[str, Set[str]]
) -> List[Finding]:
    """Allowlist entries must be well-formed and name real fields.

    Field existence is only validated for classes that appeared in the
    scanned tree, so lints over synthetic test trees don't trip on the
    production allowlist; a stale entry for a renamed/removed field of a
    scanned class is flagged so the allowlist cannot rot silently.
    """
    findings: List[Finding] = []
    for key, justification in sorted(allowlist.items()):
        class_name, _, field_name = key.partition(".")
        if not field_name or not str(justification).strip():
            findings.append(
                Finding(
                    check="fingerprint-allowlist",
                    message=(
                        f"malformed allowlist entry {key!r}: keys are "
                        "'ClassName.field' and need a non-empty justification"
                    ),
                )
            )
            continue
        fields = seen_classes.get(class_name)
        if fields is not None and field_name not in fields:
            findings.append(
                Finding(
                    check="fingerprint-allowlist",
                    message=(
                        f"stale allowlist entry {key!r}: {class_name} declares "
                        f"no field {field_name!r} (remove or update the entry)"
                    ),
                )
            )
    return findings
