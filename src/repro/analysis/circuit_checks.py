"""IR invariant checkers: does a compiled circuit respect its device?

The paper's premise is that compiled circuits respect device-level
contracts -- every two-qubit gate on a coupled edge after routing, only
calibrated gate types emitted, parallel operations on disjoint qubits,
a monotone non-overlapping schedule.  Seven PRs of compiler/cache growth
enforce those contracts only indirectly, through bit-identity tests
against frozen references; this module verifies them *structurally*, so
a miscompile is caught as "pass X moved a CZ onto a non-edge" instead of
"the HOP of study Y drifted".

Two entry points:

* :func:`verify_compiled_circuit` -- the standalone post-compile check
  run by ``repro check --circuits``.
* :func:`verify_pass_context` -- the per-pass subset re-checked after
  **every** pass when ``REPRO_VERIFY_PASSES`` is set
  (:class:`repro.compiler.manager.PassManager` calls it and raises
  :class:`PassVerificationError` naming the pass that broke an
  invariant).  The checks are read-only and consume no device RNG, so a
  verified compile is bit-identical to an unverified one -- CI re-runs a
  determinism fixture under the flag to pin that.

Checkers return :class:`~repro.analysis.findings.Finding` lists (empty =
clean) instead of raising, so the CLI can aggregate across artefacts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.analysis.findings import Finding
from repro.circuits.dag import as_moments
from repro.config import flag_env

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.circuits.circuit import QuantumCircuit
    from repro.compiler.manager import PassContext
    from repro.compiler.scheduling import Schedule
    from repro.core.instruction_sets import InstructionSet
    from repro.core.pipeline import CompiledCircuit
    from repro.devices.device import Device

VERIFY_PASSES_ENV_VAR = "REPRO_VERIFY_PASSES"
"""Set truthy (``1``/``true``/``yes``/``on``) to re-verify the IR after
every compiler pass.  Read per :meth:`PassManager.run
<repro.compiler.manager.PassManager.run>` call -- the same
read-on-every-use policy as ``REPRO_SIM_KERNEL`` -- so a long-lived
daemon picks up changes without a restart."""

SCHEDULE_TIME_ATOL = 1e-9
"""Absolute slack (ns) allowed when comparing schedule times: start and
duration arithmetic is float, so "non-overlapping" means overlap below
this tolerance."""


def verify_passes_enabled() -> bool:
    """Whether the opt-in per-pass verification hook is on (env-driven)."""
    return flag_env(VERIFY_PASSES_ENV_VAR, False)


class PassVerificationError(RuntimeError):
    """A compiler pass left the IR violating a device-contract invariant.

    Raised by :class:`repro.compiler.manager.PassManager` under
    ``REPRO_VERIFY_PASSES``; names the offending pass so a broken rewrite
    is attributed at the pass boundary where it happened, not at the end
    of the pipeline (or worse, at simulation time).
    """

    def __init__(self, pipeline: str, pass_name: str, findings: Sequence[Finding]):
        self.pipeline = pipeline
        self.pass_name = pass_name
        self.findings = list(findings)
        details = "\n".join(f"  - {finding.render()}" for finding in self.findings)
        super().__init__(
            f"pass {pass_name!r} of pipeline {pipeline!r} broke "
            f"{len(self.findings)} IR invariant(s):\n{details}"
        )


# ---------------------------------------------------------------------------
# Individual invariants
# ---------------------------------------------------------------------------


def check_qubit_bounds(circuit: "QuantumCircuit") -> List[Finding]:
    """Every operation acts on distinct qubits inside the register."""
    findings: List[Finding] = []
    for index, operation in enumerate(circuit):
        qubits = tuple(operation.qubits)
        if len(set(qubits)) != len(qubits):
            findings.append(
                Finding(
                    check="qubit-bounds",
                    where=f"op {index}",
                    message=f"{operation.gate.name} acts twice on one qubit: {qubits}",
                )
            )
        out = [q for q in qubits if q < 0 or q >= circuit.num_qubits]
        if out:
            findings.append(
                Finding(
                    check="qubit-bounds",
                    where=f"op {index}",
                    message=(
                        f"{operation.gate.name} addresses qubit(s) {out} outside "
                        f"the {circuit.num_qubits}-qubit register"
                    ),
                )
            )
    return findings


def check_moment_disjointness(moments: Sequence[Sequence[object]]) -> List[Finding]:
    """Operations within one moment touch pairwise-disjoint qubits.

    Accepts any moment structure whose entries expose ``.qubits`` --
    circuit moments (:func:`repro.circuits.dag.as_moments`) and
    :class:`~repro.simulators.noise_program.ProgramMoment` operations
    alike -- because the invariant is what makes "a moment" a layer of
    *parallel* hardware operations.
    """
    findings: List[Finding] = []
    for index, moment in enumerate(moments):
        seen = set()
        for operation in moment:
            overlap = seen.intersection(operation.qubits)
            if overlap:
                findings.append(
                    Finding(
                        check="moment-disjoint",
                        where=f"moment {index}",
                        message=(
                            f"qubit(s) {sorted(overlap)} appear in two operations "
                            "of the same moment"
                        ),
                    )
                )
            seen.update(operation.qubits)
    return findings


def check_connectivity(
    circuit: "QuantumCircuit",
    device: "Device",
    physical_qubits: Sequence[int],
) -> List[Finding]:
    """Every multi-qubit operation lands on a coupled device edge.

    ``physical_qubits`` is the routed slot-to-physical placement
    (:attr:`CompiledCircuit.physical_qubits`); a routed circuit whose CZ
    sits on slots mapping to uncoupled physical qubits is exactly the
    miscompile routing exists to prevent.
    """
    findings: List[Finding] = []
    placement = list(physical_qubits)
    for index, operation in enumerate(circuit):
        qubits = tuple(operation.qubits)
        if len(qubits) < 2:
            continue
        if len(qubits) > 2:
            findings.append(
                Finding(
                    check="connectivity",
                    where=f"op {index}",
                    message=(
                        f"{operation.gate.name} acts on {len(qubits)} qubits; the "
                        "device exposes only one- and two-qubit operations"
                    ),
                )
            )
            continue
        slot_a, slot_b = qubits
        if slot_a >= len(placement) or slot_b >= len(placement):
            findings.append(
                Finding(
                    check="connectivity",
                    where=f"op {index}",
                    message=(
                        f"{operation.gate.name} on slots {qubits} exceeds the "
                        f"{len(placement)}-slot placement"
                    ),
                )
            )
            continue
        phys_a, phys_b = placement[slot_a], placement[slot_b]
        if not device.topology.are_connected(phys_a, phys_b):
            findings.append(
                Finding(
                    check="connectivity",
                    where=f"op {index}",
                    message=(
                        f"{operation.gate.type_key} on slots {qubits} maps to "
                        f"physical qubits ({phys_a}, {phys_b}), which are not "
                        f"coupled on {device.topology.name!r}"
                    ),
                )
            )
    return findings


def check_gate_types_registered(
    circuit: "QuantumCircuit",
    device: "Device",
    emitted_gate_types: Iterable[str] = (),
) -> List[Finding]:
    """Emitted and in-circuit two-qubit gate types have calibration data.

    A two-qubit type without a device registration has no error rate or
    duration: the noise model would fail (or worse, default) when the
    program is lowered.  ``emitted_gate_types`` is the NuOp pass's record
    (:attr:`CompiledCircuit.emitted_gate_types`); the circuit's own
    two-qubit types are checked as well because cleanup passes may only
    *remove* gates, never emit types NuOp didn't register.
    """
    findings: List[Finding] = []
    registered = set(device.registered_gate_types)
    for type_key in sorted(set(emitted_gate_types) - registered):
        findings.append(
            Finding(
                check="gate-types",
                message=(
                    f"emitted gate type {type_key!r} is not registered on the "
                    "device (no calibration data)"
                ),
            )
        )
    in_circuit = {op.gate.type_key for op in circuit if len(op.qubits) == 2}
    for type_key in sorted(in_circuit - registered):
        findings.append(
            Finding(
                check="gate-types",
                message=(
                    f"compiled circuit contains two-qubit type {type_key!r} with "
                    "no device calibration registration"
                ),
            )
        )
    return findings


def check_instruction_set_membership(
    circuit: "QuantumCircuit", instruction_set: "InstructionSet"
) -> List[Finding]:
    """Every two-qubit gate belongs to the target instruction set.

    Only meaningful for the discrete Table II sets; continuous families
    (FullXY / FullfSim) admit freshly-parameterised gates by design, so
    they are skipped (empty findings).
    """
    if instruction_set.is_continuous:
        return []
    allowed = set(instruction_set.type_keys())
    in_circuit = {op.gate.type_key for op in circuit if len(op.qubits) == 2}
    return [
        Finding(
            check="instruction-set",
            message=(
                f"two-qubit type {type_key!r} is outside instruction set "
                f"{instruction_set.name!r} ({sorted(allowed)})"
            ),
        )
        for type_key in sorted(in_circuit - allowed)
    ]


def check_mapping_consistency(
    compiled: "CompiledCircuit", device: "Device"
) -> List[Finding]:
    """Placement and qubit mappings are injective and on-device."""
    findings: List[Finding] = []
    placement = list(compiled.physical_qubits)
    if len(set(placement)) != len(placement):
        findings.append(
            Finding(
                check="mapping",
                message=f"physical placement has duplicate qubits: {placement}",
            )
        )
    # Membership, not a dense range: devices keep vendor qubit ids with
    # gaps for non-functional qubits (Aspen-8 disables two of 32).
    device_qubits = set(device.topology.graph.nodes)
    out = [q for q in placement if q not in device_qubits]
    if out:
        findings.append(
            Finding(
                check="mapping",
                message=(
                    f"placement names physical qubit(s) {out} that are not "
                    f"functional qubits of {device.topology.name!r}"
                ),
            )
        )
    for label, mapping in (
        ("initial_mapping", compiled.initial_mapping),
        ("final_mapping", compiled.final_mapping),
    ):
        slots = list(mapping.values())
        if len(set(slots)) != len(slots):
            findings.append(
                Finding(
                    check="mapping",
                    message=f"{label} maps two program qubits to one slot: {mapping}",
                )
            )
        bad = [slot for slot in slots if slot < 0 or slot >= len(placement)]
        if bad:
            findings.append(
                Finding(
                    check="mapping",
                    message=(
                        f"{label} names slot(s) {bad} outside the "
                        f"{len(placement)}-slot placement"
                    ),
                )
            )
    return findings


def check_schedule(
    schedule: "Schedule",
    num_qubits: Optional[int] = None,
    atol: float = SCHEDULE_TIME_ATOL,
) -> List[Finding]:
    """The schedule is monotone and non-overlapping per qubit.

    Program order must respect time order on every qubit (an operation
    never starts before the previous operation on a shared qubit
    finished), durations are non-negative, and ``total_duration`` covers
    the last completion.
    """
    findings: List[Finding] = []
    free_at: dict = {}
    last_end = 0.0
    for index, item in enumerate(schedule.operations):
        if item.duration < -atol:
            findings.append(
                Finding(
                    check="schedule",
                    where=f"op {index}",
                    message=f"negative duration {item.duration}",
                )
            )
        for qubit in item.operation.qubits:
            if num_qubits is not None and (qubit < 0 or qubit >= num_qubits):
                findings.append(
                    Finding(
                        check="schedule",
                        where=f"op {index}",
                        message=f"scheduled on qubit {qubit} outside the register",
                    )
                )
                continue
            if item.start < free_at.get(qubit, 0.0) - atol:
                findings.append(
                    Finding(
                        check="schedule",
                        where=f"op {index}",
                        message=(
                            f"starts at {item.start} while qubit {qubit} is busy "
                            f"until {free_at[qubit]} (overlap)"
                        ),
                    )
                )
            free_at[qubit] = max(free_at.get(qubit, 0.0), item.end)
        last_end = max(last_end, item.end)
    if schedule.total_duration < last_end - atol:
        findings.append(
            Finding(
                check="schedule",
                message=(
                    f"total_duration {schedule.total_duration} is shorter than the "
                    f"last completion at {last_end}"
                ),
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Aggregate entry points
# ---------------------------------------------------------------------------


def verify_compiled_circuit(
    compiled: "CompiledCircuit",
    device: "Device",
    instruction_set: Optional["InstructionSet"] = None,
) -> List[Finding]:
    """Run every post-compile invariant against a :class:`CompiledCircuit`.

    The full contract of ``repro check --circuits``: qubit bounds, moment
    disjointness, routed connectivity, calibration coverage of the
    emitted gate types, instruction-set membership (when the set is
    given and discrete), mapping consistency, and a monotone
    non-overlapping ASAP schedule under the device's calibrated
    durations.  Read-only: consumes no device RNG.
    """
    from repro.compiler.scheduling import asap_schedule

    findings = check_qubit_bounds(compiled.circuit)
    findings += check_moment_disjointness(as_moments(compiled.circuit))
    findings += check_connectivity(compiled.circuit, device, compiled.physical_qubits)
    findings += check_gate_types_registered(
        compiled.circuit, device, compiled.emitted_gate_types
    )
    if instruction_set is not None:
        findings += check_instruction_set_membership(compiled.circuit, instruction_set)
    findings += check_mapping_consistency(compiled, device)
    schedule = asap_schedule(compiled.circuit, device.noise_model)
    findings += check_schedule(schedule, compiled.circuit.num_qubits)
    return findings


def verify_pass_context(context: "PassContext") -> List[Finding]:
    """The per-pass invariant subset for the ``REPRO_VERIFY_PASSES`` hook.

    Only invariants that are meaningful *mid-pipeline* run, gated on
    which products exist on the context yet: connectivity needs the
    routing placement, calibration coverage needs NuOp's emitted-type
    record, the schedule check needs the scheduling pass's product.
    Everything here is read-only and RNG-free, so enabling verification
    cannot perturb compilation.
    """
    findings = check_qubit_bounds(context.circuit)
    findings += check_moment_disjointness(as_moments(context.circuit))
    if context.physical_qubits:
        findings += check_connectivity(
            context.circuit, context.device, context.physical_qubits
        )
    if context.emitted_gate_types:
        findings += check_gate_types_registered(
            context.circuit, context.device, context.emitted_gate_types
        )
        if not context.instruction_set.is_continuous:
            findings += check_instruction_set_membership(
                context.circuit, context.instruction_set
            )
    if context.schedule is not None:
        findings += check_schedule(context.schedule, context.circuit.num_qubits)
    return findings
