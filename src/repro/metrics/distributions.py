"""Distribution-level helpers shared by the application metrics."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def validate_distribution(probabilities: Sequence[float]) -> np.ndarray:
    """Return a normalised, non-negative copy of a probability vector."""
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1:
        raise ValueError("expected a one-dimensional probability vector")
    if np.any(probs < -1e-9):
        raise ValueError("probabilities must be non-negative")
    probs = np.clip(probs, 0.0, None)
    total = probs.sum()
    if total <= 0:
        raise ValueError("probability vector sums to zero")
    return probs / total


def total_variation_distance(p: Sequence[float], q: Sequence[float]) -> float:
    """Total variation distance ``0.5 * sum |p - q|``."""
    p = validate_distribution(p)
    q = validate_distribution(q)
    return float(0.5 * np.abs(p - q).sum())


def hellinger_fidelity(p: Sequence[float], q: Sequence[float]) -> float:
    """Hellinger fidelity ``(sum sqrt(p q))^2`` between two distributions."""
    p = validate_distribution(p)
    q = validate_distribution(q)
    return float(np.sum(np.sqrt(p * q)) ** 2)


def kl_divergence(p: Sequence[float], q: Sequence[float], epsilon: float = 1e-12) -> float:
    """Kullback-Leibler divergence ``D(p || q)`` with clipping for zeros."""
    p = validate_distribution(p)
    q = validate_distribution(q)
    q = np.clip(q, epsilon, None)
    mask = p > 0
    return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))


def cross_entropy(p: Sequence[float], q: Sequence[float], epsilon: float = 1e-300) -> float:
    """Cross entropy ``-sum_x p(x) log q(x)`` (natural log)."""
    p = validate_distribution(p)
    q = np.asarray(q, dtype=float)
    q = np.clip(q, epsilon, None)
    return float(-np.sum(p * np.log(q)))


def permute_distribution(probabilities: Sequence[float], qubit_order: Sequence[int]) -> np.ndarray:
    """Reorder the qubits of a distribution.

    ``qubit_order[i]`` gives the current axis that should become qubit ``i``
    of the output.  Used to undo the qubit permutation introduced by
    routing SWAPs before comparing a measured distribution against the
    ideal program-order distribution.
    """
    probs = np.asarray(probabilities, dtype=float)
    num_qubits = int(round(np.log2(probs.size)))
    if sorted(qubit_order) != list(range(num_qubits)):
        raise ValueError("qubit_order must be a permutation of the qubits")
    tensor = probs.reshape((2,) * num_qubits)
    tensor = np.transpose(tensor, qubit_order)
    return tensor.reshape(-1)


def uniform_distribution(num_qubits: int) -> np.ndarray:
    """The uniform distribution over ``2^n`` outcomes."""
    size = 2**num_qubits
    return np.full(size, 1.0 / size)
