"""Success-rate metric for circuits with a known correct outcome (QFT benchmark)."""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.metrics.distributions import validate_distribution


def success_rate(
    measured_probabilities: Sequence[float],
    correct_outcomes: Union[int, Iterable[int]],
) -> float:
    """Probability that a measurement returns one of the correct outcomes."""
    measured = validate_distribution(measured_probabilities)
    if isinstance(correct_outcomes, (int, np.integer)):
        outcomes = [int(correct_outcomes)]
    else:
        outcomes = [int(outcome) for outcome in correct_outcomes]
    for outcome in outcomes:
        if not 0 <= outcome < measured.size:
            raise ValueError(f"outcome {outcome} outside distribution support")
    return float(sum(measured[outcome] for outcome in outcomes))
