"""Application-level reliability metrics used in the paper's evaluation.

* heavy output probability (QV),
* cross-entropy difference (QAOA) and linear XEB fidelity (Fermi-Hubbard),
* success rate (QFT),
* generic distribution distances and permutation helpers.
"""

from repro.metrics.distributions import (
    validate_distribution,
    total_variation_distance,
    hellinger_fidelity,
    kl_divergence,
    cross_entropy,
    permute_distribution,
    uniform_distribution,
)
from repro.metrics.hop import (
    heavy_output_set,
    heavy_output_probability,
    ideal_heavy_output_probability,
    passes_quantum_volume_threshold,
)
from repro.metrics.xeb import (
    cross_entropy_difference,
    linear_xeb_fidelity,
    normalized_linear_xeb_fidelity,
)
from repro.metrics.success import success_rate

__all__ = [
    "validate_distribution",
    "total_variation_distance",
    "hellinger_fidelity",
    "kl_divergence",
    "cross_entropy",
    "permute_distribution",
    "uniform_distribution",
    "heavy_output_set",
    "heavy_output_probability",
    "ideal_heavy_output_probability",
    "passes_quantum_volume_threshold",
    "cross_entropy_difference",
    "linear_xeb_fidelity",
    "normalized_linear_xeb_fidelity",
    "success_rate",
]
