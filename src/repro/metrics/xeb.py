"""Cross-entropy metrics: XED and linear XEB fidelity.

* Cross-entropy difference (XED, Boixo et al. 2018) is the paper's QAOA
  metric (Figures 9b, 10b, 10e): it compares the cross entropy of the
  measured distribution against the ideal one, normalised so a perfect
  execution scores 1 and a completely depolarised one scores 0.
* Linear cross-entropy benchmarking (XEB) fidelity is the paper's
  Fermi-Hubbard metric (Figures 10d, 10f):
  ``F = 2^n * sum_x p_measured(x) * p_ideal(x) - 1``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.metrics.distributions import (
    cross_entropy,
    uniform_distribution,
    validate_distribution,
)


def cross_entropy_difference(
    measured_probabilities: Sequence[float],
    ideal_probabilities: Sequence[float],
) -> float:
    """Cross-entropy difference between a measured and an ideal distribution.

    ``XED = (H(uniform, ideal) - H(measured, ideal)) / (H(uniform, ideal) - H(ideal, ideal))``

    where ``H(p, q) = -sum_x p(x) log q(x)``.  The value is 1 when the
    measured distribution equals the ideal one and 0 when it is uniform
    (fully depolarised); noisy executions land in between.
    """
    measured = validate_distribution(measured_probabilities)
    ideal = validate_distribution(ideal_probabilities)
    num_qubits = int(round(np.log2(ideal.size)))
    uniform = uniform_distribution(num_qubits)
    h_uniform = cross_entropy(uniform, ideal)
    h_measured = cross_entropy(measured, ideal)
    h_ideal = cross_entropy(ideal, ideal)
    denominator = h_uniform - h_ideal
    if abs(denominator) < 1e-12:
        return 0.0
    return float((h_uniform - h_measured) / denominator)


def linear_xeb_fidelity(
    measured_probabilities: Sequence[float],
    ideal_probabilities: Sequence[float],
) -> float:
    """Linear cross-entropy benchmarking fidelity.

    ``F = D * sum_x p_measured(x) p_ideal(x) - 1`` with ``D = 2^n``.  A
    perfect execution of a Porter-Thomas-distributed circuit gives ~1; a
    fully depolarised execution gives 0.  Values are clipped to ``[-1, +inf)``
    only by the formula itself, never post-hoc.
    """
    measured = validate_distribution(measured_probabilities)
    ideal = validate_distribution(ideal_probabilities)
    dim = ideal.size
    return float(dim * np.sum(measured * ideal) - 1.0)


def normalized_linear_xeb_fidelity(
    measured_probabilities: Sequence[float],
    ideal_probabilities: Sequence[float],
) -> float:
    """Linear XEB normalised by the ideal circuit's own XEB value.

    For structured (non-Porter-Thomas) circuits such as the Fermi-Hubbard
    Trotter step, the raw linear XEB of even a perfect execution differs
    from 1; dividing by the ideal self-XEB restores the "1 = perfect,
    0 = depolarised" scale used to read Figure 10f.
    """
    ideal_self = linear_xeb_fidelity(ideal_probabilities, ideal_probabilities)
    if abs(ideal_self) < 1e-12:
        return 0.0
    return float(
        linear_xeb_fidelity(measured_probabilities, ideal_probabilities) / ideal_self
    )
