"""Heavy Output Probability (HOP), the Quantum Volume metric.

For each QV circuit the *heavy outputs* are the basis states whose ideal
probability exceeds the median ideal probability.  The HOP of a noisy
execution is the total measured probability mass on the heavy set; an
ensemble average above 2/3 (with statistical confidence) certifies the
corresponding quantum volume (Cross et al. 2019, used in Figures 7, 9a
and 10a of the paper).
"""

from __future__ import annotations

from typing import Sequence, Set

import numpy as np

from repro.metrics.distributions import validate_distribution


def heavy_output_set(ideal_probabilities: Sequence[float]) -> Set[int]:
    """Indices of outcomes whose ideal probability is above the median."""
    ideal = validate_distribution(ideal_probabilities)
    median = float(np.median(ideal))
    return {int(index) for index, value in enumerate(ideal) if value > median}


def heavy_output_probability(
    measured_probabilities: Sequence[float],
    ideal_probabilities: Sequence[float],
) -> float:
    """Probability mass the measured distribution places on the heavy set."""
    measured = validate_distribution(measured_probabilities)
    heavy = heavy_output_set(ideal_probabilities)
    return float(sum(measured[index] for index in heavy))


def ideal_heavy_output_probability(ideal_probabilities: Sequence[float]) -> float:
    """HOP of a perfect execution (asymptotically ~0.85 for random circuits)."""
    return heavy_output_probability(ideal_probabilities, ideal_probabilities)


def passes_quantum_volume_threshold(hops: Sequence[float], threshold: float = 2.0 / 3.0) -> bool:
    """True when the ensemble-average HOP exceeds the quantum-volume threshold."""
    if len(hops) == 0:
        raise ValueError("need at least one HOP value")
    return bool(np.mean(hops) > threshold)
