"""Quantum circuit intermediate representation.

A :class:`QuantumCircuit` is an ordered list of :class:`Operation` objects
(a gate applied to a tuple of qubit indices).  The IR is intentionally
simple: the compiler passes (:mod:`repro.compiler`), NuOp
(:mod:`repro.core`) and the simulators (:mod:`repro.simulators`) all
iterate over operations directly.

Qubit ordering convention: qubit 0 is the most significant bit of a basis
state index, i.e. the state ``|q0 q1 ... q_{n-1}>`` has integer index
``sum(q_k * 2**(n-1-k))``.  This matches :func:`repro.gates.unitary.embed_unitary`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits import gate as gate_module
from repro.circuits.gate import Gate
from repro.gates.unitary import embed_unitary


@dataclass(frozen=True)
class Operation:
    """A gate applied to specific qubits of a circuit."""

    gate: Gate
    qubits: Tuple[int, ...]

    def __post_init__(self) -> None:
        qubits = tuple(int(q) for q in self.qubits)
        if len(qubits) != self.gate.num_qubits:
            raise ValueError(
                f"gate {self.gate.name!r} acts on {self.gate.num_qubits} qubits, "
                f"got {len(qubits)} indices"
            )
        if len(set(qubits)) != len(qubits):
            raise ValueError("operation qubits must be distinct")
        if any(q < 0 for q in qubits):
            raise ValueError("qubit indices must be non-negative")
        object.__setattr__(self, "qubits", qubits)

    @property
    def is_two_qubit(self) -> bool:
        """True when the operation involves exactly two qubits."""
        return len(self.qubits) == 2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.gate.name}{self.gate.params or ''} @ {self.qubits}"


class QuantumCircuit:
    """An ordered sequence of gate operations on ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit"):
        if num_qubits < 1:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._operations: List[Operation] = []

    # -- construction -------------------------------------------------------

    def append(self, gate: Gate, qubits: Sequence[int]) -> "QuantumCircuit":
        """Append ``gate`` acting on ``qubits``; returns ``self`` for chaining."""
        operation = Operation(gate, tuple(qubits))
        if any(q >= self.num_qubits for q in operation.qubits):
            raise ValueError(
                f"operation on qubits {operation.qubits} exceeds circuit size "
                f"{self.num_qubits}"
            )
        self._operations.append(operation)
        return self

    def append_operation(self, operation: Operation) -> "QuantumCircuit":
        """Append a pre-built operation."""
        return self.append(operation.gate, operation.qubits)

    def extend(self, operations: Iterable[Operation]) -> "QuantumCircuit":
        """Append every operation from ``operations``."""
        for operation in operations:
            self.append_operation(operation)
        return self

    # Convenience constructors for common gates ------------------------------

    def h(self, qubit: int) -> "QuantumCircuit":
        """Append a Hadamard gate."""
        return self.append(gate_module.named_gate("h"), [qubit])

    def x(self, qubit: int) -> "QuantumCircuit":
        """Append a Pauli-X gate."""
        return self.append(gate_module.named_gate("x"), [qubit])

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append an X rotation."""
        return self.append(gate_module.rx_gate(theta), [qubit])

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append a Y rotation."""
        return self.append(gate_module.ry_gate(theta), [qubit])

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Append a Z rotation."""
        return self.append(gate_module.rz_gate(theta), [qubit])

    def u3(self, alpha: float, beta: float, lam: float, qubit: int) -> "QuantumCircuit":
        """Append an arbitrary single-qubit rotation."""
        return self.append(gate_module.u3_gate(alpha, beta, lam), [qubit])

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        """Append a CZ gate."""
        return self.append(gate_module.named_gate("cz"), [a, b])

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Append a CNOT gate."""
        return self.append(gate_module.named_gate("cx"), [control, target])

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        """Append a SWAP gate."""
        return self.append(gate_module.named_gate("swap"), [a, b])

    def fsim(self, theta: float, phi: float, a: int, b: int) -> "QuantumCircuit":
        """Append an fSim gate."""
        return self.append(gate_module.fsim_gate(theta, phi), [a, b])

    def xy(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        """Append an XY gate."""
        return self.append(gate_module.xy_gate(theta), [a, b])

    def rzz(self, beta: float, a: int, b: int) -> "QuantumCircuit":
        """Append a ZZ interaction."""
        return self.append(gate_module.rzz_gate(beta), [a, b])

    def cphase(self, phi: float, a: int, b: int) -> "QuantumCircuit":
        """Append a controlled-phase gate."""
        return self.append(gate_module.cphase_gate(phi), [a, b])

    def unitary(self, matrix: np.ndarray, qubits: Sequence[int], name: str = "unitary") -> "QuantumCircuit":
        """Append an arbitrary unitary as a single operation."""
        return self.append(gate_module.unitary_gate(matrix, name=name), qubits)

    # -- inspection ----------------------------------------------------------

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """Immutable view of the operation list."""
        return tuple(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations)

    def __len__(self) -> int:
        return len(self._operations)

    def count_ops(self) -> Dict[str, int]:
        """Histogram of gate names."""
        counts: Dict[str, int] = {}
        for operation in self._operations:
            counts[operation.gate.name] = counts.get(operation.gate.name, 0) + 1
        return counts

    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit operations; the paper's primary instruction-count metric."""
        return sum(1 for operation in self._operations if operation.is_two_qubit)

    def num_single_qubit_gates(self) -> int:
        """Number of single-qubit operations."""
        return sum(1 for operation in self._operations if len(operation.qubits) == 1)

    def two_qubit_operations(self) -> List[Operation]:
        """List of the two-qubit operations, in circuit order."""
        return [operation for operation in self._operations if operation.is_two_qubit]

    def depth(self) -> int:
        """Circuit depth counting every gate as one time step."""
        frontier = [0] * self.num_qubits
        for operation in self._operations:
            level = max(frontier[q] for q in operation.qubits) + 1
            for q in operation.qubits:
                frontier[q] = level
        return max(frontier) if frontier else 0

    def two_qubit_depth(self) -> int:
        """Circuit depth counting only two-qubit gates."""
        frontier = [0] * self.num_qubits
        for operation in self._operations:
            if not operation.is_two_qubit:
                continue
            level = max(frontier[q] for q in operation.qubits) + 1
            for q in operation.qubits:
                frontier[q] = level
        return max(frontier) if frontier else 0

    def active_qubits(self) -> List[int]:
        """Sorted list of qubits touched by at least one operation."""
        touched = {q for operation in self._operations for q in operation.qubits}
        return sorted(touched)

    # -- transformation ------------------------------------------------------

    def copy(self) -> "QuantumCircuit":
        """Shallow copy (operations are immutable, so this is safe)."""
        clone = QuantumCircuit(self.num_qubits, name=self.name)
        clone._operations = list(self._operations)
        return clone

    def inverse(self) -> "QuantumCircuit":
        """Return the adjoint circuit."""
        inverted = QuantumCircuit(self.num_qubits, name=f"{self.name}_dg")
        for operation in reversed(self._operations):
            inverted.append(operation.gate.inverse(), operation.qubits)
        return inverted

    def compose(self, other: "QuantumCircuit", qubits: Optional[Sequence[int]] = None) -> "QuantumCircuit":
        """Return a new circuit equal to ``self`` followed by ``other``.

        ``qubits`` maps the other circuit's qubit ``i`` onto ``qubits[i]`` of
        this circuit (identity mapping by default).
        """
        mapping = list(qubits) if qubits is not None else list(range(other.num_qubits))
        if len(mapping) != other.num_qubits:
            raise ValueError("qubit mapping length must match the other circuit size")
        if any(q < 0 or q >= self.num_qubits for q in mapping):
            raise ValueError("qubit mapping exceeds this circuit's size")
        combined = self.copy()
        for operation in other:
            combined.append(operation.gate, [mapping[q] for q in operation.qubits])
        return combined

    def remap_qubits(self, mapping: Dict[int, int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Return a copy with every qubit ``q`` relabelled to ``mapping[q]``."""
        size = num_qubits if num_qubits is not None else self.num_qubits
        remapped = QuantumCircuit(size, name=self.name)
        for operation in self._operations:
            remapped.append(operation.gate, [mapping[q] for q in operation.qubits])
        return remapped

    def map_operations(
        self, function: Callable[[Operation], Iterable[Operation]]
    ) -> "QuantumCircuit":
        """Return a new circuit with each operation replaced by ``function(op)``."""
        result = QuantumCircuit(self.num_qubits, name=self.name)
        for operation in self._operations:
            for replacement in function(operation):
                result.append_operation(replacement)
        return result

    # -- linear algebra ------------------------------------------------------

    def to_unitary(self) -> np.ndarray:
        """Return the full circuit unitary (small circuits only).

        The cost is exponential in qubit count; a guard refuses circuits
        with more than 10 qubits to avoid accidental memory blow-ups.
        """
        if self.num_qubits > 10:
            raise ValueError("to_unitary is limited to circuits with <= 10 qubits")
        dim = 2**self.num_qubits
        unitary = np.eye(dim, dtype=complex)
        for operation in self._operations:
            full = embed_unitary(operation.gate.matrix, operation.qubits, self.num_qubits)
            unitary = full @ unitary
        return unitary

    # -- rendering -----------------------------------------------------------

    def to_text(self) -> str:
        """One-line-per-operation text rendering (useful in tests and docs)."""
        lines = [f"{self.name}: {self.num_qubits} qubits, {len(self)} ops"]
        for operation in self._operations:
            params = ""
            if operation.gate.params:
                params = "(" + ", ".join(f"{p:.4g}" for p in operation.gate.params) + ")"
            lines.append(f"  {operation.gate.name}{params} {list(operation.qubits)}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"ops={len(self._operations)})"
        )
