"""Circuit intermediate representation.

Public API:

* :class:`repro.circuits.Gate` / gate constructor helpers,
* :class:`repro.circuits.Operation` and :class:`repro.circuits.QuantumCircuit`,
* moment/DAG analysis (:func:`as_moments`, :class:`CircuitDAG`),
* text serialisation (:mod:`repro.circuits.qasm`).
"""

from repro.circuits.gate import (
    Gate,
    named_gate,
    u3_gate,
    rx_gate,
    ry_gate,
    rz_gate,
    fsim_gate,
    xy_gate,
    cphase_gate,
    rzz_gate,
    xx_plus_yy_gate,
    unitary_gate,
    gate_from_spec,
)
from repro.circuits.circuit import Operation, QuantumCircuit
from repro.circuits.dag import (
    CircuitDAG,
    as_moments,
    moments_to_circuit,
    interaction_pairs,
)
from repro.circuits import qasm

__all__ = [
    "Gate",
    "named_gate",
    "u3_gate",
    "rx_gate",
    "ry_gate",
    "rz_gate",
    "fsim_gate",
    "xy_gate",
    "cphase_gate",
    "rzz_gate",
    "xx_plus_yy_gate",
    "unitary_gate",
    "gate_from_spec",
    "Operation",
    "QuantumCircuit",
    "CircuitDAG",
    "as_moments",
    "moments_to_circuit",
    "interaction_pairs",
    "qasm",
]
