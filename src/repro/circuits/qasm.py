"""A minimal textual serialisation for circuits.

The format is a simplified OpenQASM-2 dialect: one operation per line,
``name(params) q[i], q[j];``.  Gates whose matrices cannot be rebuilt from
``(name, params)`` (i.e. raw ``unitary`` gates) are serialised with their
matrix entries so round-tripping is loss-free.

The serialiser exists for debuggability, golden-file tests and examples; it
is not a full OpenQASM implementation.
"""

from __future__ import annotations

import json
from typing import List

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import Gate, gate_from_spec


_REBUILDABLE = {
    "u3",
    "rx",
    "ry",
    "rz",
    "fsim",
    "xy",
    "cphase",
    "rzz",
    "xx_plus_yy",
    "i",
    "id",
    "x",
    "y",
    "z",
    "h",
    "s",
    "sdg",
    "t",
    "tdg",
    "sx",
    "cz",
    "cnot",
    "cx",
    "swap",
    "iswap",
    "sqrt_iswap",
    "sqiswap",
    "syc",
}


def dumps(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to text."""
    lines: List[str] = [
        "REPROQASM 1.0;",
        f"qubits {circuit.num_qubits};",
        f"name {circuit.name};",
    ]
    for operation in circuit:
        gate = operation.gate
        qubits = ", ".join(f"q[{q}]" for q in operation.qubits)
        if gate.name in _REBUILDABLE:
            if gate.params:
                params = ", ".join(repr(p) for p in gate.params)
                lines.append(f"{gate.name}({params}) {qubits};")
            else:
                lines.append(f"{gate.name} {qubits};")
        else:
            payload = json.dumps(
                {
                    "re": np.real(gate.matrix).tolist(),
                    "im": np.imag(gate.matrix).tolist(),
                }
            )
            lines.append(f"unitary<{payload}> {qubits};")
    return "\n".join(lines) + "\n"


def loads(text: str) -> QuantumCircuit:
    """Parse text produced by :func:`dumps` back into a circuit."""
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines or not lines[0].startswith("REPROQASM"):
        raise ValueError("missing REPROQASM header")
    num_qubits = None
    name = "circuit"
    body_start = 1
    for index, line in enumerate(lines[1:], start=1):
        if line.startswith("qubits "):
            num_qubits = int(line[len("qubits "):].rstrip(";"))
        elif line.startswith("name "):
            name = line[len("name "):].rstrip(";")
        else:
            body_start = index
            break
        body_start = index + 1
    if num_qubits is None:
        raise ValueError("missing qubit count declaration")
    circuit = QuantumCircuit(num_qubits, name=name)
    for line in lines[body_start:]:
        _parse_operation_line(line, circuit)
    return circuit


def _parse_qubits(qubit_text: str) -> List[int]:
    return [
        int(token.strip()[2:-1])
        for token in qubit_text.split(",")
        if token.strip()
    ]


def _parse_operation_line(line: str, circuit: QuantumCircuit) -> None:
    line = line.rstrip(";").strip()
    if not line:
        return
    if line.startswith("unitary<"):
        close = line.rindex(">")
        payload = json.loads(line[len("unitary<"):close])
        matrix = np.array(payload["re"]) + 1j * np.array(payload["im"])
        circuit.append(Gate("unitary", matrix), _parse_qubits(line[close + 1:]))
        return
    if "(" in line:
        close = line.index(")")
        head = line[: close + 1]
        qubit_text = line[close + 1:]
        gate_name, _, param_text = head.partition("(")
        params = tuple(float(p) for p in param_text.rstrip(")").split(","))
    else:
        head, _, qubit_text = line.partition(" ")
        gate_name, params = head, ()
    circuit.append(gate_from_spec(gate_name.strip(), params), _parse_qubits(qubit_text))
