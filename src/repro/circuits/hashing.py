"""Content hashing for circuits, gates and instruction sets.

The experiment engine (:mod:`repro.experiments.engine`) and both
compilation cache tiers (:mod:`repro.core.pipeline` in memory,
:mod:`repro.caching.disk` on disk -- which additionally folds whole key
tuples through :func:`hash_scalars`, under a namespace label, to name its
entry files) need stable, cheap keys for
"have I seen this exact compilation problem before?".  Python's built-in
``hash`` is unsuitable: :class:`~repro.circuits.circuit.QuantumCircuit` is
mutable, gate matrices are numpy arrays, and hash randomisation would make
keys differ between processes.  This module derives SHA-256 digests from
the *content* that determines compilation and simulation behaviour:

* a gate hashes its unitary matrix (the authoritative representation --
  two gates with equal matrices but different construction paths collide
  on purpose) plus its type key,
* a circuit hashes its qubit count and the ordered operation list,
* an instruction set hashes its member gate types (or continuous family).

Digests are hex strings, safe to combine into tuple cache keys and to
compare across worker processes.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.circuits.circuit import QuantumCircuit
    from repro.circuits.gate import Gate
    from repro.core.instruction_sets import InstructionSet

_FLOAT_DECIMALS = 12
"""Floats are rounded before hashing so keys built from equal values match
even when one copy went through a float32 round-trip or a ``0.0`` vs
``-0.0`` normalisation."""


def _update_with_array(digest: "hashlib._Hash", array: np.ndarray) -> None:
    """Feed a numpy array into a digest in a dtype/shape-stable way."""
    canonical = np.ascontiguousarray(np.round(np.asarray(array, dtype=complex), _FLOAT_DECIMALS))
    canonical = canonical + 0.0  # collapse -0.0 to +0.0 in both components
    digest.update(str(canonical.shape).encode())
    digest.update(canonical.tobytes())


def _update_with_scalars(digest: "hashlib._Hash", values: Iterable[object]) -> None:
    """Feed a flat sequence of simple scalars (str/int/float/bool/None) into a digest."""
    for value in values:
        if isinstance(value, float):
            rendered = f"f:{round(value, _FLOAT_DECIMALS)!r}"
        else:
            rendered = f"{type(value).__name__}:{value!r}"
        digest.update(rendered.encode())
        digest.update(b"\x1f")


def update_digest_scalars(digest: "hashlib._Hash", *values: object) -> None:
    """Feed simple scalars into an externally managed digest.

    Public counterpart of the module-private helpers, for callers that
    fingerprint large composite objects (e.g. precompiled noise programs)
    incrementally instead of concatenating per-component hex digests.
    """
    _update_with_scalars(digest, values)


def update_digest_array(digest: "hashlib._Hash", array: np.ndarray) -> None:
    """Feed a numpy array into an externally managed digest (dtype/shape stable)."""
    _update_with_array(digest, array)


def hash_scalars(*values: object) -> str:
    """Digest of a flat sequence of simple scalars (helper for composite keys)."""
    digest = hashlib.sha256()
    _update_with_scalars(digest, values)
    return digest.hexdigest()


def hash_mapping(mapping: Mapping[object, object]) -> str:
    """Order-insensitive digest of a mapping with scalar keys and values.

    Nested mappings (e.g. per-edge, per-gate-type error-rate tables) are
    supported one level deep, which covers every calibration table in the
    noise model.
    """
    digest = hashlib.sha256()
    for key in sorted(mapping, key=repr):
        value = mapping[key]
        _update_with_scalars(digest, (key,))
        if isinstance(value, Mapping):
            digest.update(hash_mapping(value).encode())
        else:
            _update_with_scalars(digest, (value,))
    return digest.hexdigest()


def gate_fingerprint(gate: "Gate") -> str:
    """Content digest of a gate: its type key and unitary matrix."""
    digest = hashlib.sha256()
    _update_with_scalars(digest, (gate.type_key,))
    _update_with_array(digest, gate.matrix)
    return digest.hexdigest()


def circuit_fingerprint(circuit: "QuantumCircuit") -> str:
    """Content digest of a circuit.

    Covers the qubit count and the ordered operation list (gate matrices +
    qubit tuples).  The circuit *name* is deliberately excluded: two
    circuits with identical operations compile identically, and experiment
    drivers routinely rename circuits per instruction set.
    """
    digest = hashlib.sha256()
    _update_with_scalars(digest, ("circuit", circuit.num_qubits, len(circuit)))
    for operation in circuit:
        _update_with_scalars(digest, operation.qubits)
        _update_with_scalars(digest, (operation.gate.type_key,))
        _update_with_array(digest, operation.gate.matrix)
    return digest.hexdigest()


def instruction_set_fingerprint(instruction_set: "InstructionSet") -> str:
    """Content digest of an instruction set.

    Discrete sets hash their member gate types (label, calibration key and
    unitary); continuous sets hash the family name.  The set name is
    included because the compiled circuit records it and error-scale
    bookkeeping is keyed by it (the scaled ``FullfSim-2x`` variants share
    gate content but must not share cache entries with ``FullfSim`` when
    compiled at a different error scale -- the scale itself is part of the
    compilation cache key, and the name disambiguates result labelling).
    """
    digest = hashlib.sha256()
    _update_with_scalars(
        digest,
        ("instruction_set", instruction_set.name, instruction_set.vendor,
         instruction_set.continuous_family),
    )
    for gate_type in instruction_set.gate_types:
        _update_with_scalars(digest, (gate_type.label, gate_type.type_key))
        _update_with_array(digest, gate_type.gate.matrix)
    return digest.hexdigest()


ArrayLike = Union[Sequence[float], np.ndarray]


def array_fingerprint(array: ArrayLike) -> str:
    """Digest of a bare numeric array (used for ideal-distribution caching)."""
    digest = hashlib.sha256()
    _update_with_array(digest, np.asarray(array))
    return digest.hexdigest()
