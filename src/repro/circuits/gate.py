"""Gate objects used by the circuit IR.

A :class:`Gate` couples a name, an optional tuple of real parameters and a
concrete unitary matrix.  The library deliberately keeps gates concrete
(every gate carries its matrix) because NuOp, the simulators and the noise
models all operate on matrices; there is no symbolic parameter machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.gates import standard as standard_gates
from repro.gates import parametric
from repro.gates.unitary import allclose_up_to_global_phase, is_unitary


@dataclass(frozen=True)
class Gate:
    """A concrete quantum gate.

    Attributes
    ----------
    name:
        Human-readable gate name (e.g. ``"cz"``, ``"fsim"``, ``"u3"``).
    matrix:
        The gate unitary, stored as an immutable numpy array.
    params:
        Tuple of real parameters the gate was constructed from (may be
        empty for fixed gates).  Parameters are informational; the matrix
        is authoritative.
    """

    name: str
    matrix: np.ndarray
    params: Tuple[float, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=complex)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("gate matrix must be square")
        size = matrix.shape[0]
        if size & (size - 1) != 0 or size < 2:
            raise ValueError("gate dimension must be a power of two >= 2")
        if not is_unitary(matrix, atol=1e-7):
            raise ValueError(f"gate {self.name!r} matrix is not unitary")
        matrix.setflags(write=False)
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return int(round(math.log2(self.matrix.shape[0])))

    @property
    def type_key(self) -> str:
        """Canonical string identifying the gate *type* (name + rounded params).

        Calibration data and noise models are keyed by gate type: two fSim
        gates with the same angles share a key (and therefore an error
        rate), while different angles give different keys.  Parameters are
        rounded to 6 decimals so keys built from equal floats match.
        """
        if not self.params:
            return self.name
        rendered = ",".join(f"{p:.6f}" for p in self.params)
        return f"{self.name}({rendered})"

    @property
    def is_two_qubit(self) -> bool:
        """True when the gate acts on exactly two qubits."""
        return self.num_qubits == 2

    def inverse(self) -> "Gate":
        """Return the adjoint gate."""
        return Gate(
            name=f"{self.name}_dg",
            matrix=np.array(self.matrix).conj().T,
            params=self.params,
        )

    def approx_equal(self, other: "Gate", atol: float = 1e-7) -> bool:
        """Return True if the two gates have the same unitary up to global phase."""
        return allclose_up_to_global_phase(self.matrix, other.matrix, atol=atol)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            params = ", ".join(f"{p:.4g}" for p in self.params)
            return f"Gate({self.name}({params}), {self.num_qubits}q)"
        return f"Gate({self.name}, {self.num_qubits}q)"


# ---------------------------------------------------------------------------
# Gate constructors
# ---------------------------------------------------------------------------


def named_gate(name: str) -> Gate:
    """Construct a fixed gate from :data:`repro.gates.standard.STANDARD_GATES`."""
    return Gate(name=name.lower(), matrix=standard_gates.standard_gate(name))


def u3_gate(alpha: float, beta: float, lam: float) -> Gate:
    """Arbitrary single-qubit rotation ``U3`` (paper footnote 1)."""
    return Gate("u3", parametric.u3(alpha, beta, lam), (alpha, beta, lam))


def rx_gate(theta: float) -> Gate:
    """Rotation about X."""
    return Gate("rx", parametric.rx(theta), (theta,))


def ry_gate(theta: float) -> Gate:
    """Rotation about Y."""
    return Gate("ry", parametric.ry(theta), (theta,))


def rz_gate(theta: float) -> Gate:
    """Rotation about Z."""
    return Gate("rz", parametric.rz(theta), (theta,))


def fsim_gate(theta: float, phi: float) -> Gate:
    """Google ``fSim(theta, phi)`` gate."""
    return Gate("fsim", parametric.fsim(theta, phi), (theta, phi))


def xy_gate(theta: float) -> Gate:
    """Rigetti ``XY(theta)`` gate."""
    return Gate("xy", parametric.xy(theta), (theta,))


def cphase_gate(phi: float) -> Gate:
    """Controlled-phase gate ``CZ(phi)``."""
    return Gate("cphase", parametric.cphase(phi), (phi,))


def rzz_gate(beta: float) -> Gate:
    """QAOA ``exp(-i beta ZZ)`` interaction."""
    return Gate("rzz", parametric.rzz(beta), (beta,))


def xx_plus_yy_gate(beta: float) -> Gate:
    """Fermi-Hubbard hopping ``exp(-i beta (XX + YY)/2)`` interaction."""
    return Gate("xx_plus_yy", parametric.rxx_plus_ryy(beta), (beta,))


def unitary_gate(matrix: np.ndarray, name: str = "unitary", params: Tuple[float, ...] = ()) -> Gate:
    """Wrap an arbitrary unitary matrix as a gate."""
    return Gate(name, np.asarray(matrix, dtype=complex), params)


def gate_from_spec(name: str, params: Optional[Tuple[float, ...]] = None) -> Gate:
    """Build a gate from a ``(name, params)`` specification.

    Recognises the standard fixed gates plus the parametric families used
    throughout the paper.  This is the inverse of the serialisation format
    used by :mod:`repro.circuits.qasm`.
    """
    params = tuple(params or ())
    key = name.lower()
    builders = {
        "u3": u3_gate,
        "rx": rx_gate,
        "ry": ry_gate,
        "rz": rz_gate,
        "fsim": fsim_gate,
        "xy": xy_gate,
        "cphase": cphase_gate,
        "rzz": rzz_gate,
        "xx_plus_yy": xx_plus_yy_gate,
    }
    if key in builders:
        return builders[key](*params)
    if key in standard_gates.STANDARD_GATES:
        if params:
            raise ValueError(f"standard gate {name!r} takes no parameters")
        return named_gate(key)
    raise ValueError(f"unknown gate specification {name!r}")
