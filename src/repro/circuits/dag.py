"""Dependency analysis of circuits: moments and a DAG view.

The compiler's scheduling pass and the duration/decoherence model both need
to know which operations can execute in parallel.  ``as_moments`` groups a
circuit's operations into ASAP (as-soon-as-possible) layers; ``CircuitDAG``
exposes explicit predecessor/successor relations built with networkx.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.circuits.circuit import Operation, QuantumCircuit


def as_moments(circuit: QuantumCircuit) -> List[List[Operation]]:
    """Group operations into ASAP layers ("moments").

    Each operation is placed in the earliest layer after all earlier
    operations that share a qubit with it.  The concatenation of layers in
    order reproduces a circuit equivalent to the input (qubit-wise order is
    preserved).
    """
    frontier: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    moments: List[List[Operation]] = []
    for operation in circuit:
        layer = max(frontier[q] for q in operation.qubits)
        while len(moments) <= layer:
            moments.append([])
        moments[layer].append(operation)
        for q in operation.qubits:
            frontier[q] = layer + 1
    return moments


def moments_to_circuit(
    moments: List[List[Operation]], num_qubits: int, name: str = "circuit"
) -> QuantumCircuit:
    """Flatten a list of moments back into a circuit."""
    circuit = QuantumCircuit(num_qubits, name=name)
    for moment in moments:
        for operation in moment:
            circuit.append_operation(operation)
    return circuit


class CircuitDAG:
    """Directed acyclic dependency graph over a circuit's operations.

    Nodes are operation indices into ``circuit.operations``; an edge
    ``i -> j`` means operation ``j`` must run after operation ``i`` because
    they share at least one qubit and ``i`` appears first.
    Only nearest dependencies are recorded (the transitive reduction),
    which is what routing and scheduling passes need.
    """

    def __init__(self, circuit: QuantumCircuit):
        self.circuit = circuit
        self.graph = nx.DiGraph()
        last_on_qubit: Dict[int, int] = {}
        for index, operation in enumerate(circuit):
            self.graph.add_node(index, operation=operation)
            for qubit in operation.qubits:
                if qubit in last_on_qubit:
                    self.graph.add_edge(last_on_qubit[qubit], index)
                last_on_qubit[qubit] = index

    def __len__(self) -> int:
        return self.graph.number_of_nodes()

    def operation(self, index: int) -> Operation:
        """Return the operation stored at node ``index``."""
        return self.graph.nodes[index]["operation"]

    def predecessors(self, index: int) -> List[int]:
        """Indices of operations that must run immediately before ``index``."""
        return sorted(self.graph.predecessors(index))

    def successors(self, index: int) -> List[int]:
        """Indices of operations that must run immediately after ``index``."""
        return sorted(self.graph.successors(index))

    def front_layer(self) -> List[int]:
        """Indices of operations with no predecessors (the executable frontier)."""
        return sorted(n for n in self.graph.nodes if self.graph.in_degree(n) == 0)

    def topological_layers(self) -> List[List[int]]:
        """Operations grouped by longest-path depth (equivalent to ASAP moments)."""
        depth: Dict[int, int] = {}
        for node in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(node))
            depth[node] = 1 + max((depth[p] for p in preds), default=-1)
        layers: List[List[int]] = []
        for node, level in depth.items():
            while len(layers) <= level:
                layers.append([])
            layers[level].append(node)
        return [sorted(layer) for layer in layers]

    def critical_path_length(self) -> int:
        """Length (in operations) of the longest dependency chain."""
        if len(self) == 0:
            return 0
        return len(self.topological_layers())

    def two_qubit_interaction_graph(self) -> nx.Graph:
        """Undirected graph of qubit pairs that interact in the circuit.

        Edge weights count how many two-qubit operations act on the pair;
        the mapping pass uses this to place frequently-interacting program
        qubits on adjacent device qubits.
        """
        graph: nx.Graph = nx.Graph()
        graph.add_nodes_from(range(self.circuit.num_qubits))
        for operation in self.circuit:
            if operation.is_two_qubit:
                a, b = operation.qubits
                weight = graph.get_edge_data(a, b, {}).get("weight", 0)
                graph.add_edge(a, b, weight=weight + 1)
        return graph


def interaction_pairs(circuit: QuantumCircuit) -> List[Tuple[int, int]]:
    """Ordered list of qubit pairs touched by two-qubit gates (with repeats)."""
    return [
        (operation.qubits[0], operation.qubits[1])
        for operation in circuit
        if operation.is_two_qubit
    ]
