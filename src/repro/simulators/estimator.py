"""Analytic fidelity estimation.

The paper estimates hardware fidelity of a decomposition as the product of
the calibrated fidelities of its gates (Section V.B, "this model has been
shown to work well in real systems").  This module applies the same model
to whole circuits, optionally including a decoherence factor from the
scheduled circuit duration.  It is used:

* by NuOp's noise-adaptive pass (through the per-gate fidelities),
* as a fast cross-check of the large Fermi-Hubbard simulations where full
  density-matrix simulation is infeasible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import as_moments
from repro.simulators.noise import average_channel_fidelity
from repro.simulators.noise_model import NoiseModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.simulators.noise_program import NoiseProgram


def circuit_gate_fidelity(
    circuit: QuantumCircuit,
    noise_model: NoiseModel,
    physical_qubits: Optional[Sequence[int]] = None,
) -> float:
    """Product of the hardware fidelities of every gate in the circuit."""
    if physical_qubits is None:
        physical_qubits = list(range(circuit.num_qubits))
    fidelity = 1.0
    for operation in circuit:
        fidelity *= noise_model.operation_fidelity(operation, physical_qubits)
    return float(fidelity)


def circuit_duration(circuit: QuantumCircuit, noise_model: NoiseModel) -> float:
    """Total scheduled duration (ns) of the circuit under ASAP scheduling."""
    total = 0.0
    for moment in as_moments(circuit):
        total += max(
            (noise_model.operation_duration(op) for op in moment), default=0.0
        )
    return float(total)


def decoherence_factor(
    circuit: QuantumCircuit,
    noise_model: NoiseModel,
    physical_qubits: Optional[Sequence[int]] = None,
) -> float:
    """Coherence-limited fidelity factor ``prod_q exp(-T / T1_q) * exp(-T / T2_q)`` style estimate.

    Each active qubit contributes ``exp(-T/T1)`` and ``exp(-T/T2)`` survival
    factors for the scheduled circuit duration ``T``; idle time is already
    included because the duration covers the whole schedule.  This is a
    standard coarse estimate used for triaging, not a replacement for the
    simulators.
    """
    if physical_qubits is None:
        physical_qubits = list(range(circuit.num_qubits))
    duration = circuit_duration(circuit, noise_model)
    factor = 1.0
    for qubit in circuit.active_qubits():
        physical = physical_qubits[qubit]
        factor *= float(np.exp(-duration / noise_model.qubit_t1(physical)))
        factor *= float(np.exp(-duration / noise_model.qubit_t2(physical)))
    return factor


def program_fidelity_estimate(program: "NoiseProgram") -> float:
    """Fidelity-product estimate of a precompiled noise program.

    The program form of the paper's model: every error channel the
    lowering recorded -- depolarizing gate noise, thermal relaxation
    during gates and idle periods -- contributes its average channel
    fidelity multiplicatively.  Unlike
    :func:`estimate_circuit_fidelity` this works from the *actual* Kraus
    operators the simulators would apply, so gate noise and decoherence
    (including idle decoherence) are covered by one uniform rule; it is
    the estimate behind the ``estimator`` simulator backend
    (:mod:`repro.simulators.backend`).
    """
    fidelity = 1.0
    for moment in program.moments:
        for operation in moment.operations:
            for channel, _ in operation.channels:
                fidelity *= average_channel_fidelity(channel)
        for channel, _ in moment.idle_channels:
            fidelity *= average_channel_fidelity(channel)
    return float(fidelity)


def estimate_circuit_fidelity(
    circuit: QuantumCircuit,
    noise_model: NoiseModel,
    physical_qubits: Optional[Sequence[int]] = None,
    include_decoherence: bool = True,
) -> float:
    """Estimated execution fidelity: gate-fidelity product times decoherence factor."""
    estimate = circuit_gate_fidelity(circuit, noise_model, physical_qubits)
    if include_decoherence:
        estimate *= decoherence_factor(circuit, noise_model, physical_qubits)
    return float(estimate)
