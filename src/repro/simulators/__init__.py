"""Simulation backends.

* :mod:`repro.simulators.statevector` -- ideal pure-state simulation.
* :mod:`repro.simulators.noise` -- Kraus channels (depolarizing, amplitude
  damping, dephasing, thermal relaxation).
* :mod:`repro.simulators.noise_model` -- calibration-driven noise model.
* :mod:`repro.simulators.density_matrix` -- exact noisy simulation.
* :mod:`repro.simulators.trajectory` -- Monte-Carlo trajectory simulation
  for larger circuits.
* :mod:`repro.simulators.sampling` -- shot sampling and readout error.
* :mod:`repro.simulators.estimator` -- analytic fidelity estimates.
"""

from repro.simulators.statevector import (
    zero_state,
    apply_gate,
    simulate_statevector,
    probabilities,
    ideal_probabilities,
    expectation_value,
    state_fidelity,
)
from repro.simulators.noise import (
    KrausChannel,
    depolarizing_channel,
    depolarizing_probability_from_error_rate,
    amplitude_damping_channel,
    phase_damping_channel,
    bit_flip_channel,
    thermal_relaxation_channel,
    compose_channels,
    expand_channel,
    average_channel_fidelity,
)
from repro.simulators.noise_model import NoiseModel
from repro.simulators.density_matrix import (
    DensityMatrixSimulator,
    DensityMatrixResult,
    apply_channel_to_rho,
)
from repro.simulators.trajectory import TrajectorySimulator
from repro.simulators.sampling import Counts, sample_counts, apply_readout_error
from repro.simulators.estimator import (
    circuit_gate_fidelity,
    circuit_duration,
    decoherence_factor,
    estimate_circuit_fidelity,
)

__all__ = [
    "zero_state",
    "apply_gate",
    "simulate_statevector",
    "probabilities",
    "ideal_probabilities",
    "expectation_value",
    "state_fidelity",
    "KrausChannel",
    "depolarizing_channel",
    "depolarizing_probability_from_error_rate",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "bit_flip_channel",
    "thermal_relaxation_channel",
    "compose_channels",
    "expand_channel",
    "average_channel_fidelity",
    "NoiseModel",
    "DensityMatrixSimulator",
    "DensityMatrixResult",
    "apply_channel_to_rho",
    "TrajectorySimulator",
    "Counts",
    "sample_counts",
    "apply_readout_error",
    "circuit_gate_fidelity",
    "circuit_duration",
    "decoherence_factor",
    "estimate_circuit_fidelity",
]
