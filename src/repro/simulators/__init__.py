"""Simulation backends.

* :mod:`repro.simulators.statevector` -- ideal pure-state simulation.
* :mod:`repro.simulators.noise` -- Kraus channels (depolarizing, amplitude
  damping, dephasing, thermal relaxation).
* :mod:`repro.simulators.noise_model` -- calibration-driven noise model.
* :mod:`repro.simulators.noise_program` -- circuits lowered once into
  per-moment gate/channel/idle programs shared by every backend.
* :mod:`repro.simulators.backend` -- the :class:`SimulatorBackend`
  protocol and the named backend registry (``density-matrix``,
  ``trajectory``, ``estimator``, ``auto``), plus the
  ``REPRO_SIM_KERNEL`` fused/reference kernel selector.
* :mod:`repro.simulators.superop` -- fused superoperator lowering and
  the default simulation kernels (one contraction per channel group).
* :mod:`repro.simulators.density_matrix` -- exact noisy simulation
  (the pinned reference kernel).
* :mod:`repro.simulators.trajectory` -- Monte-Carlo trajectory simulation
  for larger circuits (the pinned reference kernel).
* :mod:`repro.simulators.sampling` -- shot sampling and readout error.
* :mod:`repro.simulators.estimator` -- analytic fidelity estimates.
"""

from repro.simulators.statevector import (
    zero_state,
    apply_gate,
    simulate_statevector,
    probabilities,
    ideal_probabilities,
    expectation_value,
    state_fidelity,
)
from repro.simulators.noise import (
    KrausChannel,
    depolarizing_channel,
    depolarizing_probability_from_error_rate,
    amplitude_damping_channel,
    phase_damping_channel,
    bit_flip_channel,
    thermal_relaxation_channel,
    compose_channels,
    expand_channel,
    average_channel_fidelity,
)
from repro.simulators.noise_model import NoiseModel
from repro.simulators.noise_program import (
    NoiseProgram,
    ProgramMoment,
    ProgramOperation,
    build_noise_program,
    clear_noise_program_cache,
    noise_program_cache_stats,
    noise_program_for,
)
from repro.simulators.density_matrix import (
    MAX_DENSITY_MATRIX_QUBITS,
    DensityMatrixSimulator,
    DensityMatrixResult,
    apply_channel_to_rho,
    apply_program_to_density_matrix,
)
from repro.simulators.superop import (
    SuperopProgram,
    TrajectoryPlan,
    apply_superop_program,
    apply_trajectory_plan_to_state,
    apply_trajectory_plan_to_states,
    channel_superoperator,
    kraus_to_superoperator,
    lower_noise_program,
    superop_program_for,
    superoperator_to_choi,
    trajectory_plan_for,
    unitary_superoperator,
)
from repro.simulators.trajectory import (
    TrajectorySimulator,
    apply_program_to_state,
    apply_program_to_states,
)
from repro.simulators.backend import (
    SimulatorBackend,
    active_simulation_kernel,
    available_backends,
    backend_invocation_counts,
    register_backend,
    reset_backend_invocation_counts,
    resolve_backend,
)
from repro.simulators.sampling import Counts, sample_counts, apply_readout_error
from repro.simulators.estimator import (
    circuit_gate_fidelity,
    circuit_duration,
    decoherence_factor,
    estimate_circuit_fidelity,
    program_fidelity_estimate,
)

__all__ = [
    "zero_state",
    "apply_gate",
    "simulate_statevector",
    "probabilities",
    "ideal_probabilities",
    "expectation_value",
    "state_fidelity",
    "KrausChannel",
    "depolarizing_channel",
    "depolarizing_probability_from_error_rate",
    "amplitude_damping_channel",
    "phase_damping_channel",
    "bit_flip_channel",
    "thermal_relaxation_channel",
    "compose_channels",
    "expand_channel",
    "average_channel_fidelity",
    "NoiseModel",
    "NoiseProgram",
    "ProgramMoment",
    "ProgramOperation",
    "build_noise_program",
    "clear_noise_program_cache",
    "noise_program_cache_stats",
    "noise_program_for",
    "MAX_DENSITY_MATRIX_QUBITS",
    "DensityMatrixSimulator",
    "DensityMatrixResult",
    "apply_channel_to_rho",
    "apply_program_to_density_matrix",
    "SuperopProgram",
    "TrajectoryPlan",
    "apply_superop_program",
    "apply_trajectory_plan_to_state",
    "apply_trajectory_plan_to_states",
    "channel_superoperator",
    "kraus_to_superoperator",
    "lower_noise_program",
    "superop_program_for",
    "superoperator_to_choi",
    "trajectory_plan_for",
    "unitary_superoperator",
    "TrajectorySimulator",
    "apply_program_to_state",
    "apply_program_to_states",
    "SimulatorBackend",
    "active_simulation_kernel",
    "available_backends",
    "backend_invocation_counts",
    "register_backend",
    "reset_backend_invocation_counts",
    "resolve_backend",
    "Counts",
    "sample_counts",
    "apply_readout_error",
    "circuit_gate_fidelity",
    "circuit_duration",
    "decoherence_factor",
    "estimate_circuit_fidelity",
    "program_fidelity_estimate",
]
