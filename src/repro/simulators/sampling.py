"""Measurement sampling and readout-error modelling.

The simulators produce output probability distributions; this module turns
them into shot counts, optionally applying per-qubit readout (measurement
bit-flip) errors, and provides the small ``Counts`` container used by the
metrics module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Sequence

import numpy as np


@dataclass
class Counts:
    """Histogram of measured bitstrings.

    Keys are integer basis-state indices (qubit 0 = most significant bit),
    matching the ordering of probability vectors everywhere else in the
    library.
    """

    num_qubits: int
    counts: Dict[int, int] = field(default_factory=dict)

    @property
    def shots(self) -> int:
        """Total number of shots recorded."""
        return sum(self.counts.values())

    def probability(self, outcome: int) -> float:
        """Empirical probability of ``outcome``."""
        if self.shots == 0:
            return 0.0
        return self.counts.get(int(outcome), 0) / self.shots

    def to_probability_vector(self) -> np.ndarray:
        """Dense empirical distribution over all ``2^n`` outcomes."""
        vector = np.zeros(2**self.num_qubits)
        for outcome, count in self.counts.items():
            vector[outcome] = count
        total = vector.sum()
        return vector / total if total > 0 else vector

    def to_bitstring_dict(self) -> Dict[str, int]:
        """Counts keyed by binary strings (``"010"`` style, qubit 0 first)."""
        return {
            format(outcome, f"0{self.num_qubits}b"): count
            for outcome, count in sorted(self.counts.items())
        }

    def most_common(self, n: int = 1) -> Sequence[int]:
        """The ``n`` most frequently observed outcomes."""
        ranked = sorted(self.counts.items(), key=lambda item: (-item[1], item[0]))
        return [outcome for outcome, _ in ranked[:n]]

    def __iter__(self) -> Iterator[int]:
        return iter(self.counts)

    def __getitem__(self, outcome: int) -> int:
        return self.counts.get(int(outcome), 0)


def apply_readout_error(
    probabilities: np.ndarray,
    readout_error: Sequence[float],
) -> np.ndarray:
    """Apply independent per-qubit symmetric readout bit-flips to a distribution.

    ``readout_error[q]`` is the probability that qubit ``q`` is read out
    flipped.  The confusion is applied qubit-by-qubit so the cost is
    ``O(n * 2^n)`` instead of building the full ``2^n x 2^n`` matrix.
    """
    probabilities = np.asarray(probabilities, dtype=float).copy()
    num_qubits = int(round(np.log2(probabilities.size)))
    if len(readout_error) != num_qubits:
        raise ValueError("readout_error must provide one probability per qubit")
    tensor = probabilities.reshape((2,) * num_qubits)
    for qubit, p_flip in enumerate(readout_error):
        if p_flip <= 0:
            continue
        confusion = np.array([[1 - p_flip, p_flip], [p_flip, 1 - p_flip]])
        tensor = np.tensordot(confusion, tensor, axes=([1], [qubit]))
        order = list(range(1, qubit + 1)) + [0] + list(range(qubit + 1, num_qubits))
        tensor = np.transpose(tensor, order)
    return tensor.reshape(-1)


def sample_counts(
    probabilities: np.ndarray,
    shots: int,
    rng: Optional[np.random.Generator] = None,
    readout_error: Optional[Sequence[float]] = None,
) -> Counts:
    """Sample ``shots`` measurement outcomes from a probability distribution."""
    rng = np.random.default_rng(rng)
    probabilities = np.asarray(probabilities, dtype=float)
    num_qubits = int(round(np.log2(probabilities.size)))
    if readout_error is not None:
        probabilities = apply_readout_error(probabilities, readout_error)
    probabilities = np.clip(probabilities, 0.0, None)
    probabilities = probabilities / probabilities.sum()
    outcomes = rng.choice(probabilities.size, size=int(shots), p=probabilities)
    counts: Dict[int, int] = {}
    for outcome in outcomes:
        counts[int(outcome)] = counts.get(int(outcome), 0) + 1
    return Counts(num_qubits=num_qubits, counts=counts)
