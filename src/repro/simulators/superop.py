"""Fused superoperator simulation kernels.

The reference replay kernels (:func:`~repro.simulators.density_matrix.apply_program_to_density_matrix`,
:func:`~repro.simulators.trajectory.apply_program_to_states`) pay one
``tensordot`` + ``transpose`` pair per Kraus operator per branch: a
two-qubit gate followed by its 16-operator depolarizing channel and two
thermal-relaxation channels costs ~40 numpy dispatches on the density
matrix.  Density-matrix packages such as ``quantumsim`` (and Cirq's
``kraus_to_superoperator`` machinery) avoid that by lowering noise to
*superoperators* -- linear maps on vectorised density matrices -- and
applying each one in a single contraction.  This module is that lowering
for :class:`~repro.simulators.noise_program.NoiseProgram`:

* **Density-matrix path** -- :func:`lower_noise_program` derives a
  :class:`SuperopProgram`: per operation, the gate conjugation
  ``U . rho . U^dagger`` composed with every trailing Kraus channel on the
  operation's qubit support into one ``4^k x 4^k`` superoperator; a
  moment's idle channels become per-qubit ``4 x 4`` superoperators; and
  runs of adjacent same-qubit(s) superoperators are merged across moment
  boundaries (superoperators on disjoint qubits commute, so folding a
  group into the *last* group that touched the same qubits is exact).
  :func:`apply_superop_program` replays the result as **one**
  ``tensordot`` + ``transpose`` per fused group over the ``(2,) * 2n``
  rho tensor, with all axis-permutation plans precomputed at lowering
  time (no ``list.index`` loops per application).

* **Trajectory path** -- pure states cannot absorb a channel into a
  single linear map (branch selection is stochastic), so
  :func:`trajectory_plan_for` instead pre-stacks every channel into a
  contiguous ``(m, 2^k, 2^k)`` operator array with cached
  reshape/transpose plans: all ``m`` candidate branches of a channel are
  produced by one ``tensordot`` instead of ``m``, and the per-call
  rebuilding of qubit lists, gate reshapes and inverse permutations that
  :func:`~repro.simulators.trajectory._apply_channel_batch` used to do is
  gone.  RNG consumption order is identical to the reference kernel (one
  bulk draw per stochastic channel, in program order).

Fused results are numerically equal but **not bit-identical** to the
sequential reference loops (float reassociation inside the composed
superoperators); the policy lives in :mod:`repro.simulators.backend`:
``REPRO_SIM_KERNEL=reference`` selects the pinned bit-identical replay,
the default ``fused`` kernel is held to ``<= 1e-10`` max-abs deviation by
``tests/test_superop.py`` and ``benchmarks/test_bench_superop_kernel.py``.

Lowered artefacts are derived lazily per :class:`NoiseProgram` and cached
on the program instance itself (programs are immutable and process-wide
cached, so the lowering cost is paid once per distinct compiled circuit
-- and rides along when programs are pickled to worker pools).

Two extensions sit on top of the single-rho kernels:

* **Array-ops routing** -- every contraction goes through the pluggable
  :mod:`repro.simulators.array_ops` backend (numpy default, selected by
  ``REPRO_ARRAY_BACKEND``).  The numpy backend binds ``np.*`` directly,
  so default-path numerics are unchanged; a GPU backend slots in without
  touching the kernels.
* **Batched replay** -- :func:`apply_superop_program_batch` applies one
  program (or a :func:`batch_superop_programs` stack of
  structure-identical programs, e.g. an error-scale sweep's B noise
  programs over one compiled circuit) to a ``(B, 2^n, 2^n)`` stack of
  density matrices in one vectorised pass per fused group: a batched
  ``matmul`` of the ``(B, 4^k, 4^k)`` stacked group tensors against the
  ``(B, 4^k, 4^{n-k})`` rho views, with the batch axis-permutation plans
  precomputed at lowering time.  Per item the GEMM operands and shapes
  equal the sequential :func:`apply_superop_program` contraction, so
  batched results track per-job fused replay to ``<= 1e-10``
  (``tests/test_batched_replay.py`` pins it).  The
  ``REPRO_SIM_BATCH_MAX_BYTES`` cap (:func:`max_batch_items`) bounds the
  ``B x 4^n`` working set the same warn-and-default way the other env
  knobs are parsed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.config import positive_int_env
from repro.simulators.array_ops import (
    ArrayBackend,
    active_array_backend,
    record_batched_apply,
)
from repro.simulators.noise import KrausChannel
from repro.simulators.noise_program import NoiseProgram

# ---------------------------------------------------------------------------
# Superoperator algebra (row-major vec convention: vec(rho)[r*d + c] = rho[r,c])
# ---------------------------------------------------------------------------


def unitary_superoperator(matrix: np.ndarray) -> np.ndarray:
    """Superoperator of the conjugation ``rho -> U . rho . U^dagger``.

    In the row-major vec convention ``vec(A X B) = (A kron B^T) vec(X)``,
    so the conjugation by ``U`` is ``U kron conj(U)``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    return np.kron(matrix, matrix.conj())


def kraus_to_superoperator(operators: Sequence[np.ndarray]) -> np.ndarray:
    """Superoperator ``sum_k K_k kron conj(K_k)`` of a Kraus channel."""
    operators = [np.asarray(op, dtype=complex) for op in operators]
    dim = operators[0].shape[0]
    superop = np.zeros((dim * dim, dim * dim), dtype=complex)
    for op in operators:
        superop += np.kron(op, op.conj())
    return superop


def channel_superoperator(channel: KrausChannel) -> np.ndarray:
    """Superoperator of a :class:`KrausChannel`."""
    return kraus_to_superoperator(channel.operators)


def superoperator_to_choi(superop: np.ndarray) -> np.ndarray:
    """Choi matrix of a superoperator (same vec convention).

    With ``S[(a,b),(i,j)] = sum_k K[a,i] conj(K[b,j])`` the Choi matrix is
    the index regrouping ``J[(i,a),(j,b)] = S[(a,b),(i,j)]``; the channel
    is completely positive iff ``J`` is positive semidefinite, and trace
    preserving iff the partial trace of ``J`` over the output factor is
    the identity.
    """
    superop = np.asarray(superop, dtype=complex)
    dim = int(round(np.sqrt(superop.shape[0])))
    tensor = superop.reshape(dim, dim, dim, dim)  # [a, b, i, j]
    return tensor.transpose(2, 0, 3, 1).reshape(dim * dim, dim * dim)


def is_cptp_superoperator(
    superop: np.ndarray, atol: float = 1e-9
) -> Tuple[bool, bool]:
    """``(completely_positive, trace_preserving)`` of a superoperator."""
    choi = superoperator_to_choi(superop)
    eigenvalues = np.linalg.eigvalsh((choi + choi.conj().T) / 2.0)
    completely_positive = bool(eigenvalues.min() >= -atol)
    dim = int(round(np.sqrt(superop.shape[0])))
    partial = np.einsum("iaja->ij", choi.reshape(dim, dim, dim, dim))
    trace_preserving = bool(np.allclose(partial, np.eye(dim), atol=atol))
    return completely_positive, trace_preserving


def _embed_matrix(
    matrix: np.ndarray, positions: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Embed an operator acting on tensor ``positions`` of a wider register."""
    positions = list(positions)
    j = len(positions)
    if j == num_qubits and positions == list(range(num_qubits)):
        return np.asarray(matrix, dtype=complex)
    rest = [p for p in range(num_qubits) if p not in positions]
    full = np.kron(
        np.asarray(matrix, dtype=complex), np.eye(2 ** (num_qubits - j), dtype=complex)
    )
    # `full` acts on qubit order positions + rest; permute axes back to 0..k-1.
    order = positions + rest
    perm = [order.index(p) for p in range(num_qubits)]
    tensor = full.reshape((2,) * (2 * num_qubits))
    tensor = np.transpose(tensor, perm + [num_qubits + axis for axis in perm])
    dim = 2**num_qubits
    return np.ascontiguousarray(tensor.reshape(dim, dim))


# ---------------------------------------------------------------------------
# Density-matrix lowering: the SuperopProgram
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FusedGroup:
    """One fused superoperator plus its precomputed application plan."""

    qubits: Tuple[int, ...]
    superoperator: np.ndarray
    """The ``4^k x 4^k`` map (kept for inspection/property tests)."""
    tensor: np.ndarray
    """``superoperator`` reshaped to ``(2,) * 4k``, C-contiguous."""
    input_axes: Tuple[int, ...]
    """Tensor axes of :attr:`tensor` to contract (the vec-input axes)."""
    rho_axes: Tuple[int, ...]
    """Axes of the ``(2,) * 2n`` rho tensor to contract against."""
    inverse: Tuple[int, ...]
    """Axis permutation restoring canonical rho axis order afterwards."""
    batch_forward: Tuple[int, ...]
    """Permutation moving this group's axes to the front of a batched
    ``(B,) + (2,) * 2n`` rho stack (batch axis stays first)."""
    batch_restore: Tuple[int, ...]
    """Inverse of :attr:`batch_forward` composed with the group
    application's axis layout: restores ``(B,) + canonical`` order."""


@dataclass(frozen=True)
class SuperopProgram:
    """A noise program lowered to fused superoperator groups."""

    num_qubits: int
    groups: Tuple[FusedGroup, ...]
    source_applications: int
    """Matrix applications the reference kernel would dispatch for the
    same program (gate conjugations count 2, each Kraus operator 2) --
    the denominator of the fusion ratio reported by benchmarks."""

    def num_groups(self) -> int:
        """Fused contractions per replay (one tensordot+transpose each)."""
        return len(self.groups)


class _PendingGroup:
    """Mutable accumulator for one fused group during lowering."""

    __slots__ = ("qubits", "matrix")

    def __init__(self, qubits: Tuple[int, ...], matrix: np.ndarray):
        self.qubits = qubits
        self.matrix = matrix


def _finalise_group(pending: _PendingGroup, num_qubits: int) -> FusedGroup:
    """Precompute the contraction plan of one fused group."""
    qubits = pending.qubits
    k = len(qubits)
    tensor = np.ascontiguousarray(pending.matrix.reshape((2,) * (4 * k)))
    rho_axes = tuple(qubits) + tuple(num_qubits + q for q in qubits)
    rest = [axis for axis in range(2 * num_qubits) if axis not in rho_axes]
    current = list(rho_axes) + rest
    position = {axis: index for index, axis in enumerate(current)}
    inverse = tuple(position[axis] for axis in range(2 * num_qubits))
    return FusedGroup(
        qubits=qubits,
        superoperator=pending.matrix,
        tensor=tensor,
        input_axes=tuple(range(2 * k, 4 * k)),
        rho_axes=rho_axes,
        inverse=inverse,
        batch_forward=(0,) + tuple(axis + 1 for axis in current),
        batch_restore=(0,) + tuple(index + 1 for index in inverse),
    )


def lower_noise_program(program: NoiseProgram) -> SuperopProgram:
    """Lower a noise program into fused superoperator groups.

    Per operation the gate conjugation and every trailing channel whose
    support lies inside the operation's qubits are composed into a single
    superoperator (channels on other supports -- none are produced by the
    current :class:`~repro.simulators.noise_model.NoiseModel`, but the
    lowering stays general -- are emitted as their own groups, in order).
    Idle channels become per-qubit groups.  A new group whose qubit tuple
    equals that of the *last* group touching those qubits is folded into
    it by matrix product: every group in between acts on disjoint qubits
    and therefore commutes, so the fold is exact, and runs of adjacent
    single-qubit superoperators collapse across moment boundaries.
    """
    n = program.num_qubits
    pending: List[_PendingGroup] = []
    last_touch: Dict[int, int] = {}
    source_applications = 0

    def emit(qubits: Tuple[int, ...], matrix: np.ndarray) -> None:
        indices = {last_touch.get(q) for q in qubits}
        if len(indices) == 1:
            (index,) = indices
            if index is not None and pending[index].qubits == qubits:
                pending[index].matrix = matrix @ pending[index].matrix
                return
        index = len(pending)
        pending.append(_PendingGroup(qubits, matrix))
        for q in qubits:
            last_touch[q] = index

    for moment in program.moments:
        for operation in moment.operations:
            qubits = tuple(operation.qubits)
            k = len(qubits)
            support = set(qubits)
            matrix = unitary_superoperator(operation.matrix)
            source_applications += 2
            accumulated = True  # the gate itself is always in `matrix`
            for channel, channel_qubits in operation.channels:
                source_applications += 2 * len(channel.operators)
                if set(channel_qubits) <= support:
                    positions = [qubits.index(q) for q in channel_qubits]
                    embedded = [
                        _embed_matrix(op, positions, k) for op in channel.operators
                    ]
                    matrix = kraus_to_superoperator(embedded) @ matrix
                    accumulated = True
                else:
                    if accumulated:
                        emit(qubits, matrix)
                        matrix = np.eye(4**k, dtype=complex)
                        accumulated = False
                    emit(tuple(channel_qubits), channel_superoperator(channel))
            if accumulated:
                emit(qubits, matrix)
        for channel, channel_qubits in moment.idle_channels:
            source_applications += 2 * len(channel.operators)
            emit(tuple(channel_qubits), channel_superoperator(channel))

    groups = tuple(_finalise_group(p, n) for p in pending)
    return SuperopProgram(
        num_qubits=n, groups=groups, source_applications=source_applications
    )


def _device(ops: ArrayBackend, array: np.ndarray):
    """A precomputed (host) plan tensor, moved to the backend's device.

    The numpy backend passes arrays through untouched; non-numpy
    backends copy per call (device-resident plan caching is future
    work -- this container has no GPU to measure it on).
    """
    if ops.name == "numpy":
        return array
    return ops.asarray(array)  # pragma: no cover - needs a non-numpy backend


def apply_superop_program(
    superop_program: SuperopProgram,
    rho: np.ndarray,
    ops: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Replay a lowered program on a density matrix: one contraction per group.

    Contractions route through the active array backend
    (:func:`repro.simulators.array_ops.active_array_backend`); the numpy
    default binds the identical ``np.tensordot``/``np.transpose`` calls
    this function always made, so default-path results are unchanged.
    """
    if ops is None:
        ops = active_array_backend()
    n = superop_program.num_qubits
    tensor = ops.reshape(ops.asarray(rho, dtype=complex), (2,) * (2 * n))
    for group in superop_program.groups:
        tensor = ops.tensordot(
            _device(ops, group.tensor), tensor, axes=(group.input_axes, group.rho_axes)
        )
        tensor = ops.transpose(tensor, group.inverse)
    dim = 2**n
    return ops.to_numpy(ops.reshape(tensor, (dim, dim)))


# ---------------------------------------------------------------------------
# Batched replay: one vectorised pass over a (B, 2^n, 2^n) rho stack
# ---------------------------------------------------------------------------

SIM_BATCH_MAX_BYTES_ENV_VAR = "REPRO_SIM_BATCH_MAX_BYTES"
"""Environment variable capping the batched-replay working set (bytes)."""

DEFAULT_SIM_BATCH_MAX_BYTES = 256 * 1024 * 1024
"""Default working-set cap (256 MiB): at the ``MAX_DENSITY_MATRIX_QUBITS``
width of 12 qubits one density matrix is ``16 * 4^12`` = 256 MiB, so the
default admits batching only where it is safe, and hundreds of items at
the 4-6 qubit benchmark widths."""


def sim_batch_max_bytes() -> int:
    """The batched-replay working-set cap, re-read from the environment.

    Parsed with the shared warn-and-default policy
    (:func:`repro.config.positive_int_env`): unset means the 256 MiB
    default, invalid values warn and use the default.
    """
    return positive_int_env(SIM_BATCH_MAX_BYTES_ENV_VAR, DEFAULT_SIM_BATCH_MAX_BYTES)


def max_batch_items(num_qubits: int, batch_option: int = 0) -> int:
    """Largest batch size the memory cap (and the ``batch`` knob) admits.

    Working-set model: each batch item carries an input and an output
    ``2^n x 2^n`` complex128 density matrix through a vectorised pass
    (``2 * 16 * 4^n`` bytes; the per-group stacked operator tensors are
    ``B * 16^k`` and dominated by the rho stack for every fused group the
    lowering emits).  ``batch_option`` follows
    :class:`~repro.experiments.runner.SimulationOptions.batch` semantics:
    ``0`` means cap-only, values ``>= 2`` additionally bound the group
    size.  Never returns less than 1.
    """
    per_item = 2 * 16 * (4**num_qubits)
    limit = max(1, sim_batch_max_bytes() // per_item)
    if batch_option and int(batch_option) > 1:
        limit = min(limit, int(batch_option))
    return int(limit)


@dataclass(frozen=True)
class BatchedFusedGroup:
    """One fused group of B structure-identical programs, stacked."""

    qubits: Tuple[int, ...]
    stacked: np.ndarray
    """The B group superoperators as one ``(B, 4^k, 4^k)`` tensor."""
    batch_forward: Tuple[int, ...]
    batch_restore: Tuple[int, ...]


@dataclass(frozen=True)
class SuperopProgramBatch:
    """B structure-identical superoperator programs, stacked per group.

    The error-scale sweep artefact: the same compiled circuit lowered
    against B noise strengths yields programs whose fused groups share
    supports and order but differ in channel tensors.  Stacking each
    group into ``(B, 4^k, 4^k)`` lets one batched ``matmul`` per group
    replay all B simulations at once.
    """

    num_qubits: int
    batch_size: int
    groups: Tuple[BatchedFusedGroup, ...]


def superop_structure_key(superop_program: SuperopProgram) -> Tuple:
    """The fused-group *structure* of a program: width plus group supports.

    Two programs with equal structure keys differ at most in their
    channel tensors, which is exactly the condition under which
    :func:`batch_superop_programs` can stack them.  Cheap (no array
    hashing) because batch grouping runs per prepared job.
    """
    return (superop_program.num_qubits,) + tuple(
        group.qubits for group in superop_program.groups
    )


def batch_superop_programs(
    programs: Sequence[SuperopProgram],
) -> SuperopProgramBatch:
    """Stack structure-identical programs for one vectorised replay.

    Raises ``ValueError`` when the programs' fused-group structures
    differ (the grouping layer in :mod:`repro.experiments.engine` keys on
    :func:`superop_structure_key` precisely so this never fires in
    production -- it guards direct callers).
    """
    if not programs:
        raise ValueError("cannot batch an empty program sequence")
    first = programs[0]
    key = superop_structure_key(first)
    for program in programs[1:]:
        if superop_structure_key(program) != key:
            raise ValueError(
                "superoperator programs have mismatched fused-group structure "
                "and cannot be stacked into one batch"
            )
    groups = []
    for index, template in enumerate(first.groups):
        stacked = np.ascontiguousarray(
            np.stack([program.groups[index].superoperator for program in programs])
        )
        groups.append(
            BatchedFusedGroup(
                qubits=template.qubits,
                stacked=stacked,
                batch_forward=template.batch_forward,
                batch_restore=template.batch_restore,
            )
        )
    return SuperopProgramBatch(
        num_qubits=first.num_qubits, batch_size=len(programs), groups=tuple(groups)
    )


def apply_superop_program_batch(
    program_batch_or_program: Union[SuperopProgram, SuperopProgramBatch],
    rhos: np.ndarray,
    ops: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Replay on a ``(B, 2^n, 2^n)`` stack: one vectorised pass per group.

    Accepts either a :class:`SuperopProgramBatch` (per-item group
    tensors -- the error-scale sweep case) or a single
    :class:`SuperopProgram` applied to every item (identical program,
    B initial states).  Per group the batched contraction is a
    ``matmul`` of the ``(B, 4^k, 4^k)`` (or broadcast ``(4^k, 4^k)``)
    operator stack against the ``(B, 4^k, 4^{n-k})`` rho views, with the
    batch axis permutations precomputed at lowering time -- per item the
    GEMM operands equal the sequential :func:`apply_superop_program`
    contraction, which is what keeps batched results within ``1e-10`` of
    per-job fused replay.  Records one pass of ``B`` items against the
    active array backend's counters.
    """
    if ops is None:
        ops = active_array_backend()
    if isinstance(program_batch_or_program, SuperopProgram):
        num_qubits = program_batch_or_program.num_qubits
        groups = program_batch_or_program.groups
        operator_of = lambda group: _device(ops, group.superoperator)  # noqa: E731
    else:
        num_qubits = program_batch_or_program.num_qubits
        groups = program_batch_or_program.groups
        operator_of = lambda group: _device(ops, group.stacked)  # noqa: E731
    rhos = np.asarray(rhos, dtype=complex)
    if rhos.ndim != 3 or rhos.shape[1] != rhos.shape[2] or rhos.shape[1] != 2**num_qubits:
        raise ValueError(
            f"expected a (B, {2**num_qubits}, {2**num_qubits}) density-matrix "
            f"stack, got shape {rhos.shape}"
        )
    batch = rhos.shape[0]
    if (
        isinstance(program_batch_or_program, SuperopProgramBatch)
        and batch != program_batch_or_program.batch_size
    ):
        raise ValueError(
            f"rho stack carries {batch} items but the program batch carries "
            f"{program_batch_or_program.batch_size}"
        )
    tensor = ops.reshape(ops.asarray(rhos, dtype=complex), (batch,) + (2,) * (2 * num_qubits))
    permuted_shape = (batch,) + (2,) * (2 * num_qubits)
    for group in groups:
        k = len(group.qubits)
        view = ops.transpose(tensor, group.batch_forward)
        view = ops.reshape(view, (batch, 4**k, 4 ** (num_qubits - k)))
        out = ops.matmul(operator_of(group), view)
        out = ops.reshape(out, permuted_shape)
        tensor = ops.transpose(out, group.batch_restore)
    record_batched_apply(ops.name, batch)
    dim = 2**num_qubits
    return ops.to_numpy(ops.reshape(tensor, (batch, dim, dim)))


# ---------------------------------------------------------------------------
# Trajectory lowering: pre-stacked channel plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChannelPlan:
    """One channel (or gate) of a program, pre-stacked for replay.

    A unitary gate is the ``num_branches == 1`` case: it is applied
    deterministically and consumes no randomness, exactly like the
    reference kernel's single-operator fast path.
    """

    qubits: Tuple[int, ...]
    num_branches: int
    stacked: np.ndarray
    """All branch operators as one contiguous ``(m,) + (2,) * 2k`` tensor."""
    operator_input_axes: Tuple[int, ...]
    """Input axes of one ``(2,) * 2k`` operator tensor (``k .. 2k``)."""
    stacked_input_axes: Tuple[int, ...]
    """Input axes of :attr:`stacked` (shifted by the branch axis)."""
    state_axes: Tuple[int, ...]
    """Qubit axes of a single ``(2,) * n`` state tensor."""
    batch_state_axes: Tuple[int, ...]
    """Qubit axes of a batched ``(T,) + (2,) * n`` state tensor."""
    single_inverse: Tuple[int, ...]
    batch_inverse: Tuple[int, ...]
    stacked_single_inverse: Tuple[int, ...]
    stacked_batch_inverse: Tuple[int, ...]


@dataclass(frozen=True)
class TrajectoryPlan:
    """A noise program's channels pre-stacked in replay order."""

    num_qubits: int
    channel_plans: Tuple[ChannelPlan, ...]


def _channel_plan(
    operators: Sequence[np.ndarray], qubits: Tuple[int, ...], num_qubits: int
) -> ChannelPlan:
    """Precompute every contraction/permutation a channel replay needs."""
    k = len(qubits)
    m = len(operators)
    stacked = np.ascontiguousarray(
        np.stack([np.asarray(op, dtype=complex).reshape((2,) * (2 * k)) for op in operators])
    )
    rest = [q for q in range(num_qubits) if q not in qubits]

    def _inverse(current: List[object], wanted: List[object]) -> Tuple[int, ...]:
        position = {axis: index for index, axis in enumerate(current)}
        return tuple(position[axis] for axis in wanted)

    qubit_list = list(qubits)
    single_current = qubit_list + rest
    batch_current = qubit_list + ["batch"] + rest
    stacked_single_current = ["m"] + qubit_list + rest
    stacked_batch_current = ["m"] + qubit_list + ["batch"] + rest
    wanted = list(range(num_qubits))
    return ChannelPlan(
        qubits=qubits,
        num_branches=m,
        stacked=stacked,
        operator_input_axes=tuple(range(k, 2 * k)),
        stacked_input_axes=tuple(range(k + 1, 2 * k + 1)),
        state_axes=tuple(qubits),
        batch_state_axes=tuple(q + 1 for q in qubits),
        single_inverse=_inverse(single_current, wanted),
        batch_inverse=_inverse(batch_current, ["batch"] + wanted),
        stacked_single_inverse=_inverse(stacked_single_current, ["m"] + wanted),
        stacked_batch_inverse=_inverse(stacked_batch_current, ["m", "batch"] + wanted),
    )


def lower_trajectory_program(program: NoiseProgram) -> TrajectoryPlan:
    """Pre-stack every gate and channel of a program, in replay order."""
    n = program.num_qubits
    plans: List[ChannelPlan] = []
    for moment in program.moments:
        for operation in moment.operations:
            plans.append(_channel_plan([operation.matrix], tuple(operation.qubits), n))
            for channel, qubits in operation.channels:
                plans.append(_channel_plan(channel.operators, tuple(qubits), n))
        for channel, qubits in moment.idle_channels:
            plans.append(_channel_plan(channel.operators, tuple(qubits), n))
    return TrajectoryPlan(num_qubits=n, channel_plans=tuple(plans))


def _apply_operator_single(
    state_tensor: np.ndarray, plan: ChannelPlan, index: int, ops: ArrayBackend
) -> np.ndarray:
    """Apply branch ``index`` to one ``(2,) * n`` state tensor."""
    result = ops.tensordot(
        _device(ops, plan.stacked[index]),
        state_tensor,
        axes=(plan.operator_input_axes, plan.state_axes),
    )
    return ops.transpose(result, plan.single_inverse)


def _apply_operator_batch(
    states_tensor: np.ndarray, plan: ChannelPlan, index: int, ops: ArrayBackend
) -> np.ndarray:
    """Apply branch ``index`` to a ``(T,) + (2,) * n`` state stack."""
    result = ops.tensordot(
        _device(ops, plan.stacked[index]),
        states_tensor,
        axes=(plan.operator_input_axes, plan.batch_state_axes),
    )
    return ops.transpose(result, plan.batch_inverse)


def _apply_stacked_single(
    state_tensor: np.ndarray, plan: ChannelPlan, ops: ArrayBackend
) -> np.ndarray:
    """All ``m`` branches of one state at once; returns ``(m, 2^n)``."""
    result = ops.tensordot(
        _device(ops, plan.stacked),
        state_tensor,
        axes=(plan.stacked_input_axes, plan.state_axes),
    )
    result = ops.transpose(result, plan.stacked_single_inverse)
    return ops.reshape(result, (plan.num_branches, -1))


def _apply_stacked_batch(
    states_tensor: np.ndarray, plan: ChannelPlan, ops: ArrayBackend
) -> np.ndarray:
    """All ``m`` branches of a ``(T,)``-stack at once; returns ``(m, T, 2^n)``."""
    result = ops.tensordot(
        _device(ops, plan.stacked),
        states_tensor,
        axes=(plan.stacked_input_axes, plan.batch_state_axes),
    )
    result = ops.transpose(result, plan.stacked_batch_inverse)
    batch = result.shape[1]
    return ops.reshape(result, (plan.num_branches, batch, -1))


def apply_trajectory_plan_to_state(
    trajectory_plan: TrajectoryPlan, state: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Replay a pre-stacked plan on a single trajectory statevector.

    RNG consumption matches the reference kernel: deterministic plans
    (gates, single-operator channels) draw nothing; stochastic channels
    draw once via ``rng.choice`` over the branch weights.
    """
    ops = active_array_backend()
    n = trajectory_plan.num_qubits
    tensor = ops.reshape(ops.asarray(state, dtype=complex), (2,) * n)
    for plan in trajectory_plan.channel_plans:
        if plan.num_branches == 1:
            tensor = _apply_operator_single(tensor, plan, 0, ops)
            continue
        branches = _apply_stacked_single(tensor, plan, ops)
        weights = np.asarray(
            ops.to_numpy(ops.einsum("mi,mi->m", branches, branches.conj()))
        ).real
        total = weights.sum()
        if total <= 0:
            raise RuntimeError("channel produced zero total probability")
        choice = rng.choice(plan.num_branches, p=weights / total)
        branch = branches[choice]
        tensor = ops.reshape(branch / np.linalg.norm(branch), (2,) * n)
    return np.asarray(ops.to_numpy(ops.reshape(tensor, (-1,))))


def apply_trajectory_plan_to_states(
    trajectory_plan: TrajectoryPlan,
    states: np.ndarray,
    rng: np.random.Generator,
    branch_storage_limit: Optional[int] = None,
) -> np.ndarray:
    """Replay a pre-stacked plan on a ``(T, 2^n)`` trajectory stack.

    Stochastic channels produce all ``m`` candidate branches in a single
    stacked contraction when they fit in ``branch_storage_limit`` complex
    elements (default: the reference kernel's
    :data:`~repro.simulators.trajectory._BRANCH_STORAGE_LIMIT`); beyond
    it the chosen branches are recomputed per distinct choice, trading
    FLOPs for memory exactly like the reference kernel.  One bulk uniform
    draw per stochastic channel, in program order.
    """
    if branch_storage_limit is None:
        from repro.simulators.trajectory import _BRANCH_STORAGE_LIMIT

        branch_storage_limit = _BRANCH_STORAGE_LIMIT
    ops = active_array_backend()
    n = trajectory_plan.num_qubits
    num_trajectories = states.shape[0]
    tensor = ops.reshape(
        ops.asarray(states, dtype=complex), (num_trajectories,) + (2,) * n
    )
    for plan in trajectory_plan.channel_plans:
        if plan.num_branches == 1:
            tensor = _apply_operator_batch(tensor, plan, 0, ops)
            continue
        m = plan.num_branches
        keep_branches = m * num_trajectories * 2**n <= branch_storage_limit
        branches = None
        if keep_branches:
            branches = np.asarray(ops.to_numpy(_apply_stacked_batch(tensor, plan, ops)))
            weights = np.einsum("mti,mti->mt", branches, branches.conj()).real
        else:
            weights = np.empty((m, num_trajectories))
            for index in range(m):
                candidate = _apply_operator_batch(tensor, plan, index, ops)
                flat = np.asarray(ops.to_numpy(candidate)).reshape(num_trajectories, -1)
                weights[index] = np.einsum("ti,ti->t", flat, flat.conj()).real
        totals = weights.sum(axis=0)
        if np.any(totals <= 0):
            raise RuntimeError("channel produced zero total probability")
        cumulative = np.cumsum(weights / totals, axis=0)
        draws = rng.random(num_trajectories)
        choices = np.minimum((draws[None, :] >= cumulative).sum(axis=0), m - 1)
        if branches is not None:
            chosen = branches[choices, np.arange(num_trajectories)]
            norms = np.sqrt(np.einsum("ti,ti->t", chosen, chosen.conj()).real)
            tensor = ops.asarray(
                (chosen / norms[:, None]).reshape((num_trajectories,) + (2,) * n)
            )
            continue
        host_tensor = np.asarray(ops.to_numpy(tensor))
        output = np.empty((num_trajectories, 2**n), dtype=complex)
        for index in range(m):
            mask = choices == index
            if not np.any(mask):
                continue
            subset = ops.asarray(host_tensor[mask])
            chosen = np.asarray(
                ops.to_numpy(_apply_operator_batch(subset, plan, index, ops))
            ).reshape(int(mask.sum()), -1)
            norms = np.sqrt(np.einsum("ti,ti->t", chosen, chosen.conj()).real)
            output[mask] = chosen / norms[:, None]
        tensor = ops.asarray(output.reshape((num_trajectories,) + (2,) * n))
    return np.asarray(ops.to_numpy(ops.reshape(tensor, (num_trajectories, -1))))


# ---------------------------------------------------------------------------
# Per-program lowering cache (stored on the NoiseProgram instance)
# ---------------------------------------------------------------------------

_LOWERING_LOCK = threading.Lock()


def superop_program_for(program: NoiseProgram) -> SuperopProgram:
    """The (lazily derived, program-cached) fused lowering of a program.

    Stored on the program instance itself: programs are immutable,
    process-wide cached (:func:`~repro.simulators.noise_program.noise_program_for`)
    and pickled by value to worker pools, so the lowering travels with
    them and is never derived twice for the same program object.
    """
    cached = program._superop
    if cached is not None:
        return cached
    lowered = lower_noise_program(program)
    with _LOWERING_LOCK:
        if program._superop is None:
            program._superop = lowered
        return program._superop


def trajectory_plan_for(program: NoiseProgram) -> TrajectoryPlan:
    """The (lazily derived, program-cached) pre-stacked trajectory plan."""
    cached = program._trajectory_plan
    if cached is not None:
        return cached
    lowered = lower_trajectory_program(program)
    with _LOWERING_LOCK:
        if program._trajectory_plan is None:
            program._trajectory_plan = lowered
        return program._trajectory_plan
