"""Calibration-driven noise model.

A :class:`NoiseModel` holds the per-qubit and per-edge calibration data a
device exposes (gate error rates per gate type, T1/T2 times, gate
durations, readout error) and converts it into the Kraus channels applied
by the density-matrix and trajectory simulators.  The construction follows
the paper's simulation setup (Section VI): depolarizing errors scaled by
the calibrated gate error rates plus amplitude damping / dephasing from
T1, T2 and gate durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Operation
from repro.simulators.noise import (
    KrausChannel,
    depolarizing_channel,
    depolarizing_probability_from_error_rate,
    thermal_relaxation_channel,
)

Edge = Tuple[int, int]


def _canonical_edge(pair: Sequence[int]) -> Edge:
    a, b = int(pair[0]), int(pair[1])
    return (a, b) if a <= b else (b, a)


@dataclass
class NoiseModel:
    """Container for calibration data plus channel construction.

    All error rates are average gate *infidelities* (``1 - fidelity``).
    Durations are in nanoseconds; T1/T2 in the same unit.
    """

    single_qubit_error: Dict[int, float] = field(default_factory=dict)
    two_qubit_error: Dict[Edge, Dict[str, float]] = field(default_factory=dict)
    default_single_qubit_error: float = 1e-3
    default_two_qubit_error: float = 1e-2
    t1: Dict[int, float] = field(default_factory=dict)
    t2: Dict[int, float] = field(default_factory=dict)
    default_t1: float = 15_000.0
    default_t2: float = 15_000.0
    readout_error: Dict[int, float] = field(default_factory=dict)
    default_readout_error: float = 0.0
    single_qubit_duration: float = 25.0
    two_qubit_duration: float = 32.0
    gate_durations: Dict[str, float] = field(default_factory=dict)
    include_thermal_relaxation: bool = True
    include_idle_noise: bool = True

    # -- calibration lookups -------------------------------------------------

    def single_qubit_error_rate(self, qubit: int) -> float:
        """Error rate of single-qubit gates on ``qubit``."""
        return self.single_qubit_error.get(int(qubit), self.default_single_qubit_error)

    def two_qubit_error_rate(self, type_key: str, pair: Sequence[int]) -> float:
        """Error rate of the two-qubit gate type ``type_key`` on edge ``pair``."""
        edge = _canonical_edge(pair)
        per_edge = self.two_qubit_error.get(edge, {})
        if type_key in per_edge:
            return per_edge[type_key]
        if "*" in per_edge:
            return per_edge["*"]
        return self.default_two_qubit_error

    def set_two_qubit_error_rate(
        self, type_key: str, pair: Sequence[int], error_rate: float
    ) -> None:
        """Register the error rate of a gate type on an edge."""
        edge = _canonical_edge(pair)
        self.two_qubit_error.setdefault(edge, {})[type_key] = float(error_rate)

    def scaled_two_qubit(
        self,
        scale: float,
        registered_scales: Optional[Dict[str, float]] = None,
    ) -> "NoiseModel":
        """A copy whose two-qubit error rates are ``scale``x the *unscaled* calibration.

        This is the noise-program side of the Figure 10 error-scale sweeps:
        the compiled circuit is replayed under calibration whose two-qubit
        quality is uniformly ``scale``x worse, without re-registering gate
        types (which would perturb the device's calibration RNG and the
        compilation caches).  Single-qubit rates, T1/T2 and readout error
        are untouched -- the same quantities :meth:`Device.register_gate_type
        <repro.devices.device.Device.register_gate_type>` leaves alone.

        ``registered_scales`` maps type keys to the scale they were
        *registered* with; stored rates already carry that factor, so each
        rate is multiplied by ``scale / registered`` (exactly 1.0 when the
        job's scale matches the registration -- no float round-trip).  Rates
        are capped at 1.0, mirroring registration.
        """
        registered = registered_scales or {}
        factor = float(scale)

        def rescaled(type_key: str, rate: float) -> float:
            multiplier = factor / float(registered.get(type_key, 1.0))
            if multiplier == 1.0:
                return rate
            return min(rate * multiplier, 1.0)

        return replace(
            self,
            two_qubit_error={
                edge: {
                    type_key: rescaled(type_key, rate)
                    for type_key, rate in per_edge.items()
                }
                for edge, per_edge in self.two_qubit_error.items()
            },
            default_two_qubit_error=min(self.default_two_qubit_error * factor, 1.0),
        )

    def qubit_t1(self, qubit: int) -> float:
        """T1 relaxation time of ``qubit``."""
        return self.t1.get(int(qubit), self.default_t1)

    def qubit_t2(self, qubit: int) -> float:
        """T2 coherence time of ``qubit``."""
        return self.t2.get(int(qubit), self.default_t2)

    def qubit_readout_error(self, qubit: int) -> float:
        """Readout (measurement bit-flip) error probability of ``qubit``."""
        return self.readout_error.get(int(qubit), self.default_readout_error)

    def operation_duration(self, operation: Operation) -> float:
        """Duration (ns) of an operation, looked up by gate type key."""
        key = operation.gate.type_key
        if key in self.gate_durations:
            return self.gate_durations[key]
        if operation.gate.name in self.gate_durations:
            return self.gate_durations[operation.gate.name]
        if operation.is_two_qubit:
            return self.two_qubit_duration
        return self.single_qubit_duration

    def operation_fidelity(self, operation: Operation, physical_qubits: Sequence[int]) -> float:
        """Hardware fidelity ``1 - error rate`` of ``operation``.

        ``physical_qubits[i]`` is the physical qubit backing circuit qubit
        ``i``; the operation's qubit indices are circuit-local.
        """
        physical = [physical_qubits[q] for q in operation.qubits]
        if operation.is_two_qubit:
            rate = self.two_qubit_error_rate(operation.gate.type_key, physical)
        else:
            rate = self.single_qubit_error_rate(physical[0])
        return 1.0 - rate

    # -- channel construction --------------------------------------------------

    def error_channels_for_operation(
        self, operation: Operation, physical_qubits: Sequence[int]
    ) -> List[Tuple[KrausChannel, Tuple[int, ...]]]:
        """Error channels to apply after ``operation``.

        Returns ``(channel, circuit_qubits)`` pairs.  The depolarizing part
        acts jointly on the operation's qubits; thermal relaxation acts on
        each qubit individually for the gate's duration.
        """
        channels: List[Tuple[KrausChannel, Tuple[int, ...]]] = []
        physical = [physical_qubits[q] for q in operation.qubits]
        if operation.is_two_qubit:
            rate = self.two_qubit_error_rate(operation.gate.type_key, physical)
            probability = depolarizing_probability_from_error_rate(rate, 2)
            if probability > 0:
                channels.append(
                    (depolarizing_channel(probability, 2), tuple(operation.qubits))
                )
        else:
            rate = self.single_qubit_error_rate(physical[0])
            probability = depolarizing_probability_from_error_rate(rate, 1)
            if probability > 0:
                channels.append(
                    (depolarizing_channel(probability, 1), tuple(operation.qubits))
                )
        if self.include_thermal_relaxation:
            duration = self.operation_duration(operation)
            for circuit_qubit, physical_qubit in zip(operation.qubits, physical):
                channel = thermal_relaxation_channel(
                    duration, self.qubit_t1(physical_qubit), self.qubit_t2(physical_qubit)
                )
                if not channel.is_identity():
                    channels.append((channel, (circuit_qubit,)))
        return channels

    def idle_channel(
        self, circuit_qubit: int, physical_qubit: int, duration: float
    ) -> Optional[Tuple[KrausChannel, Tuple[int, ...]]]:
        """Thermal relaxation applied to a qubit idling for ``duration``."""
        if not (self.include_thermal_relaxation and self.include_idle_noise):
            return None
        if duration <= 0:
            return None
        channel = thermal_relaxation_channel(
            duration, self.qubit_t1(physical_qubit), self.qubit_t2(physical_qubit)
        )
        if channel.is_identity():
            return None
        return channel, (circuit_qubit,)

    # -- convenience constructors ---------------------------------------------

    @classmethod
    def uniform(
        cls,
        num_qubits: int,
        two_qubit_error: float,
        single_qubit_error: float = 1e-3,
        t1: float = 15_000.0,
        t2: float = 15_000.0,
        readout_error: float = 0.0,
    ) -> "NoiseModel":
        """Noise model with identical parameters on every qubit and edge.

        Useful for controlled experiments such as the error-rate sweeps of
        Figures 7 and 10f, where the paper varies a single mean error rate.
        """
        model = cls(
            default_single_qubit_error=single_qubit_error,
            default_two_qubit_error=two_qubit_error,
            default_t1=t1,
            default_t2=t2,
            default_readout_error=readout_error,
        )
        for qubit in range(num_qubits):
            model.single_qubit_error[qubit] = single_qubit_error
            model.t1[qubit] = t1
            model.t2[qubit] = t2
            model.readout_error[qubit] = readout_error
        return model
