"""Pure-state (statevector) simulation.

The statevector simulator is the workhorse for ideal (noiseless)
simulation: it produces the ideal output distributions that the paper's
metrics (heavy-output probability, cross-entropy difference, linear XEB)
compare noisy executions against.

Convention: qubit 0 is the most significant bit of the basis index, so the
state ``|q0 q1 ... q_{n-1}>`` lives at index ``sum(q_k << (n-1-k))``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def zero_state(num_qubits: int) -> np.ndarray:
    """Return the ``|0...0>`` statevector."""
    state = np.zeros(2**num_qubits, dtype=complex)
    state[0] = 1.0
    return state


def apply_gate(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a k-qubit gate ``matrix`` to ``qubits`` of ``state``.

    Uses tensor contraction rather than building the full ``2^n x 2^n``
    unitary, so the cost is ``O(2^n * 2^k)``.
    """
    qubits = list(qubits)
    k = len(qubits)
    tensor = state.reshape((2,) * num_qubits)
    gate_tensor = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
    tensor = np.tensordot(gate_tensor, tensor, axes=(list(range(k, 2 * k)), qubits))
    # tensordot puts the gate's output axes first; restore qubit order.
    current_order = qubits + [q for q in range(num_qubits) if q not in qubits]
    inverse = [current_order.index(q) for q in range(num_qubits)]
    tensor = np.transpose(tensor, inverse)
    return tensor.reshape(-1)


def zero_states(num_trajectories: int, num_qubits: int) -> np.ndarray:
    """Return a ``(T, 2^n)`` stack of ``|0...0>`` statevectors."""
    states = np.zeros((int(num_trajectories), 2**num_qubits), dtype=complex)
    states[:, 0] = 1.0
    return states


def apply_gate_batch(
    states: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply a k-qubit gate to every statevector in a ``(T, 2^n)`` stack.

    Batched counterpart of :func:`apply_gate`: one tensor contraction
    advances all ``T`` states at once, which is what makes the trajectory
    simulator's Monte-Carlo loop a stack of numpy kernels instead of a
    Python loop over trajectories.
    """
    qubits = list(qubits)
    k = len(qubits)
    batch = states.shape[0]
    tensor = states.reshape((batch,) + (2,) * num_qubits)
    gate_tensor = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))
    # Qubit q lives on tensor axis q + 1 (axis 0 is the batch axis).
    tensor = np.tensordot(
        gate_tensor, tensor, axes=(list(range(k, 2 * k)), [q + 1 for q in qubits])
    )
    # Axes now: gate output axes (one per target qubit), batch, remaining qubits.
    current_order: list = qubits + ["batch"] + [q for q in range(num_qubits) if q not in qubits]
    inverse = [current_order.index("batch")] + [current_order.index(q) for q in range(num_qubits)]
    tensor = np.transpose(tensor, inverse)
    return tensor.reshape(batch, -1)


def simulate_statevector(
    circuit: QuantumCircuit, initial_state: Optional[np.ndarray] = None
) -> np.ndarray:
    """Run ``circuit`` on ``initial_state`` (default ``|0...0>``) and return the final state."""
    if initial_state is None:
        state = zero_state(circuit.num_qubits)
    else:
        state = np.array(initial_state, dtype=complex)
        if state.shape != (2**circuit.num_qubits,):
            raise ValueError("initial state has the wrong dimension")
    for operation in circuit:
        state = apply_gate(state, operation.gate.matrix, operation.qubits, circuit.num_qubits)
    return state


def probabilities(state: np.ndarray) -> np.ndarray:
    """Measurement probabilities of a statevector in the computational basis."""
    probs = np.abs(np.asarray(state)) ** 2
    total = probs.sum()
    if total <= 0:
        raise ValueError("state has zero norm")
    return probs / total


def ideal_probabilities(circuit: QuantumCircuit) -> np.ndarray:
    """Noiseless output distribution of ``circuit`` starting from ``|0...0>``."""
    return probabilities(simulate_statevector(circuit))


def expectation_value(state: np.ndarray, observable: np.ndarray) -> complex:
    """Expectation value ``<psi| O |psi>`` of a dense observable."""
    state = np.asarray(state, dtype=complex)
    return complex(np.vdot(state, np.asarray(observable, dtype=complex) @ state))


def state_fidelity(state_a: np.ndarray, state_b: np.ndarray) -> float:
    """Fidelity ``|<a|b>|^2`` between two pure states."""
    a = np.asarray(state_a, dtype=complex)
    b = np.asarray(state_b, dtype=complex)
    a = a / np.linalg.norm(a)
    b = b / np.linalg.norm(b)
    return float(abs(np.vdot(a, b)) ** 2)
