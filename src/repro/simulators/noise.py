"""Noise channels in Kraus form.

Mirrors the channels the paper's Qiskit Aer setup uses (Section VI):
depolarizing noise parameterised by calibrated gate error rates, plus
amplitude damping and dephasing derived from T1/T2 times and gate
durations.  Readout error is modelled as a classical bit-flip confusion
matrix applied at sampling time (:mod:`repro.simulators.sampling`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

_PAULIS = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


@dataclass(frozen=True)
class KrausChannel:
    """A completely-positive trace-preserving map given by Kraus operators."""

    name: str
    operators: Tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        operators = tuple(np.asarray(op, dtype=complex) for op in self.operators)
        if not operators:
            raise ValueError("a channel needs at least one Kraus operator")
        dim = operators[0].shape[0]
        total = sum(op.conj().T @ op for op in operators)
        if not np.allclose(total, np.eye(dim), atol=1e-7):
            raise ValueError(f"channel {self.name!r} is not trace preserving")
        for op in operators:
            op.setflags(write=False)
        object.__setattr__(self, "operators", operators)

    @property
    def num_qubits(self) -> int:
        """Number of qubits the channel acts on."""
        return int(round(np.log2(self.operators[0].shape[0])))

    def is_identity(self, atol: float = 1e-12) -> bool:
        """True if the channel is (numerically) the identity map."""
        if len(self.operators) == 1:
            op = self.operators[0]
            return bool(np.allclose(op @ op.conj().T, np.eye(op.shape[0]), atol=atol))
        # A multi-operator channel is the identity only if all non-unitary
        # operators are negligible.
        dim = self.operators[0].shape[0]
        main = self.operators[0]
        rest = sum(np.linalg.norm(op) for op in self.operators[1:])
        return bool(np.allclose(main, np.eye(dim), atol=atol) and rest < atol)


def pauli_string_matrix(label: str) -> np.ndarray:
    """Kronecker product of single-qubit Paulis given by ``label`` (e.g. ``"XZ"``)."""
    matrix = np.array([[1.0 + 0j]])
    for char in label:
        matrix = np.kron(matrix, _PAULIS[char])
    return matrix


def depolarizing_probability_from_error_rate(error_rate: float, num_qubits: int) -> float:
    """Convert a reported average gate error rate into a depolarizing probability.

    For the uniform depolarizing channel ``rho -> (1-p) rho + p I/d`` the
    average gate infidelity is ``p (d-1)/d``; inverting gives
    ``p = error_rate * d / (d-1)``.  The result is clipped to ``[0, 1]``.
    """
    if error_rate < 0:
        raise ValueError("error rate must be non-negative")
    dim = 2**num_qubits
    probability = error_rate * dim / (dim - 1)
    return float(min(max(probability, 0.0), 1.0))


def depolarizing_channel(probability: float, num_qubits: int = 1) -> KrausChannel:
    """Uniform depolarizing channel on ``num_qubits`` qubits.

    With probability ``probability`` the state is replaced by the maximally
    mixed state; equivalently each non-identity Pauli is applied with
    probability ``probability / 4^n``.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("depolarizing probability must be in [0, 1]")
    dim = 4**num_qubits
    labels = ["".join(chars) for chars in itertools.product("IXYZ", repeat=num_qubits)]
    operators: List[np.ndarray] = []
    identity_weight = np.sqrt(1.0 - probability + probability / dim)
    operators.append(identity_weight * pauli_string_matrix(labels[0]))
    pauli_weight = np.sqrt(probability / dim)
    for label in labels[1:]:
        operators.append(pauli_weight * pauli_string_matrix(label))
    return KrausChannel(f"depolarizing({probability:.4g}, {num_qubits}q)", tuple(operators))


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """Single-qubit amplitude damping with decay probability ``gamma``."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError("gamma must be in [0, 1]")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=complex)
    return KrausChannel(f"amplitude_damping({gamma:.4g})", (k0, k1))


def phase_damping_channel(lam: float) -> KrausChannel:
    """Single-qubit phase damping (pure dephasing) with parameter ``lam``."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError("lambda must be in [0, 1]")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - lam)]], dtype=complex)
    k1 = np.array([[0, 0], [0, np.sqrt(lam)]], dtype=complex)
    return KrausChannel(f"phase_damping({lam:.4g})", (k0, k1))


def bit_flip_channel(probability: float) -> KrausChannel:
    """Single-qubit bit-flip channel (used for readout-error modelling tests)."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    k0 = np.sqrt(1 - probability) * _PAULIS["I"]
    k1 = np.sqrt(probability) * _PAULIS["X"]
    return KrausChannel(f"bit_flip({probability:.4g})", (k0, k1))


def thermal_relaxation_channel(
    duration: float, t1: float, t2: float
) -> KrausChannel:
    """Amplitude damping plus dephasing for an idle period of ``duration``.

    ``t1`` and ``t2`` are relaxation/coherence times in the same units as
    ``duration``.  The channel composes amplitude damping with decay
    probability ``1 - exp(-duration/t1)`` and pure dephasing chosen so the
    total coherence decay matches ``exp(-duration/t2)``.  ``t2`` is capped
    at ``2 * t1`` (physicality constraint).
    """
    if duration < 0:
        raise ValueError("duration must be non-negative")
    if t1 <= 0 or t2 <= 0:
        raise ValueError("T1 and T2 must be positive")
    t2 = min(t2, 2.0 * t1)
    gamma = 1.0 - np.exp(-duration / t1)
    # Pure-dephasing rate: 1/T_phi = 1/T2 - 1/(2 T1).
    inverse_t_phi = max(1.0 / t2 - 1.0 / (2.0 * t1), 0.0)
    lam = 1.0 - np.exp(-2.0 * duration * inverse_t_phi)
    amplitude = amplitude_damping_channel(float(gamma))
    dephasing = phase_damping_channel(float(lam))
    return compose_channels(
        f"thermal_relaxation(t={duration:.3g})", amplitude, dephasing
    )


def compose_channels(name: str, *channels: KrausChannel) -> KrausChannel:
    """Compose channels acting on the same qubits (applied left to right)."""
    if not channels:
        raise ValueError("need at least one channel to compose")
    operators: List[np.ndarray] = [np.eye(channels[0].operators[0].shape[0], dtype=complex)]
    for channel in channels:
        operators = [k @ op for op in operators for k in channel.operators]
    # Drop numerically negligible operators to keep trajectory sampling fast.
    kept = [op for op in operators if np.linalg.norm(op) > 1e-12]
    return KrausChannel(name, tuple(kept))


def expand_channel(channel: KrausChannel, copies: int) -> KrausChannel:
    """Tensor ``copies`` independent copies of a single-qubit channel together."""
    if channel.num_qubits != 1:
        raise ValueError("expand_channel expects a single-qubit channel")
    operators = [np.array([[1.0 + 0j]])]
    for _ in range(copies):
        operators = [np.kron(op, k) for op in operators for k in channel.operators]
    kept = [op for op in operators if np.linalg.norm(op) > 1e-12]
    return KrausChannel(f"{channel.name}^x{copies}", tuple(kept))


def average_channel_fidelity(channel: KrausChannel) -> float:
    """Average gate fidelity of a channel relative to the identity.

    ``F_avg = (sum_k |Tr K_k|^2 + d) / (d^2 + d)``.
    """
    dim = channel.operators[0].shape[0]
    total = sum(abs(np.trace(op)) ** 2 for op in channel.operators)
    return float((total + dim) / (dim**2 + dim))
