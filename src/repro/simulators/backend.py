"""Simulator backends: one protocol, a named registry, shared noise programs.

The experiments need the *same* computation -- "noisy output distribution
of a compiled circuit" -- at several cost/accuracy points: exact
density-matrix evolution for small circuits, Monte-Carlo trajectories for
wide ones, and an analytic estimate for triaging.  Mirroring the
simulator protocols of Cirq (``SimulatesSamples`` /
``SimulatesFinalState``) and quantumsim's backend-per-representation
design, every such strategy here is a :class:`SimulatorBackend`: a named,
versioned object that consumes a precompiled
:class:`~repro.simulators.noise_program.NoiseProgram` and returns the
output probability distribution over the circuit's (slot-order) qubits.

Backends share the program, so the per-moment Kraus-channel lowering is
done once per (compiled circuit x calibration) no matter which backend --
or how many backends -- run it.  The registry makes the choice a *name*
(``--backend`` on the CLI, ``backend=`` on ``run_study``,
``SimulationOptions.method``) instead of a code path:

* ``density-matrix`` -- exact, all Kraus branches, ``4^n`` memory;
* ``trajectory`` -- Monte-Carlo unravelling, ``T x 2^n`` memory;
* ``estimator`` -- analytic fidelity-product estimate, no state at all;
* ``auto`` -- the qubit-threshold dispatch the experiments always used
  (density matrix up to ``SimulationOptions.max_density_matrix_qubits``,
  trajectories beyond), reproducing the legacy ``simulate_compiled``
  behaviour bit-identically under ``REPRO_SIM_KERNEL=reference`` (and to
  ``<= 1e-10`` under the default fused kernel).

Backends carry a ``version``; it is part of the simulation-result cache
key (:mod:`repro.experiments.engine`), so changing a backend's numerics
orphans its persisted results instead of serving stale ones.

The exact backends run one of two **kernels**, selected by the
``REPRO_SIM_KERNEL`` environment variable (:func:`active_simulation_kernel`):

* ``fused`` (the default) -- the fused superoperator / pre-stacked
  channel kernels of :mod:`repro.simulators.superop`: one numpy
  contraction per fused channel group instead of one per Kraus operator.
  Numerically equal but not bit-identical to the sequential loops (float
  reassociation), held to ``<= 1e-10`` max-abs deviation.
* ``reference`` -- the pinned sequential replay kernels
  (:func:`~repro.simulators.density_matrix.apply_program_to_density_matrix`,
  :func:`~repro.simulators.trajectory.apply_program_to_states`),
  bit-identical to every pre-fused release.

The active kernel determines the backend ``version`` (fused results are
keyed under a bumped version), so fused and reference runs never share
simulation-cache entries and switching kernels never serves the other
kernel's vectors.

Invocation counters (:func:`backend_invocation_counts`) exist so tests
and benchmarks can *prove* a warm study skipped simulation entirely.
"""

from __future__ import annotations

import abc
import threading
import warnings
from typing import TYPE_CHECKING, Dict, List, Sequence, Union

import numpy as np

from repro.config import str_env
from repro.resilience.faults import maybe_raise_fault
from repro.simulators.density_matrix import (
    MAX_DENSITY_MATRIX_QUBITS,
    DensityMatrixResult,
    apply_program_to_density_matrix,
)
from repro.simulators.estimator import program_fidelity_estimate
from repro.simulators.noise_program import NoiseProgram
from repro.simulators.statevector import apply_gate, zero_state, zero_states
from repro.simulators.superop import (
    apply_superop_program,
    apply_superop_program_batch,
    apply_trajectory_plan_to_states,
    batch_superop_programs,
    superop_program_for,
    trajectory_plan_for,
)
from repro.simulators.trajectory import apply_program_to_states

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.experiments.runner import SimulationOptions

SIM_KERNEL_ENV_VAR = "REPRO_SIM_KERNEL"
"""Environment variable selecting the simulation kernel."""

SIM_KERNELS = ("fused", "reference")
"""Recognised kernel names, fastest first (the first is the default)."""


_WARNED_INVALID_KERNELS: set = set()
_WARNED_INVALID_KERNELS_LOCK = threading.Lock()


def reset_simulation_kernel_warnings() -> None:
    """Forget which invalid kernel values already warned (tests)."""
    with _WARNED_INVALID_KERNELS_LOCK:
        _WARNED_INVALID_KERNELS.clear()


def active_simulation_kernel() -> str:
    """The selected simulation kernel (``fused`` unless overridden).

    Reads ``REPRO_SIM_KERNEL`` on every call so tests and child processes
    can switch kernels without re-importing; unknown values fall back to
    the default with a warning instead of silently changing numerics.
    The warning fires once per distinct invalid value per process -- this
    function runs on every simulate call, and a long-lived ``repro
    serve`` daemon must not repeat the same warning per request.
    """
    raw = str_env(SIM_KERNEL_ENV_VAR, lower=True)
    if not raw:
        return SIM_KERNELS[0]
    if raw not in SIM_KERNELS:
        with _WARNED_INVALID_KERNELS_LOCK:
            first_time = raw not in _WARNED_INVALID_KERNELS
            _WARNED_INVALID_KERNELS.add(raw)
        if first_time:
            known = ", ".join(SIM_KERNELS)
            warnings.warn(
                f"ignoring invalid {SIM_KERNEL_ENV_VAR}={raw!r} (known kernels: "
                f"{known}); using {SIM_KERNELS[0]!r}",
                RuntimeWarning,
                stacklevel=2,
            )
        return SIM_KERNELS[0]
    return raw


class SimulatorBackend(abc.ABC):
    """A named strategy producing the noisy output distribution of a program.

    Implementations must be stateless (one shared instance serves every
    caller and worker) and pure: all randomness is seeded from the
    ``options`` argument, never from shared state.
    """

    name: str = "abstract"
    version: int = 1
    """Bump when the backend's numerics change; cached simulation results
    are keyed on (name, version) so stale vectors are never served."""
    description: str = ""

    @abc.abstractmethod
    def run(self, program: NoiseProgram, options: "SimulationOptions") -> np.ndarray:
        """Output probability distribution (slot order) of ``program``."""

    def supports_batched_run(
        self, program: NoiseProgram, options: "SimulationOptions"
    ) -> bool:
        """Whether :meth:`run_batch` can vectorise over programs like this one.

        The engine only groups prepared jobs whose effective backend
        answers ``True``; everything else keeps the per-job ``run`` path.
        Default: no batching.
        """
        return False

    def run_batch(
        self, programs: Sequence[NoiseProgram], options: "SimulationOptions"
    ) -> List[np.ndarray]:
        """Output distributions for same-structure ``programs`` in one pass.

        Programs must share fused-group *structure* (same qubit supports
        per group -- the error-scale-sweep case); results are returned in
        input order and must match per-program :meth:`run` to within the
        fused kernel's ``<= 1e-10`` bar.  Counts **one** invocation per
        vectorised pass, so invocation counters still prove warm studies
        did no backend work.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not implement batched runs"
        )

    def effective_backend(
        self, program: NoiseProgram, options: "SimulationOptions"
    ) -> "SimulatorBackend":
        """The backend that will actually produce this program's numbers.

        Concrete backends return themselves; dispatchers (``auto``)
        return the delegate they would hand the program to.  The engine
        keys the simulation-result cache on the *effective* backend, so
        ``auto`` and an explicit spelling of its delegate share entries,
        and bumping the delegate's ``version`` orphans results produced
        through ``auto`` too (a cache keyed on ``("auto", 1)`` would keep
        serving a re-versioned delegate's stale vectors forever).
        """
        return self


# ---------------------------------------------------------------------------
# Invocation accounting
# ---------------------------------------------------------------------------

_INVOCATIONS: Dict[str, int] = {}
_INVOCATIONS_LOCK = threading.Lock()


def _count_invocation(name: str) -> None:
    # The ``backend.run`` fault point sits here -- the one funnel every
    # concrete backend (and the batched path) passes through -- and is
    # consulted *before* counting, so a faulted invocation never
    # increments the counter: after the retry layer recovers, the
    # invocation counts match the fault-free run exactly.
    maybe_raise_fault("backend.run")
    with _INVOCATIONS_LOCK:
        _INVOCATIONS[name] = _INVOCATIONS.get(name, 0) + 1


def backend_invocation_counts() -> Dict[str, int]:
    """Number of ``run`` calls per backend name since the last reset.

    ``auto`` counts both itself and the backend it delegated to, so a sum
    of zero means no backend did any work at all -- the property the
    warm-start simulation-cache benchmark asserts.  Counters are
    process-local (worker processes count in their own interpreter).
    """
    with _INVOCATIONS_LOCK:
        return dict(_INVOCATIONS)


def reset_backend_invocation_counts() -> None:
    """Zero the per-backend invocation counters (tests/benchmarks)."""
    with _INVOCATIONS_LOCK:
        _INVOCATIONS.clear()


# ---------------------------------------------------------------------------
# Concrete backends
# ---------------------------------------------------------------------------


class DensityMatrixBackend(SimulatorBackend):
    """Exact noisy simulation: replay every Kraus branch on a density matrix.

    Runs the fused superoperator kernel by default (one contraction per
    fused channel group) and the pinned sequential replay under
    ``REPRO_SIM_KERNEL=reference``; the two carry distinct ``version``
    values so their simulation-cache entries never collide.
    """

    name = "density-matrix"
    reference_version = 1
    """Cache-key version of the pinned sequential replay kernel --
    unchanged since the registry shipped, so reference-kernel runs keep
    warm-starting from pre-fused caches."""
    fused_version = 2
    """Cache-key version of the fused superoperator kernel."""
    description = "exact density-matrix evolution (4^n memory, all Kraus branches)"

    @property
    def version(self) -> int:
        return (
            self.fused_version
            if active_simulation_kernel() == "fused"
            else self.reference_version
        )

    def run(self, program: NoiseProgram, options: "SimulationOptions") -> np.ndarray:
        _count_invocation(self.name)
        n = program.num_qubits
        if n > MAX_DENSITY_MATRIX_QUBITS:
            raise ValueError(
                f"density-matrix simulation limited to {MAX_DENSITY_MATRIX_QUBITS} "
                "qubits; use the trajectory backend for larger circuits"
            )
        dim = 2**n
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
        if active_simulation_kernel() == "fused":
            rho = apply_superop_program(superop_program_for(program), rho)
        else:
            rho = apply_program_to_density_matrix(program, rho)
        return DensityMatrixResult(density_matrix=rho, num_qubits=n).probabilities()

    def supports_batched_run(
        self, program: NoiseProgram, options: "SimulationOptions"
    ) -> bool:
        """Batched replay exists only for the fused superoperator kernel.

        The reference kernel is the byte-identity baseline and stays a
        strictly sequential per-program replay.
        """
        return (
            active_simulation_kernel() == "fused"
            and program.num_qubits <= MAX_DENSITY_MATRIX_QUBITS
        )

    def run_batch(
        self, programs: Sequence[NoiseProgram], options: "SimulationOptions"
    ) -> List[np.ndarray]:
        """One vectorised fused replay over a stack of |0><0| matrices.

        Stacks the per-program fused-group tensors into ``(B, 4^k, 4^k)``
        operators (:func:`~repro.simulators.superop.batch_superop_programs`)
        and applies each group with a single batched contraction.  Falls
        back to sequential ``run`` calls when the fused kernel is not
        active (each counting its own invocation, preserving reference
        semantics exactly).
        """
        programs = list(programs)
        if not programs:
            return []
        if not self.supports_batched_run(programs[0], options):
            return [self.run(program, options) for program in programs]
        _count_invocation(self.name)
        n = programs[0].num_qubits
        dim = 2**n
        program_batch = batch_superop_programs(
            [superop_program_for(program) for program in programs]
        )
        rhos = np.zeros((len(programs), dim, dim), dtype=complex)
        rhos[:, 0, 0] = 1.0
        evolved = apply_superop_program_batch(program_batch, rhos)
        return [
            DensityMatrixResult(density_matrix=rho, num_qubits=n).probabilities()
            for rho in evolved
        ]


class TrajectoryBackend(SimulatorBackend):
    """Monte-Carlo trajectory simulation, vectorised over trajectories.

    Runs the pre-stacked channel kernel by default (all Kraus branches of
    a channel in one contraction, cached reshape/transpose plans) and the
    pinned sequential replay under ``REPRO_SIM_KERNEL=reference``; the
    two carry distinct ``version`` values so their simulation-cache
    entries never collide.
    """

    name = "trajectory"
    reference_version = 1
    """Cache-key version of the pinned sequential replay kernel."""
    fused_version = 2
    """Cache-key version of the pre-stacked channel kernel."""
    description = "Monte-Carlo trajectory averaging (T x 2^n memory, seeded)"

    @property
    def version(self) -> int:
        return (
            self.fused_version
            if active_simulation_kernel() == "fused"
            else self.reference_version
        )

    def run(self, program: NoiseProgram, options: "SimulationOptions") -> np.ndarray:
        _count_invocation(self.name)
        rng = np.random.default_rng(options.seed)
        states = zero_states(options.trajectories, program.num_qubits)
        if active_simulation_kernel() == "fused":
            states = apply_trajectory_plan_to_states(
                trajectory_plan_for(program), states, rng
            )
        else:
            states = apply_program_to_states(program, states, rng)
        return np.mean(np.abs(states) ** 2, axis=0)


class EstimatorBackend(SimulatorBackend):
    """Analytic estimate: ideal distribution depolarised by the fidelity product.

    The paper's fidelity model (Section V.B): the product of the average
    fidelities of every channel in the program estimates the probability
    the execution was error-free; with probability ``1 - F`` the output is
    modelled as fully depolarised (uniform).  No quantum state is ever
    materialised beyond one ideal statevector, so this backend is cheap
    enough for triaging sweeps that the exact backends cannot cover.
    """

    name = "estimator"
    version = 1
    description = "analytic F*ideal + (1-F)*uniform estimate (no noisy state)"

    def run(self, program: NoiseProgram, options: "SimulationOptions") -> np.ndarray:
        _count_invocation(self.name)
        n = program.num_qubits
        state = zero_state(n)
        for moment in program.moments:
            for operation in moment.operations:
                state = apply_gate(state, operation.matrix, operation.qubits, n)
        ideal = np.abs(state) ** 2
        total = ideal.sum()
        if total <= 0:
            raise ValueError("program produced a zero-norm ideal state")
        ideal = ideal / total
        fidelity = program_fidelity_estimate(program)
        return fidelity * ideal + (1.0 - fidelity) / ideal.size


class AutoBackend(SimulatorBackend):
    """The legacy qubit-threshold dispatch, as a backend.

    Delegates to ``density-matrix`` for circuits up to
    ``options.max_density_matrix_qubits`` qubits and to ``trajectory``
    beyond -- exactly the hard-coded dispatch the original
    ``simulate_compiled`` used, so studies run with ``auto`` (the default)
    are bit-identical to every pre-registry release.
    """

    name = "auto"
    version = 1
    description = "threshold dispatch: density-matrix up to max_density_matrix_qubits, else trajectory"

    def run(self, program: NoiseProgram, options: "SimulationOptions") -> np.ndarray:
        _count_invocation(self.name)
        return self.effective_backend(program, options).run(program, options)

    def effective_backend(
        self, program: NoiseProgram, options: "SimulationOptions"
    ) -> SimulatorBackend:
        if program.num_qubits <= options.max_density_matrix_qubits:
            return resolve_backend("density-matrix")
        return resolve_backend("trajectory")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, SimulatorBackend] = {}
_REGISTRY_LOCK = threading.Lock()


def register_backend(backend: SimulatorBackend, overwrite: bool = False) -> None:
    """Add a backend to the registry under its ``name``.

    Registration is additive by default; pass ``overwrite=True`` to
    replace an existing backend (e.g. a test double).
    """
    with _REGISTRY_LOCK:
        if not overwrite and backend.name in _REGISTRY:
            raise ValueError(f"backend {backend.name!r} is already registered")
        _REGISTRY[backend.name] = backend


def available_backends() -> Dict[str, SimulatorBackend]:
    """Registered backends by name (a copy; mutating it changes nothing)."""
    with _REGISTRY_LOCK:
        return dict(_REGISTRY)


def resolve_backend(backend: Union[str, SimulatorBackend]) -> SimulatorBackend:
    """Look up a backend by name (instances pass through unchanged)."""
    if isinstance(backend, SimulatorBackend):
        return backend
    with _REGISTRY_LOCK:
        resolved = _REGISTRY.get(backend)
    if resolved is None:
        known = ", ".join(sorted(available_backends()))
        raise ValueError(
            f"unknown simulator backend {backend!r}; registered backends: {known}"
        )
    return resolved


for _backend in (
    DensityMatrixBackend(),
    TrajectoryBackend(),
    EstimatorBackend(),
    AutoBackend(),
):
    register_backend(_backend)
del _backend
