"""Pluggable array-operations layer for the simulation kernels.

The fused superoperator kernels (:mod:`repro.simulators.superop`) are a
handful of dense-linear-algebra primitives -- ``tensordot``, batched
``matmul``, ``transpose``, ``reshape``, ``einsum``, ``stack`` -- applied
to complex tensors.  Nothing about them is numpy-specific: the same
contractions run unchanged on any array library exposing the numpy API
surface (the ``DensityMatrixBase``/CUDA backend split in quantumsim and
Cirq's density-matrix simulator follow the same pattern).  This module
is the seam: an :class:`ArrayBackend` protocol with a named registry,
a numpy default, and an optional ``cupy`` adapter that **degrades to
numpy with a warning** when CUDA/cupy is unavailable (this container
has no GPU; the adapter exists so one does not require a code change).

Selection is the ``REPRO_ARRAY_BACKEND`` environment variable, re-read
on every :func:`active_array_backend` call (so tests and child processes
can switch without re-importing).  Policy mirrors ``REPRO_SIM_KERNEL``:
unknown values warn **once per distinct invalid value per process** and
fall back to numpy -- a long-lived ``repro serve`` daemon must not emit
the same warning per request.  :class:`~repro.experiments.runner.SimulationOptions`
additionally validates the variable *eagerly* at option construction
(:func:`validate_array_backend_env`), so a typo raises a ``ValueError``
before a study starts instead of warning mid-study from a worker.

The numpy backend binds the ``np.*`` functions directly, so kernels
routed through it execute the *identical* numpy calls they made before
this layer existed -- numerics (and therefore the fused kernel's pinned
``<= 1e-10`` deviation bar and simulation-cache versions) are unchanged.

Batched-replay accounting lives here too: every vectorised pass through
:func:`repro.simulators.superop.apply_superop_program_batch` records one
pass and its item count against the active backend's name
(:func:`record_batched_apply`), surfaced by ``repro cache stats`` and the
service's ``/v1/stats``.
"""

from __future__ import annotations

import threading
import warnings
from typing import Dict, Optional, Sequence

import numpy as np

from repro.config import str_env

ARRAY_BACKEND_ENV_VAR = "REPRO_ARRAY_BACKEND"
"""Environment variable selecting the array-operations backend."""

DEFAULT_ARRAY_BACKEND = "numpy"


class ArrayBackend:
    """The minimal array-API surface the simulation kernels contract over.

    Implementations must be stateless (one shared instance serves every
    caller and worker thread).  ``asarray`` moves host data onto the
    backend's device; ``to_numpy`` brings results back (identity for
    numpy).  Everything in between operates on backend-native arrays.
    """

    name: str = "abstract"
    description: str = ""

    def asarray(self, array, dtype=None):
        raise NotImplementedError

    def to_numpy(self, array) -> np.ndarray:
        raise NotImplementedError

    def tensordot(self, a, b, axes):
        raise NotImplementedError

    def matmul(self, a, b):
        raise NotImplementedError

    def transpose(self, array, axes):
        raise NotImplementedError

    def reshape(self, array, shape):
        raise NotImplementedError

    def einsum(self, subscripts, *operands):
        raise NotImplementedError

    def stack(self, arrays: Sequence, axis: int = 0):
        raise NotImplementedError

    def is_available(self) -> bool:
        """Whether the backend can actually run on this host."""
        return True


class NumpyArrayBackend(ArrayBackend):
    """The default: plain numpy, binding ``np.*`` directly.

    Kernels routed through this backend execute the identical numpy
    calls they made before the array-ops layer existed, so results are
    bit-identical to the pre-layer fused kernels.
    """

    name = "numpy"
    description = "numpy on the host CPU (the default; bit-identical to the pre-layer kernels)"

    def asarray(self, array, dtype=None):
        return np.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    tensordot = staticmethod(np.tensordot)
    matmul = staticmethod(np.matmul)

    def transpose(self, array, axes):
        return np.transpose(array, axes)

    def reshape(self, array, shape):
        return np.reshape(array, shape)

    def einsum(self, subscripts, *operands):
        return np.einsum(subscripts, *operands)

    def stack(self, arrays: Sequence, axis: int = 0):
        return np.stack(arrays, axis=axis)


class CupyArrayBackend(ArrayBackend):
    """GPU adapter over ``cupy`` (same API surface as numpy).

    This container ships no GPU/cupy, so the adapter's main observable
    behaviour here is its **degradation contract**: resolving ``cupy``
    when the import fails returns the numpy backend with a
    :class:`RuntimeWarning` instead of crashing the study -- the env
    knob stays portable across hosts with and without CUDA.
    """

    name = "cupy"
    description = "cupy on the GPU (degrades to numpy with a warning when unavailable)"

    def __init__(self) -> None:
        try:  # pragma: no cover - exercised only on CUDA hosts
            import cupy  # type: ignore

            self._cupy = cupy
        except Exception:
            self._cupy = None

    def is_available(self) -> bool:
        return self._cupy is not None

    # pragma-no-cover rationale: every method below requires a working
    # cupy install; the degradation path (resolve -> numpy) is what CI
    # exercises.
    def asarray(self, array, dtype=None):  # pragma: no cover
        return self._cupy.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:  # pragma: no cover
        return self._cupy.asnumpy(array)

    def tensordot(self, a, b, axes):  # pragma: no cover
        return self._cupy.tensordot(a, b, axes=axes)

    def matmul(self, a, b):  # pragma: no cover
        return self._cupy.matmul(a, b)

    def transpose(self, array, axes):  # pragma: no cover
        return self._cupy.transpose(array, axes)

    def reshape(self, array, shape):  # pragma: no cover
        return self._cupy.reshape(array, shape)

    def einsum(self, subscripts, *operands):  # pragma: no cover
        return self._cupy.einsum(subscripts, *operands)

    def stack(self, arrays: Sequence, axis: int = 0):  # pragma: no cover
        return self._cupy.stack(arrays, axis=axis)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, ArrayBackend] = {}
_REGISTRY_LOCK = threading.Lock()


def register_array_backend(backend: ArrayBackend, overwrite: bool = False) -> None:
    """Add an array backend to the registry under its ``name``."""
    with _REGISTRY_LOCK:
        if not overwrite and backend.name in _REGISTRY:
            raise ValueError(f"array backend {backend.name!r} is already registered")
        _REGISTRY[backend.name] = backend


def available_array_backends() -> Dict[str, ArrayBackend]:
    """Registered array backends by name (a copy)."""
    with _REGISTRY_LOCK:
        return dict(_REGISTRY)


def resolve_array_backend(name: str) -> ArrayBackend:
    """Look up an array backend by name, degrading unavailable ones to numpy.

    Unknown names raise ``ValueError`` (listing the known ones); known
    but unavailable backends -- ``cupy`` without a CUDA install -- warn
    once per process and return the numpy default, so the same
    environment works on GPU and CPU hosts.
    """
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
    if backend is None:
        known = ", ".join(sorted(available_array_backends()))
        raise ValueError(f"unknown array backend {name!r}; known backends: {known}")
    if not backend.is_available():
        _warn_once(
            ("unavailable", backend.name),
            f"array backend {backend.name!r} is not available on this host "
            f"(import failed); falling back to {DEFAULT_ARRAY_BACKEND!r}",
        )
        with _REGISTRY_LOCK:
            return _REGISTRY[DEFAULT_ARRAY_BACKEND]
    return backend


# ---------------------------------------------------------------------------
# Environment selection (re-read per call, warn once per invalid value)
# ---------------------------------------------------------------------------

_WARNED: set = set()
_WARNED_LOCK = threading.Lock()


def _warn_once(key, message: str) -> None:
    """Emit ``message`` as a RuntimeWarning at most once per ``key``.

    A long-lived daemon consults the environment on every request;
    per-process dedup keeps an invalid value from flooding its log while
    still surfacing each *distinct* mistake.
    """
    with _WARNED_LOCK:
        if key in _WARNED:
            return
        _WARNED.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=4)


def reset_array_backend_warnings() -> None:
    """Forget which invalid/unavailable values already warned (tests)."""
    with _WARNED_LOCK:
        _WARNED.clear()


def active_array_backend() -> ArrayBackend:
    """The selected array backend (numpy unless overridden).

    Reads ``REPRO_ARRAY_BACKEND`` on every call.  Unknown values fall
    back to numpy with a warning emitted once per distinct invalid value
    per process; :func:`validate_array_backend_env` offers the strict
    (raising) check for option-construction time.
    """
    raw = str_env(ARRAY_BACKEND_ENV_VAR, lower=True)
    if not raw or raw == DEFAULT_ARRAY_BACKEND:
        with _REGISTRY_LOCK:
            return _REGISTRY[DEFAULT_ARRAY_BACKEND]
    try:
        return resolve_array_backend(raw)
    except ValueError:
        known = ", ".join(sorted(available_array_backends()))
        _warn_once(
            ("invalid", raw),
            f"ignoring invalid {ARRAY_BACKEND_ENV_VAR}={raw!r} (known backends: "
            f"{known}); using {DEFAULT_ARRAY_BACKEND!r}",
        )
        with _REGISTRY_LOCK:
            return _REGISTRY[DEFAULT_ARRAY_BACKEND]


def validate_array_backend_env() -> Optional[str]:
    """Raise ``ValueError`` when ``REPRO_ARRAY_BACKEND`` names no backend.

    The eager companion to :func:`active_array_backend`'s lenient read:
    called from ``SimulationOptions.__post_init__`` so a typo'd backend
    name fails at option construction -- in the caller's stack frame,
    before any compile or worker gets involved -- instead of warning
    mid-study.  Returns the (lower-cased) requested name, or ``None``
    when the variable is unset.  Availability is *not* checked here:
    ``cupy`` on a CPU-only host is a valid request that degrades at
    resolve time, not a spec error.
    """
    raw = str_env(ARRAY_BACKEND_ENV_VAR, lower=True)
    if not raw:
        return None
    if raw not in available_array_backends():
        known = ", ".join(sorted(available_array_backends()))
        raise ValueError(
            f"{ARRAY_BACKEND_ENV_VAR}={raw!r} names no registered array "
            f"backend (known: {known})"
        )
    return raw


# ---------------------------------------------------------------------------
# Batched-replay accounting (per backend name)
# ---------------------------------------------------------------------------

_BATCH_STATS: Dict[str, Dict[str, int]] = {}
_BATCH_STATS_LOCK = threading.Lock()


def record_batched_apply(backend_name: str, items: int) -> None:
    """Count one vectorised pass of ``items`` stacked density matrices."""
    with _BATCH_STATS_LOCK:
        entry = _BATCH_STATS.setdefault(
            backend_name, {"batched_passes": 0, "batched_items": 0}
        )
        entry["batched_passes"] += 1
        entry["batched_items"] += int(items)


def array_backend_stats() -> Dict[str, Dict[str, int]]:
    """Per-array-backend batched-replay counters since the last reset.

    ``batched_passes`` counts vectorised kernel passes; ``batched_items``
    the total density matrices they carried (so ``items / passes`` is the
    realised mean batch size).  Surfaced by ``repro cache stats`` and the
    service ``/v1/stats`` payload.
    """
    with _BATCH_STATS_LOCK:
        return {name: dict(entry) for name, entry in _BATCH_STATS.items()}


def reset_array_backend_stats() -> None:
    """Zero the batched-replay counters (tests/benchmarks)."""
    with _BATCH_STATS_LOCK:
        _BATCH_STATS.clear()


for _backend in (NumpyArrayBackend(), CupyArrayBackend()):
    register_array_backend(_backend)
del _backend
