"""Precompiled noise programs: circuits lowered once for every backend.

Every noisy simulator in :mod:`repro.simulators` used to walk the same
path on every run: group the circuit into ASAP moments, look up each
operation's duration, build the depolarizing + thermal-relaxation Kraus
channels from the :class:`~repro.simulators.noise_model.NoiseModel`, and
construct idle channels for the qubits a moment leaves untouched.  The
channel *construction* (matrix products, channel composition, operator
pruning) is pure bookkeeping that depends only on the circuit and the
calibration data -- yet the density-matrix simulator redid it per run and
the trajectory simulator per batch.

A :class:`NoiseProgram` is that lowering done once: a per-moment list of
gate unitaries, per-operation error channels, idle channels and the
moment duration.  Backends (:mod:`repro.simulators.backend`) replay the
program in order, which makes them bit-identical to the legacy inline
loops by construction -- the program records exactly the operations those
loops would have derived, in exactly the order they would have applied
them.

Programs are immutable once built: replays never mutate them, so one
program is safely shared across backends, worker pools (they pickle by
value) and the process-wide cache below.  :func:`noise_program_for`
caches lowered programs per (compiled-circuit content x device
calibration x physical qubits), so a study that simulates the same
compiled circuit repeatedly -- or a warm re-run of a whole study -- pays
the lowering cost once.

:meth:`NoiseProgram.fingerprint` digests the full program content (gate
matrices, every Kraus operator, qubit tuples, durations), giving the
simulation-result cache (:mod:`repro.experiments.engine`,
:mod:`repro.caching.disk`) a key component that is stable across
processes and insensitive to unrelated device state (a gate type
registered for a *different* instruction set changes the device's
calibration fingerprint but not the program lowered for this circuit).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import as_moments
from repro.circuits.hashing import (
    circuit_fingerprint,
    update_digest_array,
    update_digest_scalars,
)
from repro.simulators.noise import KrausChannel
from repro.simulators.noise_model import NoiseModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.core.pipeline import CompiledCircuit
    from repro.devices.device import Device

ChannelApplication = Tuple[KrausChannel, Tuple[int, ...]]
"""A Kraus channel plus the circuit qubits it acts on."""


@dataclass(frozen=True)
class ProgramOperation:
    """One gate application plus the error channels that follow it."""

    matrix: "object"  # np.ndarray; kept loose so frozen dataclass pickles cleanly
    qubits: Tuple[int, ...]
    channels: Tuple[ChannelApplication, ...] = ()


@dataclass(frozen=True)
class ProgramMoment:
    """One ASAP layer: operations, then idle noise on untouched qubits."""

    operations: Tuple[ProgramOperation, ...]
    idle_channels: Tuple[ChannelApplication, ...] = ()
    duration: float = 0.0


@dataclass
class NoiseProgram:
    """A circuit lowered against a noise model, ready for any backend.

    Treat instances as immutable: they are shared between backends,
    cached process-wide and shipped to worker processes.
    """

    num_qubits: int
    moments: Tuple[ProgramMoment, ...]
    _fingerprint: Optional[str] = field(default=None, repr=False, compare=False)
    _superop: Optional[object] = field(default=None, repr=False, compare=False)
    """Lazily derived fused-superoperator lowering
    (:func:`repro.simulators.superop.superop_program_for`); cached on the
    program so it is computed once and travels with pickled programs."""
    _trajectory_plan: Optional[object] = field(default=None, repr=False, compare=False)
    """Lazily derived pre-stacked trajectory plan
    (:func:`repro.simulators.superop.trajectory_plan_for`)."""

    def num_operations(self) -> int:
        """Total gate applications across all moments."""
        return sum(len(moment.operations) for moment in self.moments)

    def num_channel_applications(self) -> int:
        """Total error-channel applications (gate noise plus idle noise)."""
        return sum(
            sum(len(op.channels) for op in moment.operations) + len(moment.idle_channels)
            for moment in self.moments
        )

    def fingerprint(self) -> str:
        """Content digest of the whole program (computed once, then cached).

        Covers every gate matrix, every Kraus operator, all qubit tuples
        and all durations -- two programs with equal fingerprints replay
        identically on every backend.  Channel *names* are deliberately
        excluded (they render parameters at low precision); the operators
        are the authoritative content.
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            update_digest_scalars(
                digest, "noise-program", self.num_qubits, len(self.moments)
            )
            for moment in self.moments:
                update_digest_scalars(
                    digest,
                    "moment",
                    moment.duration,
                    len(moment.operations),
                    len(moment.idle_channels),
                )
                for operation in moment.operations:
                    update_digest_scalars(digest, "op", *operation.qubits)
                    update_digest_array(digest, operation.matrix)
                    for channel, qubits in operation.channels:
                        update_digest_scalars(digest, "chan", *qubits)
                        for operator in channel.operators:
                            update_digest_array(digest, operator)
                for channel, qubits in moment.idle_channels:
                    update_digest_scalars(digest, "idle", *qubits)
                    for operator in channel.operators:
                        update_digest_array(digest, operator)
            self._fingerprint = digest.hexdigest()
        return self._fingerprint


def build_noise_program(
    circuit: QuantumCircuit,
    noise_model: Optional[NoiseModel],
    physical_qubits: Optional[Sequence[int]] = None,
) -> NoiseProgram:
    """Lower ``circuit`` against ``noise_model`` into a :class:`NoiseProgram`.

    The lowering mirrors the inline loops the simulators used to run --
    ASAP moments, gate then per-operation error channels in declaration
    order, then idle channels in ascending qubit order for qubits the
    moment left untouched -- so replaying the program is bit-identical to
    the pre-program simulators.  ``noise_model=None`` lowers to a purely
    unitary program (no channels, zero durations).
    """
    n = circuit.num_qubits
    if physical_qubits is None:
        physical_qubits = list(range(n))
    moments: List[ProgramMoment] = []
    for moment in as_moments(circuit):
        if noise_model is None:
            duration = 0.0
        else:
            duration = max(
                (noise_model.operation_duration(op) for op in moment),
                default=0.0,
            )
        busy = set()
        operations: List[ProgramOperation] = []
        for operation in moment:
            busy.update(operation.qubits)
            channels: Tuple[ChannelApplication, ...] = ()
            if noise_model is not None:
                channels = tuple(
                    (channel, tuple(qubits))
                    for channel, qubits in noise_model.error_channels_for_operation(
                        operation, physical_qubits
                    )
                )
            operations.append(
                ProgramOperation(
                    matrix=operation.gate.matrix,
                    qubits=tuple(operation.qubits),
                    channels=channels,
                )
            )
        idle: List[ChannelApplication] = []
        if noise_model is not None and duration > 0:
            for qubit in range(n):
                if qubit in busy:
                    continue
                idle_channel = noise_model.idle_channel(
                    qubit, physical_qubits[qubit], duration
                )
                if idle_channel is not None:
                    channel, qubits = idle_channel
                    idle.append((channel, tuple(qubits)))
        moments.append(
            ProgramMoment(
                operations=tuple(operations),
                idle_channels=tuple(idle),
                duration=duration,
            )
        )
    return NoiseProgram(num_qubits=n, moments=tuple(moments))


# ---------------------------------------------------------------------------
# Process-wide program cache (per compiled circuit x calibration x placement)
# ---------------------------------------------------------------------------

_PROGRAM_CACHE: "OrderedDict[Tuple, NoiseProgram]" = OrderedDict()
_PROGRAM_CACHE_LOCK = threading.Lock()
_PROGRAM_CACHE_STATS = {"hits": 0, "misses": 0}

_DEFAULT_PROGRAM_CACHE_SIZE = 256
"""Default LRU bound: programs hold one small matrix per Kraus operator,
so a few hundred distinct compiled circuits stay comfortably in memory."""

PROGRAM_CACHE_SIZE_ENV_VAR = "REPRO_PROGRAM_CACHE_SIZE"
"""Environment variable overriding the noise-program LRU bound.  Read on
**every** consultation of the bound -- the same policy
``active_simulation_kernel`` and ``get_global_disk_cache`` follow -- so a
long-lived daemon picks up runtime changes without a restart.  (It used
to be frozen into a module global on first use, silently ignoring later
changes.)"""


def _program_cache_bound() -> int:
    """The noise-program LRU bound, configurable via the environment.

    Re-reads ``REPRO_PROGRAM_CACHE_SIZE`` on every call.  Invalid values
    -- non-numeric, zero or negative -- fall back to the documented
    default with a warning instead of being silently clamped
    (:func:`repro.config.positive_int_env`, the policy every cache-bound
    variable shares).
    """
    from repro.config import positive_int_env

    return positive_int_env(PROGRAM_CACHE_SIZE_ENV_VAR, _DEFAULT_PROGRAM_CACHE_SIZE)


def noise_program_for(
    compiled: "CompiledCircuit", device: "Device", error_scale: float = 1.0
) -> NoiseProgram:
    """The (cached) noise program of a compiled circuit on a device.

    Keyed by the compiled circuit's content, the device's calibration
    fingerprint, the physical-qubit placement and the error scale, so the
    expensive channel construction runs once per distinct (compiled
    circuit x calibration) instead of once per simulation -- the
    density-matrix path used to rebuild it per run and the trajectory
    path per batch.

    ``error_scale`` lowers the program against calibration whose
    two-qubit error rates are uniformly that much worse (the Figure 10
    sweep semantics), **relative to the registration scale** each gate
    type was calibrated with -- gate types a scaled instruction-set
    variant registered itself are not scaled twice.  The compiled circuit
    and therefore the program *structure* are untouched: sweep variants
    of one job replay the same moments with rescaled channel tensors,
    which is exactly what batched replay
    (:func:`repro.simulators.superop.apply_superop_program_batch`) groups.
    """
    scale = float(error_scale)
    key = (
        circuit_fingerprint(compiled.circuit),
        device.calibration_fingerprint(),
        tuple(compiled.physical_qubits),
        scale,
    )
    with _PROGRAM_CACHE_LOCK:
        cached = _PROGRAM_CACHE.get(key)
        if cached is not None:
            _PROGRAM_CACHE_STATS["hits"] += 1
            _PROGRAM_CACHE.move_to_end(key)
            return cached
        _PROGRAM_CACHE_STATS["misses"] += 1
    model = device.noise_model
    if scale != 1.0:
        model = model.scaled_two_qubit(scale, device.registered_type_scales())
    program = build_noise_program(
        compiled.circuit, model, list(compiled.physical_qubits)
    )
    program.fingerprint()  # compute once outside any lock; replays share it
    bound = _program_cache_bound()
    with _PROGRAM_CACHE_LOCK:
        _PROGRAM_CACHE[key] = program
        _PROGRAM_CACHE.move_to_end(key)
        while len(_PROGRAM_CACHE) > bound:
            _PROGRAM_CACHE.popitem(last=False)
    return program


def noise_program_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the noise-program cache."""
    bound = _program_cache_bound()
    with _PROGRAM_CACHE_LOCK:
        return {
            "hits": _PROGRAM_CACHE_STATS["hits"],
            "misses": _PROGRAM_CACHE_STATS["misses"],
            "entries": len(_PROGRAM_CACHE),
            "max_entries": bound,
        }


def clear_noise_program_cache() -> None:
    """Drop every cached program and reset the counters (tests/benchmarks).

    The LRU bound needs no reset: ``REPRO_PROGRAM_CACHE_SIZE`` is
    re-read on every consultation, so environment changes take effect
    immediately whether or not the cache is cleared.
    """
    with _PROGRAM_CACHE_LOCK:
        _PROGRAM_CACHE.clear()
        _PROGRAM_CACHE_STATS["hits"] = 0
        _PROGRAM_CACHE_STATS["misses"] = 0
