"""Density-matrix simulation with noise.

Exact (all Kraus branches) simulation of noisy circuits.  Memory scales as
``4^n`` so this simulator is used for the 3-6 qubit benchmark circuits of
Figures 7, 9 and 10; larger circuits (10/20-qubit Fermi-Hubbard) use the
Monte-Carlo trajectory simulator instead.

The simulation core is :func:`apply_program_to_density_matrix`, which
replays a precompiled :class:`~repro.simulators.noise_program.NoiseProgram`
(the per-moment gate/channel/idle lowering shared by every backend in
:mod:`repro.simulators.backend`).  :class:`DensityMatrixSimulator` is the
legacy circuit-level entry point: it lowers the circuit on the fly and
replays it, which keeps it bit-identical to the pre-program inline loop.

This module is the **reference kernel**: one operator application per
Kraus branch, in recorded order, pinned bit-identical to the original
inline loops.  The production default is the fused superoperator kernel
(:mod:`repro.simulators.superop`, selected by ``REPRO_SIM_KERNEL`` in
:mod:`repro.simulators.backend`), which applies one contraction per fused
channel group and is held to ``<= 1e-10`` of this kernel.  Do not
optimise the replay below; its stasis is the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.simulators.noise import KrausChannel
from repro.simulators.noise_model import NoiseModel
from repro.simulators.noise_program import NoiseProgram, build_noise_program

MAX_DENSITY_MATRIX_QUBITS = 12
"""Hard width ceiling of density-matrix simulation (``4^n`` memory).

The single source of truth for the cap: the :class:`DensityMatrixSimulator`
entry point, the ``density-matrix`` backend and
``SimulationOptions.max_density_matrix_qubits`` validation all reference
this constant instead of hardcoding their own copies."""


@dataclass
class DensityMatrixResult:
    """Final density matrix of a simulation plus convenience accessors."""

    density_matrix: np.ndarray
    num_qubits: int

    def probabilities(self) -> np.ndarray:
        """Computational-basis measurement probabilities."""
        probs = np.real(np.diagonal(self.density_matrix)).copy()
        probs[probs < 0] = 0.0
        total = probs.sum()
        if total <= 0:
            raise ValueError("density matrix has non-positive trace")
        return probs / total

    def purity(self) -> float:
        """Purity ``Tr(rho^2)`` of the final state."""
        rho = self.density_matrix
        return float(np.real(np.trace(rho @ rho)))

    def fidelity_with_state(self, state: np.ndarray) -> float:
        """Fidelity ``<psi| rho |psi>`` against a pure reference state."""
        state = np.asarray(state, dtype=complex)
        state = state / np.linalg.norm(state)
        return float(np.real(np.vdot(state, self.density_matrix @ state)))


def _apply_matrix_to_rho(
    rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply ``matrix . rho . matrix^dagger`` restricted to ``qubits``."""
    qubits = list(qubits)
    k = len(qubits)
    tensor = rho.reshape((2,) * (2 * num_qubits))
    gate = np.asarray(matrix, dtype=complex).reshape((2,) * (2 * k))

    # Left multiplication on the row axes.
    tensor = np.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), qubits))
    current = qubits + [axis for axis in range(2 * num_qubits) if axis not in qubits]
    inverse = [current.index(axis) for axis in range(2 * num_qubits)]
    tensor = np.transpose(tensor, inverse)

    # Right multiplication (by the conjugate) on the column axes.
    column_axes = [num_qubits + q for q in qubits]
    tensor = np.tensordot(gate.conj(), tensor, axes=(list(range(k, 2 * k)), column_axes))
    current = column_axes + [axis for axis in range(2 * num_qubits) if axis not in column_axes]
    inverse = [current.index(axis) for axis in range(2 * num_qubits)]
    tensor = np.transpose(tensor, inverse)

    dim = 2**num_qubits
    return tensor.reshape(dim, dim)


def apply_channel_to_rho(
    rho: np.ndarray, channel: KrausChannel, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a Kraus channel to the given qubits of a density matrix."""
    result = np.zeros_like(rho)
    for operator in channel.operators:
        result += _apply_matrix_to_rho(rho, operator, qubits, num_qubits)
    return result


def apply_program_to_density_matrix(
    program: NoiseProgram, rho: np.ndarray
) -> np.ndarray:
    """Replay a precompiled noise program on a density matrix.

    Applies, per moment, every gate followed by its error channels, then
    the moment's idle channels -- the exact order the lowering recorded,
    which is the order the pre-program inline loop used.
    """
    n = program.num_qubits
    for moment in program.moments:
        for operation in moment.operations:
            rho = _apply_matrix_to_rho(rho, operation.matrix, operation.qubits, n)
            for channel, qubits in operation.channels:
                rho = apply_channel_to_rho(rho, channel, qubits, n)
        for channel, qubits in moment.idle_channels:
            rho = apply_channel_to_rho(rho, channel, qubits, n)
    return rho


class DensityMatrixSimulator:
    """Noisy circuit simulator based on full density matrices."""

    def __init__(self, noise_model: Optional[NoiseModel] = None):
        self.noise_model = noise_model

    def run(
        self,
        circuit: QuantumCircuit,
        physical_qubits: Optional[Sequence[int]] = None,
        initial_state: Optional[np.ndarray] = None,
    ) -> DensityMatrixResult:
        """Simulate ``circuit`` and return the final density matrix.

        Parameters
        ----------
        circuit:
            Circuit expressed on ``circuit.num_qubits`` local qubits.
        physical_qubits:
            ``physical_qubits[i]`` is the physical (device) qubit backing
            circuit qubit ``i``; used only for noise-model lookups.
            Defaults to the identity mapping.
        initial_state:
            Optional pure initial state (defaults to ``|0...0>``).
        """
        n = circuit.num_qubits
        if n > MAX_DENSITY_MATRIX_QUBITS:
            raise ValueError(
                f"density-matrix simulation limited to {MAX_DENSITY_MATRIX_QUBITS} qubits; "
                "use the trajectory simulator for larger circuits"
            )
        if physical_qubits is None:
            physical_qubits = list(range(n))
        dim = 2**n
        if initial_state is None:
            rho = np.zeros((dim, dim), dtype=complex)
            rho[0, 0] = 1.0
        else:
            state = np.asarray(initial_state, dtype=complex)
            state = state / np.linalg.norm(state)
            rho = np.outer(state, state.conj())

        program = build_noise_program(circuit, self.noise_model, list(physical_qubits))
        rho = apply_program_to_density_matrix(program, rho)
        return DensityMatrixResult(density_matrix=rho, num_qubits=n)
