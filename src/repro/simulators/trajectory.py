"""Monte-Carlo (quantum trajectory) simulation of noisy circuits.

For circuits too large for density matrices (the 10- and 20-qubit
Fermi-Hubbard benchmarks of Figure 10f) noise is unravelled into
stochastic trajectories: each trajectory keeps a pure statevector and
samples one Kraus branch per error channel.  Averaging the output
distributions of many trajectories converges to the density-matrix result.

The simulator is *vectorised over trajectories*: all ``T`` trajectories of
one circuit advance together as a single stacked ``(T, 2^n)`` array, so
every gate application and every Kraus-branch evaluation is one numpy
tensor contraction instead of a Python loop over trajectories.  Branch
*selection* is the only per-trajectory decision, and it is sampled in bulk
(one uniform draw per trajectory per stochastic channel), so results are
deterministic for a fixed seed regardless of how the surrounding
experiment engine schedules work.

The simulation cores are :func:`apply_program_to_states` (batched) and
:func:`apply_program_to_state` (single trajectory), which replay a
precompiled :class:`~repro.simulators.noise_program.NoiseProgram` -- the
per-moment gate/channel/idle lowering shared by every backend in
:mod:`repro.simulators.backend`.  :class:`TrajectorySimulator` is the
legacy circuit-level entry point: it lowers the circuit on the fly and
replays it, which keeps it bit-identical to the pre-program inline loop
(the lowering preserves the channel order and therefore the RNG draw
order).

This module is the **reference kernel**: operators applied one at a
time, per-call index bookkeeping, pinned bit-identical to the original
inline loops.  The production default is the pre-stacked channel kernel
(:mod:`repro.simulators.superop`, selected by ``REPRO_SIM_KERNEL`` in
:mod:`repro.simulators.backend`), which contracts all Kraus branches of
a channel at once from cached plans and draws randomness in the same
order.  Do not optimise the replay below; its stasis is the point.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.simulators.noise import KrausChannel
from repro.simulators.noise_program import NoiseProgram, build_noise_program
from repro.simulators.noise_model import NoiseModel
from repro.simulators.statevector import (
    apply_gate,
    apply_gate_batch,
    zero_state,
    zero_states,
)

_BRANCH_STORAGE_LIMIT = 1 << 22
"""Max complex elements of pre-computed Kraus branches kept in memory at
once; beyond it the batched channel application recomputes the chosen
branch instead of storing every candidate (trades FLOPs for memory on
wide states such as the 20-qubit Fermi-Hubbard runs)."""


def _apply_channel_stochastically(
    state: np.ndarray,
    channel: KrausChannel,
    qubits: Sequence[int],
    num_qubits: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample one Kraus branch of ``channel`` and apply it to ``state``."""
    if len(channel.operators) == 1:
        return apply_gate(state, channel.operators[0], qubits, num_qubits)
    probabilities = []
    branches = []
    for operator in channel.operators:
        branch = apply_gate(state, operator, qubits, num_qubits)
        weight = float(np.real(np.vdot(branch, branch)))
        probabilities.append(weight)
        branches.append(branch)
    probabilities = np.asarray(probabilities)
    total = probabilities.sum()
    if total <= 0:
        raise RuntimeError("channel produced zero total probability")
    probabilities = probabilities / total
    choice = rng.choice(len(branches), p=probabilities)
    branch = branches[choice]
    return branch / np.linalg.norm(branch)


def _apply_channel_batch(
    states: np.ndarray,
    channel: KrausChannel,
    qubits: Sequence[int],
    num_qubits: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample one Kraus branch per trajectory and apply it, batched.

    Branch weights are ``||K_k |psi_t>||^2``; each trajectory draws its
    branch from its own weight distribution using a single bulk uniform
    sample, then the chosen branches are applied group-by-group (one
    batched gate application per distinct chosen operator).
    """
    operators = channel.operators
    if len(operators) == 1:
        return apply_gate_batch(states, operators[0], qubits, num_qubits)

    num_branches = len(operators)
    num_trajectories = states.shape[0]
    keep_branches = num_branches * states.size <= _BRANCH_STORAGE_LIMIT
    branches: List[Optional[np.ndarray]] = [None] * num_branches
    weights = np.empty((num_branches, num_trajectories))
    for index, operator in enumerate(operators):
        branch = apply_gate_batch(states, operator, qubits, num_qubits)
        weights[index] = np.einsum("ti,ti->t", branch, branch.conj()).real
        if keep_branches:
            branches[index] = branch

    totals = weights.sum(axis=0)
    if np.any(totals <= 0):
        raise RuntimeError("channel produced zero total probability")
    cumulative = np.cumsum(weights / totals, axis=0)
    draws = rng.random(num_trajectories)
    choices = np.minimum(
        (draws[None, :] >= cumulative).sum(axis=0), num_branches - 1
    )

    output = np.empty_like(states)
    for index in range(num_branches):
        mask = choices == index
        if not np.any(mask):
            continue
        if branches[index] is not None:
            chosen = branches[index][mask]
        else:
            chosen = apply_gate_batch(states[mask], operators[index], qubits, num_qubits)
        norms = np.sqrt(np.einsum("ti,ti->t", chosen, chosen.conj()).real)
        output[mask] = chosen / norms[:, None]
    return output


def apply_program_to_state(
    program: NoiseProgram, state: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Replay a noise program on a single trajectory statevector."""
    n = program.num_qubits
    for moment in program.moments:
        for operation in moment.operations:
            state = apply_gate(state, operation.matrix, operation.qubits, n)
            for channel, qubits in operation.channels:
                state = _apply_channel_stochastically(state, channel, qubits, n, rng)
        for channel, qubits in moment.idle_channels:
            state = _apply_channel_stochastically(state, channel, qubits, n, rng)
    return state


def apply_program_to_states(
    program: NoiseProgram, states: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Replay a noise program on a ``(T, 2^n)`` stack of trajectories.

    Gates advance all trajectories in one tensor contraction; stochastic
    channels draw one bulk uniform sample per channel (see
    :func:`_apply_channel_batch`), so the RNG consumption order is fixed
    by the program alone.
    """
    n = program.num_qubits
    for moment in program.moments:
        for operation in moment.operations:
            states = apply_gate_batch(states, operation.matrix, operation.qubits, n)
            for channel, qubits in operation.channels:
                states = _apply_channel_batch(states, channel, qubits, n, rng)
        for channel, qubits in moment.idle_channels:
            states = _apply_channel_batch(states, channel, qubits, n, rng)
    return states


class TrajectorySimulator:
    """Noisy simulator based on Monte-Carlo averaging of pure-state trajectories."""

    def __init__(
        self,
        noise_model: Optional[NoiseModel] = None,
        num_trajectories: int = 50,
        seed: Optional[int] = None,
    ):
        self.noise_model = noise_model
        self.num_trajectories = int(num_trajectories)
        self.seed = seed

    def run_single_trajectory(
        self,
        circuit: QuantumCircuit,
        physical_qubits: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Run one stochastic trajectory and return its final statevector."""
        program = build_noise_program(circuit, self.noise_model, list(physical_qubits))
        return apply_program_to_state(program, zero_state(circuit.num_qubits), rng)

    def _run_batch(
        self,
        circuit: QuantumCircuit,
        physical_qubits: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Advance all trajectories together; returns the ``(T, 2^n)`` final states."""
        program = build_noise_program(circuit, self.noise_model, list(physical_qubits))
        states = zero_states(self.num_trajectories, circuit.num_qubits)
        return apply_program_to_states(program, states, rng)

    def run(
        self,
        circuit: QuantumCircuit,
        physical_qubits: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Return the trajectory-averaged output probability distribution."""
        n = circuit.num_qubits
        if physical_qubits is None:
            physical_qubits = list(range(n))
        rng = np.random.default_rng(self.seed)
        states = self._run_batch(circuit, physical_qubits, rng)
        return np.mean(np.abs(states) ** 2, axis=0)

    def run_states(
        self,
        circuit: QuantumCircuit,
        physical_qubits: Optional[Sequence[int]] = None,
    ) -> List[np.ndarray]:
        """Return the final statevector of every trajectory (for diagnostics)."""
        n = circuit.num_qubits
        if physical_qubits is None:
            physical_qubits = list(range(n))
        rng = np.random.default_rng(self.seed)
        states = self._run_batch(circuit, physical_qubits, rng)
        return [np.array(state) for state in states]
