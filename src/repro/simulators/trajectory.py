"""Monte-Carlo (quantum trajectory) simulation of noisy circuits.

For circuits too large for density matrices (the 10- and 20-qubit
Fermi-Hubbard benchmarks of Figure 10f) noise is unravelled into
stochastic trajectories: each trajectory keeps a pure statevector and
samples one Kraus branch per error channel.  Averaging the output
distributions of many trajectories converges to the density-matrix result.

The simulator is *vectorised over trajectories*: all ``T`` trajectories of
one circuit advance together as a single stacked ``(T, 2^n)`` array, so
every gate application and every Kraus-branch evaluation is one numpy
tensor contraction instead of a Python loop over trajectories.  Branch
*selection* is the only per-trajectory decision, and it is sampled in bulk
(one uniform draw per trajectory per stochastic channel), so results are
deterministic for a fixed seed regardless of how the surrounding
experiment engine schedules work.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import as_moments
from repro.simulators.noise import KrausChannel
from repro.simulators.noise_model import NoiseModel
from repro.simulators.statevector import (
    apply_gate,
    apply_gate_batch,
    zero_state,
    zero_states,
)

_BRANCH_STORAGE_LIMIT = 1 << 22
"""Max complex elements of pre-computed Kraus branches kept in memory at
once; beyond it the batched channel application recomputes the chosen
branch instead of storing every candidate (trades FLOPs for memory on
wide states such as the 20-qubit Fermi-Hubbard runs)."""


def _apply_channel_stochastically(
    state: np.ndarray,
    channel: KrausChannel,
    qubits: Sequence[int],
    num_qubits: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample one Kraus branch of ``channel`` and apply it to ``state``."""
    if len(channel.operators) == 1:
        return apply_gate(state, channel.operators[0], qubits, num_qubits)
    probabilities = []
    branches = []
    for operator in channel.operators:
        branch = apply_gate(state, operator, qubits, num_qubits)
        weight = float(np.real(np.vdot(branch, branch)))
        probabilities.append(weight)
        branches.append(branch)
    probabilities = np.asarray(probabilities)
    total = probabilities.sum()
    if total <= 0:
        raise RuntimeError("channel produced zero total probability")
    probabilities = probabilities / total
    choice = rng.choice(len(branches), p=probabilities)
    branch = branches[choice]
    return branch / np.linalg.norm(branch)


def _apply_channel_batch(
    states: np.ndarray,
    channel: KrausChannel,
    qubits: Sequence[int],
    num_qubits: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample one Kraus branch per trajectory and apply it, batched.

    Branch weights are ``||K_k |psi_t>||^2``; each trajectory draws its
    branch from its own weight distribution using a single bulk uniform
    sample, then the chosen branches are applied group-by-group (one
    batched gate application per distinct chosen operator).
    """
    operators = channel.operators
    if len(operators) == 1:
        return apply_gate_batch(states, operators[0], qubits, num_qubits)

    num_branches = len(operators)
    num_trajectories = states.shape[0]
    keep_branches = num_branches * states.size <= _BRANCH_STORAGE_LIMIT
    branches: List[Optional[np.ndarray]] = [None] * num_branches
    weights = np.empty((num_branches, num_trajectories))
    for index, operator in enumerate(operators):
        branch = apply_gate_batch(states, operator, qubits, num_qubits)
        weights[index] = np.einsum("ti,ti->t", branch, branch.conj()).real
        if keep_branches:
            branches[index] = branch

    totals = weights.sum(axis=0)
    if np.any(totals <= 0):
        raise RuntimeError("channel produced zero total probability")
    cumulative = np.cumsum(weights / totals, axis=0)
    draws = rng.random(num_trajectories)
    choices = np.minimum(
        (draws[None, :] >= cumulative).sum(axis=0), num_branches - 1
    )

    output = np.empty_like(states)
    for index in range(num_branches):
        mask = choices == index
        if not np.any(mask):
            continue
        if branches[index] is not None:
            chosen = branches[index][mask]
        else:
            chosen = apply_gate_batch(states[mask], operators[index], qubits, num_qubits)
        norms = np.sqrt(np.einsum("ti,ti->t", chosen, chosen.conj()).real)
        output[mask] = chosen / norms[:, None]
    return output


class TrajectorySimulator:
    """Noisy simulator based on Monte-Carlo averaging of pure-state trajectories."""

    def __init__(
        self,
        noise_model: Optional[NoiseModel] = None,
        num_trajectories: int = 50,
        seed: Optional[int] = None,
    ):
        self.noise_model = noise_model
        self.num_trajectories = int(num_trajectories)
        self.seed = seed

    def run_single_trajectory(
        self,
        circuit: QuantumCircuit,
        physical_qubits: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Run one stochastic trajectory and return its final statevector."""
        n = circuit.num_qubits
        state = zero_state(n)
        for moment in as_moments(circuit):
            busy = set()
            duration = 0.0
            if self.noise_model is not None:
                duration = max(
                    (self.noise_model.operation_duration(op) for op in moment),
                    default=0.0,
                )
            for operation in moment:
                busy.update(operation.qubits)
                state = apply_gate(state, operation.gate.matrix, operation.qubits, n)
                if self.noise_model is not None:
                    for channel, qubits in self.noise_model.error_channels_for_operation(
                        operation, physical_qubits
                    ):
                        state = _apply_channel_stochastically(
                            state, channel, qubits, n, rng
                        )
            if self.noise_model is not None and duration > 0:
                for qubit in range(n):
                    if qubit in busy:
                        continue
                    idle = self.noise_model.idle_channel(
                        qubit, physical_qubits[qubit], duration
                    )
                    if idle is not None:
                        channel, qubits = idle
                        state = _apply_channel_stochastically(
                            state, channel, qubits, n, rng
                        )
        return state

    def _run_batch(
        self,
        circuit: QuantumCircuit,
        physical_qubits: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Advance all trajectories together; returns the ``(T, 2^n)`` final states."""
        n = circuit.num_qubits
        states = zero_states(self.num_trajectories, n)
        for moment in as_moments(circuit):
            busy = set()
            duration = 0.0
            if self.noise_model is not None:
                duration = max(
                    (self.noise_model.operation_duration(op) for op in moment),
                    default=0.0,
                )
            for operation in moment:
                busy.update(operation.qubits)
                states = apply_gate_batch(states, operation.gate.matrix, operation.qubits, n)
                if self.noise_model is not None:
                    for channel, qubits in self.noise_model.error_channels_for_operation(
                        operation, physical_qubits
                    ):
                        states = _apply_channel_batch(states, channel, qubits, n, rng)
            if self.noise_model is not None and duration > 0:
                for qubit in range(n):
                    if qubit in busy:
                        continue
                    idle = self.noise_model.idle_channel(
                        qubit, physical_qubits[qubit], duration
                    )
                    if idle is not None:
                        channel, qubits = idle
                        states = _apply_channel_batch(states, channel, qubits, n, rng)
        return states

    def run(
        self,
        circuit: QuantumCircuit,
        physical_qubits: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Return the trajectory-averaged output probability distribution."""
        n = circuit.num_qubits
        if physical_qubits is None:
            physical_qubits = list(range(n))
        rng = np.random.default_rng(self.seed)
        states = self._run_batch(circuit, physical_qubits, rng)
        return np.mean(np.abs(states) ** 2, axis=0)

    def run_states(
        self,
        circuit: QuantumCircuit,
        physical_qubits: Optional[Sequence[int]] = None,
    ) -> List[np.ndarray]:
        """Return the final statevector of every trajectory (for diagnostics)."""
        n = circuit.num_qubits
        if physical_qubits is None:
            physical_qubits = list(range(n))
        rng = np.random.default_rng(self.seed)
        states = self._run_batch(circuit, physical_qubits, rng)
        return [np.array(state) for state in states]
