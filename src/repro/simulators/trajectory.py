"""Monte-Carlo (quantum trajectory) simulation of noisy circuits.

For circuits too large for density matrices (the 10- and 20-qubit
Fermi-Hubbard benchmarks of Figure 10f) noise is unravelled into
stochastic trajectories: each trajectory keeps a pure statevector and
samples one Kraus branch per error channel.  Averaging the output
distributions of many trajectories converges to the density-matrix result.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import as_moments
from repro.simulators.noise import KrausChannel
from repro.simulators.noise_model import NoiseModel
from repro.simulators.statevector import apply_gate, zero_state


def _apply_channel_stochastically(
    state: np.ndarray,
    channel: KrausChannel,
    qubits: Sequence[int],
    num_qubits: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample one Kraus branch of ``channel`` and apply it to ``state``."""
    if len(channel.operators) == 1:
        return apply_gate(state, channel.operators[0], qubits, num_qubits)
    probabilities = []
    branches = []
    for operator in channel.operators:
        branch = apply_gate(state, operator, qubits, num_qubits)
        weight = float(np.real(np.vdot(branch, branch)))
        probabilities.append(weight)
        branches.append(branch)
    probabilities = np.asarray(probabilities)
    total = probabilities.sum()
    if total <= 0:
        raise RuntimeError("channel produced zero total probability")
    probabilities = probabilities / total
    choice = rng.choice(len(branches), p=probabilities)
    branch = branches[choice]
    return branch / np.linalg.norm(branch)


class TrajectorySimulator:
    """Noisy simulator based on Monte-Carlo averaging of pure-state trajectories."""

    def __init__(
        self,
        noise_model: Optional[NoiseModel] = None,
        num_trajectories: int = 50,
        seed: Optional[int] = None,
    ):
        self.noise_model = noise_model
        self.num_trajectories = int(num_trajectories)
        self.seed = seed

    def run_single_trajectory(
        self,
        circuit: QuantumCircuit,
        physical_qubits: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Run one stochastic trajectory and return its final statevector."""
        n = circuit.num_qubits
        state = zero_state(n)
        for moment in as_moments(circuit):
            busy = set()
            duration = 0.0
            if self.noise_model is not None:
                duration = max(
                    (self.noise_model.operation_duration(op) for op in moment),
                    default=0.0,
                )
            for operation in moment:
                busy.update(operation.qubits)
                state = apply_gate(state, operation.gate.matrix, operation.qubits, n)
                if self.noise_model is not None:
                    for channel, qubits in self.noise_model.error_channels_for_operation(
                        operation, physical_qubits
                    ):
                        state = _apply_channel_stochastically(
                            state, channel, qubits, n, rng
                        )
            if self.noise_model is not None and duration > 0:
                for qubit in range(n):
                    if qubit in busy:
                        continue
                    idle = self.noise_model.idle_channel(
                        qubit, physical_qubits[qubit], duration
                    )
                    if idle is not None:
                        channel, qubits = idle
                        state = _apply_channel_stochastically(
                            state, channel, qubits, n, rng
                        )
        return state

    def run(
        self,
        circuit: QuantumCircuit,
        physical_qubits: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Return the trajectory-averaged output probability distribution."""
        n = circuit.num_qubits
        if physical_qubits is None:
            physical_qubits = list(range(n))
        rng = np.random.default_rng(self.seed)
        accumulated = np.zeros(2**n)
        for _ in range(self.num_trajectories):
            state = self.run_single_trajectory(circuit, physical_qubits, rng)
            accumulated += np.abs(state) ** 2
        return accumulated / self.num_trajectories

    def run_states(
        self,
        circuit: QuantumCircuit,
        physical_qubits: Optional[Sequence[int]] = None,
    ) -> List[np.ndarray]:
        """Return the final statevector of every trajectory (for diagnostics)."""
        n = circuit.num_qubits
        if physical_qubits is None:
            physical_qubits = list(range(n))
        rng = np.random.default_rng(self.seed)
        return [
            self.run_single_trajectory(circuit, physical_qubits, rng)
            for _ in range(self.num_trajectories)
        ]
