"""Readout-error mitigation.

Both device models carry per-qubit readout error rates (1.6% on Sycamore,
several percent on Aspen-8), which systematically bias the HOP / XED /
success-rate metrics.  This module implements the standard
confusion-matrix mitigation used on real systems: build the tensor-product
assignment matrix from the per-qubit readout error rates, then recover the
pre-readout distribution by matrix inversion or by constrained least
squares (which keeps the result a valid probability vector).

Mitigation is *not* applied inside the paper-reproduction pipeline (the
paper reports raw metrics); it is provided for the extension studies and
exposed through :class:`ReadoutMitigator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import nnls


def single_qubit_confusion(error_rate: float, asymmetry: float = 0.0) -> np.ndarray:
    """2x2 assignment matrix ``A[measured, prepared]`` for one qubit.

    ``error_rate`` is the mean probability of flipping the outcome;
    ``asymmetry`` shifts the 1->0 flip probability relative to the 0->1
    flip (real devices usually misread |1> more often because of T1 decay
    during readout).
    """
    if not 0.0 <= error_rate < 0.5:
        raise ValueError("readout error rate must be in [0, 0.5)")
    p01 = error_rate * (1.0 - asymmetry)  # prepared 0, measured 1
    p10 = error_rate * (1.0 + asymmetry)  # prepared 1, measured 0
    if not (0.0 <= p01 <= 1.0 and 0.0 <= p10 <= 1.0):
        raise ValueError("asymmetry pushes a flip probability outside [0, 1]")
    return np.array([[1.0 - p01, p10], [p01, 1.0 - p10]], dtype=float)


def confusion_matrix(
    readout_errors: Sequence[float], asymmetry: float = 0.0
) -> np.ndarray:
    """Tensor-product assignment matrix for a register of qubits.

    Qubit 0 is the most significant bit of the basis index, matching the
    simulator convention, so the Kronecker product runs in qubit order.
    """
    if len(readout_errors) == 0:
        raise ValueError("need at least one qubit")
    matrix = np.array([[1.0]])
    for error_rate in readout_errors:
        matrix = np.kron(matrix, single_qubit_confusion(float(error_rate), asymmetry))
    return matrix


def apply_confusion(probabilities: np.ndarray, readout_errors: Sequence[float]) -> np.ndarray:
    """Forward model: distribution actually measured given the true distribution."""
    matrix = confusion_matrix(readout_errors)
    probabilities = np.asarray(probabilities, dtype=float)
    if probabilities.size != matrix.shape[1]:
        raise ValueError("distribution size does not match the number of qubits")
    return matrix @ probabilities


def mitigate_probabilities(
    measured: np.ndarray,
    readout_errors: Sequence[float],
    method: str = "least_squares",
) -> np.ndarray:
    """Recover the pre-readout distribution from a measured one.

    ``method="inverse"`` applies the exact inverse of the assignment matrix
    and then clips/renormalises (fast, can produce small negative entries
    before clipping); ``method="least_squares"`` solves a non-negative
    least-squares problem, which is the numerically robust choice for
    finite-shot data.
    """
    measured = np.asarray(measured, dtype=float)
    matrix = confusion_matrix(readout_errors)
    if measured.size != matrix.shape[0]:
        raise ValueError("distribution size does not match the number of qubits")
    if method == "inverse":
        recovered = np.linalg.solve(matrix, measured)
    elif method == "least_squares":
        recovered, _ = nnls(matrix, measured)
    else:
        raise ValueError("method must be 'inverse' or 'least_squares'")
    recovered = np.clip(recovered, 0.0, None)
    total = recovered.sum()
    if total <= 0:
        raise ValueError("mitigation produced an all-zero distribution")
    return recovered / total


@dataclass
class ReadoutMitigator:
    """Convenience wrapper binding mitigation to a device's calibration data.

    Build it once per (device, physical-qubit selection) and call
    :meth:`mitigate` on every measured distribution.
    """

    readout_errors: Sequence[float]
    method: str = "least_squares"

    @classmethod
    def for_device(cls, device, physical_qubits: Sequence[int], method: str = "least_squares") -> "ReadoutMitigator":
        """Mitigator using the device's calibrated per-qubit readout errors."""
        return cls(readout_errors=device.readout_errors_for(physical_qubits), method=method)

    def mitigate(self, measured: np.ndarray) -> np.ndarray:
        """Mitigated probability distribution."""
        return mitigate_probabilities(measured, self.readout_errors, method=self.method)

    def expected_assignment_fidelity(self) -> float:
        """Probability that an ideal basis state is read out correctly (uniform average)."""
        matrix = confusion_matrix(self.readout_errors)
        return float(np.mean(np.diag(matrix)))
