"""Retry policy with deterministic backoff, plus resilience counters.

The recovery half of the resilience layer: :class:`RetryPolicy` bounds
how often and how patiently a schedulable unit re-executes, and
:func:`call_with_retry` applies it around any callable.  Everything the
policy does is deterministic given the fault-plan seed:

* **Backoff** is exponential (``base * 2**(attempt-1)``, capped) with
  **jitter derived from sha256 of (seed, token, attempt)** -- never the
  wall clock, never the global ``random`` module -- so a replayed chaos
  run sleeps the same schedule and, crucially, never perturbs any device
  or simulation RNG stream (the bit-identity contract).
* **Retry budget** (``max_attempts``) and an optional **per-call
  deadline** bound the worst case; on exhaustion the *last underlying
  error* is re-raised, so callers' existing ``except`` clauses keep
  working -- no new wrapper exception to unwrap.
* Only **transient** shapes are retried (:data:`DEFAULT_RETRYABLE`):
  injected faults, executor/worker deaths, OS/connection/timeout errors
  and truncated reads.  Deterministic errors (``ValueError`` from a
  qubit cap, spec validation, ...) propagate on the first attempt --
  retrying them would triple every genuine failure's latency.

Every retry emits a ``RuntimeWarning`` prefixed ``resilience:`` (the CI
chaos job greps for it to prove recovery actually happened), and module
counters (:func:`retry_stats`) aggregate attempts / retries /
recoveries / exhaustions / executor fallbacks for ``/v1/stats`` and
``repro cache stats``.

Environment knobs (``positive_int_env`` policy, read per
``RetryPolicy.from_env()`` call): ``REPRO_RETRY_ATTEMPTS`` (3),
``REPRO_RETRY_BASE_MS`` (25), ``REPRO_RETRY_MAX_MS`` (1000),
``REPRO_RETRY_DEADLINE_MS`` (unset: no per-call deadline).
"""

from __future__ import annotations

import hashlib
import threading
import time
import warnings
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Type, TypeVar

from repro.config import duration_env, positive_int_env
from repro.resilience.faults import InjectedFault, active_fault_plan

__all__ = [
    "RETRY_ATTEMPTS_ENV_VAR",
    "RETRY_BASE_MS_ENV_VAR",
    "RETRY_MAX_MS_ENV_VAR",
    "RETRY_DEADLINE_MS_ENV_VAR",
    "DEFAULT_RETRYABLE",
    "RetryPolicy",
    "ResilienceCounters",
    "call_with_retry",
    "count_executor_fallback",
    "retry_stats",
    "reset_retry_stats",
]

RETRY_ATTEMPTS_ENV_VAR = "REPRO_RETRY_ATTEMPTS"
RETRY_BASE_MS_ENV_VAR = "REPRO_RETRY_BASE_MS"
RETRY_MAX_MS_ENV_VAR = "REPRO_RETRY_MAX_MS"
RETRY_DEADLINE_MS_ENV_VAR = "REPRO_RETRY_DEADLINE_MS"

#: Transient failure shapes worth a retry.  ``InjectedWorkerCrash`` is a
#: ``BrokenExecutor``; ``EOFError`` is a truncated read; deterministic
#: errors (``ValueError``, ``TypeError``, ...) deliberately propagate.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    InjectedFault,
    BrokenExecutor,
    OSError,
    ConnectionError,
    TimeoutError,
    EOFError,
)

_T = TypeVar("_T")


class ResilienceCounters:
    """A small thread-safe counter bag (per-study / per-request scope)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}

    def increment(self, key: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + amount

    def get(self, key: str) -> int:
        with self._lock:
            return self._counts.get(key, 0)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counts)


# Process-wide aggregate (surfaced by /v1/stats and `repro cache stats`).
_GLOBAL_LOCK = threading.Lock()
_GLOBAL_COUNTS: Dict[str, int] = {
    "attempts": 0,
    "retries": 0,
    "recoveries": 0,
    "exhausted": 0,
    "executor_fallbacks": 0,
}


def _count_global(key: str, amount: int = 1) -> None:
    with _GLOBAL_LOCK:
        _GLOBAL_COUNTS[key] = _GLOBAL_COUNTS.get(key, 0) + amount


def count_executor_fallback() -> None:
    """Record one executor degradation (process->thread or ->inline)."""
    _count_global("executor_fallbacks")


def retry_stats() -> Dict[str, int]:
    with _GLOBAL_LOCK:
        return dict(_GLOBAL_COUNTS)


def reset_retry_stats() -> None:
    with _GLOBAL_LOCK:
        for key in _GLOBAL_COUNTS:
            _GLOBAL_COUNTS[key] = 0


def _jitter_unit(seed: int, token: str, attempt: int) -> float:
    """A deterministic draw in [0, 1) from sha256, never the wall clock."""
    digest = hashlib.sha256(f"{seed}|{token}|{attempt}".encode("utf-8")).hexdigest()
    return int(digest[:13], 16) / float(16**13)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounds for re-executing a schedulable unit.

    ``seed`` feeds the jitter (taken from the fault plan's seed by
    :meth:`from_env`, so a replayed chaos run backs off identically);
    ``deadline`` is per *call* -- wall-clock seconds measured with
    ``time.monotonic`` across the attempts of one
    :func:`call_with_retry`, after which the last error propagates even
    if budget remains.
    """

    max_attempts: int = 3
    base_delay: float = 0.025
    max_delay: float = 1.0
    deadline: Optional[float] = None
    seed: int = 0

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        plan = active_fault_plan()
        return cls(
            max_attempts=positive_int_env(RETRY_ATTEMPTS_ENV_VAR, 3),
            base_delay=duration_env(RETRY_BASE_MS_ENV_VAR, 25) or 0.025,
            max_delay=duration_env(RETRY_MAX_MS_ENV_VAR, 1000) or 1.0,
            deadline=duration_env(RETRY_DEADLINE_MS_ENV_VAR, None),
            seed=plan.seed if plan is not None else 0,
        )

    def backoff_delay(self, attempt: int, token: str = "") -> float:
        """Seconds to sleep before retry ``attempt`` (1-based)."""
        raw = min(self.base_delay * (2 ** (attempt - 1)), self.max_delay)
        return raw * (0.5 + 0.5 * _jitter_unit(self.seed, token, attempt))


def call_with_retry(
    fn: Callable[[], _T],
    policy: Optional[RetryPolicy] = None,
    *,
    describe: str = "task",
    retryable: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE,
    counters: Optional[ResilienceCounters] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> _T:
    """Run ``fn`` under ``policy``, re-raising the last error on exhaustion.

    ``counters`` (when given) accrues the same retry/recovery keys as
    the process-wide aggregate, scoped to one study or serve request.
    ``sleep`` is injectable so tests assert the deterministic backoff
    schedule without actually waiting.
    """
    if policy is None:
        policy = RetryPolicy.from_env()
    attempts = max(1, policy.max_attempts)
    started = time.monotonic() if policy.deadline is not None else 0.0
    last_error: Optional[BaseException] = None
    for attempt in range(1, attempts + 1):
        _count_global("attempts")
        if counters is not None:
            counters.increment("attempts")
        try:
            result = fn()
        except retryable as error:
            last_error = error
            if attempt >= attempts:
                break
            if (
                policy.deadline is not None
                and time.monotonic() - started >= policy.deadline
            ):
                _count_global("exhausted")
                if counters is not None:
                    counters.increment("exhausted")
                warnings.warn(
                    f"resilience: deadline of {policy.deadline:.3f}s exceeded "
                    f"for {describe} after attempt {attempt}; raising "
                    f"{type(error).__name__}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                raise
            _count_global("retries")
            if counters is not None:
                counters.increment("retries")
            warnings.warn(
                f"resilience: retrying {describe} (attempt {attempt + 1} of "
                f"{attempts}) after {type(error).__name__}: {error}",
                RuntimeWarning,
                stacklevel=2,
            )
            sleep(policy.backoff_delay(attempt, token=describe))
        else:
            if attempt > 1:
                _count_global("recoveries")
                if counters is not None:
                    counters.increment("recoveries")
            return result
    _count_global("exhausted")
    if counters is not None:
        counters.increment("exhausted")
    warnings.warn(
        f"resilience: retry budget of {attempts} exhausted for {describe}; "
        f"raising {type(last_error).__name__}",
        RuntimeWarning,
        stacklevel=2,
    )
    assert last_error is not None
    raise last_error
