"""Deterministic fault injection and retry/recovery (see docs/resilience.md).

Two halves, inert by default:

* :mod:`repro.resilience.faults` -- named fault points consulted at
  failure-prone boundaries, driven by a seeded, replayable plan
  (``REPRO_FAULT_PLAN``).
* :mod:`repro.resilience.retry` -- :class:`RetryPolicy` /
  :func:`call_with_retry` with exponential backoff, deterministic
  jitter, a retry budget and per-call deadlines, plus the process-wide
  resilience counters.

The contract binding them: a study that survives injected faults must
render a **bit-identical report** to the fault-free run.  Jobs are pure
given their prepared ``NoiseProgram``, so retries re-execute without
touching device RNG order or cache keys; nothing in this package reads
the wall clock or global ``random`` to make a decision.
"""

from repro.resilience.faults import (
    FAULT_PLAN_ENV_VAR,
    FAULT_POINTS,
    FaultPlan,
    InjectedFault,
    InjectedWorkerCrash,
    active_fault_plan,
    configure_fault_plan,
    consult_fault,
    fault_stats,
    maybe_raise_fault,
    maybe_raise_io_fault,
    reset_fault_plan_configuration,
    reset_fault_stats,
)
from repro.resilience.retry import (
    DEFAULT_RETRYABLE,
    RETRY_ATTEMPTS_ENV_VAR,
    RETRY_BASE_MS_ENV_VAR,
    RETRY_DEADLINE_MS_ENV_VAR,
    RETRY_MAX_MS_ENV_VAR,
    ResilienceCounters,
    RetryPolicy,
    call_with_retry,
    count_executor_fallback,
    reset_retry_stats,
    retry_stats,
)

__all__ = [
    "FAULT_PLAN_ENV_VAR",
    "FAULT_POINTS",
    "FaultPlan",
    "InjectedFault",
    "InjectedWorkerCrash",
    "active_fault_plan",
    "configure_fault_plan",
    "consult_fault",
    "fault_stats",
    "maybe_raise_fault",
    "maybe_raise_io_fault",
    "reset_fault_plan_configuration",
    "reset_fault_stats",
    "DEFAULT_RETRYABLE",
    "RETRY_ATTEMPTS_ENV_VAR",
    "RETRY_BASE_MS_ENV_VAR",
    "RETRY_DEADLINE_MS_ENV_VAR",
    "RETRY_MAX_MS_ENV_VAR",
    "ResilienceCounters",
    "RetryPolicy",
    "call_with_retry",
    "count_executor_fallback",
    "reset_retry_stats",
    "retry_stats",
]
