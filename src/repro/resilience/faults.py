"""Deterministic fault injection: named fault points under a seeded plan.

Production failures -- a worker process dying mid-study, a full disk, a
backend hiccup -- are rare, unscheduled and unreproducible, which is why
the recovery paths that handle them rot untested.  This module turns
failure into a first-class *input*: code at a failure-prone boundary
consults a named **fault point**, and a **fault plan** (the
``REPRO_FAULT_PLAN`` environment variable) decides deterministically
whether that consultation fails and how.

Fault points (the catalogue, see ``docs/resilience.md``):

========================  ====================================================
``disk.read``             reading a disk-cache payload (``caching/disk.py``)
``disk.write``            persisting a disk-cache payload
``backend.run``           a simulator-backend invocation (single or batched)
``worker.task``           an engine job executing in a pool worker / inline
``serve.handler``         an incoming ``POST /v1/studies`` request
``inflight.wait``         a coalesce waiter blocking on the owner's future
========================  ====================================================

Plan grammar (entries separated by ``;``)::

    REPRO_FAULT_PLAN="worker.task:crash@2;disk.write:enospc%0.1;seed=7"

* ``point:kind@N`` -- inject ``kind`` on the *N*-th consultation of
  ``point`` (1-based), exactly once.
* ``point:kind%P`` -- inject ``kind`` on each consultation of ``point``
  with probability ``P`` (0 < P < 1), drawn from a per-rule RNG.
* ``seed=<int>`` -- seeds every probabilistic rule (and the retry
  layer's jitter); same plan text => same fault sequence, replayable
  across processes.

Multiple rules may target one point; they are evaluated in declaration
order and the first firing rule wins.  Invalid entries follow the
``repro.config`` policy: a :class:`RuntimeWarning` naming the entry,
then the entry is dropped -- never an exception, never a silent ignore.

Determinism: per-rule RNGs are seeded from
``sha256(f"{seed}|{point}|{index}|{kind}")`` -- *not* the builtin
``hash`` (salted per process by ``PYTHONHASHSEED``), so the drawn
sequence replays across processes.  Consultations of a single point are
counted under a lock; with serial consultation (engine ``workers=1``,
serve ``--exec-workers 1``) the full fault sequence is exact, while
under concurrent consultation the sequence of draws is still
deterministic but its attribution to specific jobs is
scheduling-dependent (documented in ``docs/resilience.md``).

With no plan configured (the default) every consult is a dictionary
miss returning ``None``: no RNG is created, no state mutates, nothing
can raise -- the bit-identity fixtures from PR 1/PR 6 run untouched.
"""

from __future__ import annotations

import errno
import hashlib
import random
import threading
import warnings
from concurrent.futures import BrokenExecutor
from typing import Dict, List, Optional, Tuple

from repro.config import str_env

__all__ = [
    "FAULT_PLAN_ENV_VAR",
    "FAULT_POINTS",
    "InjectedFault",
    "InjectedWorkerCrash",
    "FaultPlan",
    "active_fault_plan",
    "configure_fault_plan",
    "reset_fault_plan_configuration",
    "consult_fault",
    "maybe_raise_fault",
    "maybe_raise_io_fault",
    "fault_stats",
    "reset_fault_stats",
]

FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: The closed catalogue of consultable fault points.  Rules naming any
#: other point are rejected at parse time -- a typo'd point name would
#: otherwise make a chaos plan silently inert.
FAULT_POINTS: Tuple[str, ...] = (
    "disk.read",
    "disk.write",
    "backend.run",
    "worker.task",
    "serve.handler",
    "inflight.wait",
)

#: Injected-fault kinds that :func:`maybe_raise_io_fault` maps onto the
#: concrete OS-level exception the real failure would raise.
_IO_FAULT_ERRNO = {
    "enospc": errno.ENOSPC,
    "eacces": errno.EACCES,
    "eio": errno.EIO,
}


class InjectedFault(RuntimeError):
    """A deterministic injected failure (transient; retry layers recover)."""

    def __init__(self, point: str, kind: str):
        super().__init__(f"injected fault {kind!r} at fault point {point!r}")
        self.point = point
        self.kind = kind

    def __reduce__(self):
        # RuntimeError's default reduce replays ``args`` (the formatted
        # message, one string) into ``__init__(point, kind)`` -- a
        # TypeError while the pool parent unpickles a worker's result,
        # which ProcessPoolExecutor misreports as "a child process
        # terminated abruptly".  Rebuild from the original fields.
        return (type(self), (self.point, self.kind))


class InjectedWorkerCrash(BrokenExecutor):
    """An injected worker-process death.

    Subclasses :class:`concurrent.futures.BrokenExecutor` so the engine's
    existing ``_EXECUTOR_FAILURES`` handling sees it exactly as it would
    see a real ``BrokenProcessPool`` -- the pool-degradation path is
    exercised, not a lookalike.
    """

    def __init__(self, point: str):
        super().__init__(f"injected worker crash at fault point {point!r}")
        self.point = point

    def __reduce__(self):
        # Same pickling contract as InjectedFault: without this the
        # message doubles up on every process-boundary crossing
        # (``__init__`` re-wraps the already-formatted message).
        return (type(self), (self.point,))


def _rule_rng_seed(plan_seed: int, point: str, index: int, kind: str) -> int:
    digest = hashlib.sha256(
        f"{plan_seed}|{point}|{index}|{kind}".encode("utf-8")
    ).hexdigest()
    return int(digest[:16], 16)


class _FaultRule:
    """One parsed plan entry: ``point:kind@N`` or ``point:kind%P``."""

    __slots__ = ("point", "kind", "at", "probability", "rng", "fired")

    def __init__(
        self,
        point: str,
        kind: str,
        *,
        at: Optional[int] = None,
        probability: Optional[float] = None,
        plan_seed: int = 0,
        index: int = 0,
    ):
        self.point = point
        self.kind = kind
        self.at = at
        self.probability = probability
        self.fired = 0
        # Each probabilistic rule draws from its own RNG so adding a rule
        # never perturbs the sequence another rule replays.
        self.rng: Optional[random.Random] = None
        if probability is not None:
            self.rng = random.Random(_rule_rng_seed(plan_seed, point, index, kind))

    def decide(self, consultation: int) -> bool:
        """Whether this rule fires on the given (1-based) consultation."""
        if self.at is not None:
            if consultation == self.at and self.fired == 0:
                self.fired += 1
                return True
            return False
        assert self.rng is not None and self.probability is not None
        if self.rng.random() < self.probability:
            self.fired += 1
            return True
        return False


def _parse_entries(raw: str) -> Tuple[int, List[Tuple[str, str, str, str]]]:
    """Split plan text into (seed, [(point, kind, operator, operand)])."""
    seed = 0
    entries: List[Tuple[str, str, str, str]] = []
    for chunk in raw.split(";"):
        entry = chunk.strip()
        if not entry:
            continue
        if entry.startswith("seed="):
            try:
                seed = int(entry[len("seed=") :])
            except ValueError:
                warnings.warn(
                    f"ignoring invalid {FAULT_PLAN_ENV_VAR} entry {entry!r} "
                    "(need seed=<int>)",
                    RuntimeWarning,
                    stacklevel=4,
                )
            continue
        point, sep, spec = entry.partition(":")
        point = point.strip()
        operator = "@" if "@" in spec else "%" if "%" in spec else ""
        kind, _, operand = spec.partition(operator) if operator else (spec, "", "")
        kind = kind.strip()
        operand = operand.strip()
        if not sep or not operator or not kind or not operand:
            warnings.warn(
                f"ignoring invalid {FAULT_PLAN_ENV_VAR} entry {entry!r} "
                "(need point:kind@N or point:kind%P)",
                RuntimeWarning,
                stacklevel=4,
            )
            continue
        if point not in FAULT_POINTS:
            warnings.warn(
                f"ignoring invalid {FAULT_PLAN_ENV_VAR} entry {entry!r} "
                f"(unknown fault point {point!r}; known: {', '.join(FAULT_POINTS)})",
                RuntimeWarning,
                stacklevel=4,
            )
            continue
        entries.append((point, kind, operator, operand))
    return seed, entries


class FaultPlan:
    """A parsed, stateful fault plan: rules plus consultation counters."""

    def __init__(self, raw: str):
        self.raw = raw
        self._lock = threading.Lock()
        self.seed, entries = _parse_entries(raw)
        self._rules: Dict[str, List[_FaultRule]] = {}
        self._consultations: Dict[str, int] = {}
        self._injected: Dict[str, Dict[str, int]] = {}
        for index, (point, kind, operator, operand) in enumerate(entries):
            rule: Optional[_FaultRule] = None
            if operator == "@":
                try:
                    at = int(operand)
                except ValueError:
                    at = 0
                if at >= 1:
                    rule = _FaultRule(point, kind, at=at)
            else:
                try:
                    probability = float(operand)
                except ValueError:
                    probability = -1.0
                if 0.0 < probability < 1.0:
                    rule = _FaultRule(
                        point,
                        kind,
                        probability=probability,
                        plan_seed=self.seed,
                        index=index,
                    )
            if rule is None:
                warnings.warn(
                    f"ignoring invalid {FAULT_PLAN_ENV_VAR} entry "
                    f"{point}:{kind}{operator}{operand} (@N needs an integer "
                    ">= 1, %P a probability in (0, 1))",
                    RuntimeWarning,
                    stacklevel=4,
                )
                continue
            self._rules.setdefault(point, []).append(rule)

    def consult(self, point: str) -> Optional[str]:
        """Record a consultation of ``point``; return a fault kind or None."""
        rules = self._rules.get(point)
        if rules is None:
            return None
        with self._lock:
            consultation = self._consultations.get(point, 0) + 1
            self._consultations[point] = consultation
            for rule in rules:
                if rule.decide(consultation):
                    per_point = self._injected.setdefault(point, {})
                    per_point[rule.kind] = per_point.get(rule.kind, 0) + 1
                    return rule.kind
        return None

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "plan": self.raw,
                "seed": self.seed,
                "consultations": dict(self._consultations),
                "injected": {
                    point: dict(kinds) for point, kinds in self._injected.items()
                },
            }


# Registry state: mirrors the disk-cache registry's explicit-override
# pattern.  ``_EXPLICIT`` set via configure_fault_plan() wins over the
# environment; ``_UNSET`` means "the environment governs".
_UNSET = object()
_PLAN_STATE_LOCK = threading.Lock()
_PLAN_STATE: Optional[FaultPlan] = None
_EXPLICIT: object = _UNSET


def configure_fault_plan(plan: Optional[str]) -> Optional[FaultPlan]:
    """Explicitly set (or, with ``None``, disable) the process fault plan.

    Overrides ``REPRO_FAULT_PLAN`` until
    :func:`reset_fault_plan_configuration`.  Returns the freshly parsed
    (zero-consultation) plan, so tests can replay a sequence from a
    clean slate.
    """
    global _EXPLICIT, _PLAN_STATE
    with _PLAN_STATE_LOCK:
        _EXPLICIT = plan
        _PLAN_STATE = FaultPlan(plan) if plan else None
        return _PLAN_STATE


def reset_fault_plan_configuration() -> None:
    """Drop any explicit plan and parsed state; the environment governs."""
    global _EXPLICIT, _PLAN_STATE
    with _PLAN_STATE_LOCK:
        _EXPLICIT = _UNSET
        _PLAN_STATE = None


def reset_fault_stats() -> None:
    """Re-arm the active plan: fresh counters, fresh RNG streams."""
    global _PLAN_STATE
    with _PLAN_STATE_LOCK:
        if _PLAN_STATE is not None:
            _PLAN_STATE = FaultPlan(_PLAN_STATE.raw)


def active_fault_plan() -> Optional[FaultPlan]:
    """The process fault plan, or ``None`` when no plan is configured.

    Re-reads ``REPRO_FAULT_PLAN`` on every call (the long-lived-daemon
    policy of ``REPRO_CACHE_DIR``), re-parsing only when the text
    changes so counters survive across consultations.
    """
    global _PLAN_STATE
    raw = _EXPLICIT if _EXPLICIT is not _UNSET else str_env(FAULT_PLAN_ENV_VAR)
    if not raw:
        return None
    assert isinstance(raw, str)
    with _PLAN_STATE_LOCK:
        if _PLAN_STATE is None or _PLAN_STATE.raw != raw:
            _PLAN_STATE = FaultPlan(raw)
        return _PLAN_STATE


def consult_fault(point: str) -> Optional[str]:
    """Consult ``point``: the planned fault kind to inject, or ``None``."""
    plan = active_fault_plan()
    if plan is None:
        return None
    return plan.consult(point)


def maybe_raise_fault(point: str) -> None:
    """Consult ``point`` and raise the planned fault, if any.

    ``crash`` raises :class:`InjectedWorkerCrash` (a ``BrokenExecutor``,
    i.e. the pool itself dies); every other kind raises
    :class:`InjectedFault` (a transient task failure the retry layer
    absorbs).
    """
    kind = consult_fault(point)
    if kind is None:
        return
    if kind == "crash":
        raise InjectedWorkerCrash(point)
    raise InjectedFault(point, kind)


def maybe_raise_io_fault(point: str) -> None:
    """Consult ``point`` and raise the planned fault as the OS would.

    Called from *inside* the disk tier's existing ``try`` blocks so the
    injected ``OSError``/``EOFError`` exercises the very ``except``
    branches a real full disk or truncated pickle would: ``enospc`` /
    ``eacces`` / ``eio`` raise :class:`OSError` with the matching
    ``errno``; ``truncate`` raises :class:`EOFError` (what
    ``pickle.load`` raises on a short file); any other kind raises a
    generic :class:`OSError`.
    """
    kind = consult_fault(point)
    if kind is None:
        return
    if kind == "truncate":
        raise EOFError(f"injected truncated read at fault point {point!r}")
    code = _IO_FAULT_ERRNO.get(kind, errno.EIO)
    raise OSError(code, f"injected fault {kind!r} at fault point {point!r}")


def fault_stats() -> Dict[str, object]:
    """Counters for the active plan (inert shape when no plan is set)."""
    plan = active_fault_plan()
    if plan is None:
        return {"plan": None, "seed": 0, "consultations": {}, "injected": {}}
    return plan.stats()
