"""Client for the ``repro serve`` daemon (stdlib ``http.client`` only).

:func:`submit_study` is a generator: records arrive as the daemon
streams them, so a caller watching a long study sees per-job progress
lines rather than one final blob.  ``repro submit`` (the CLI) prints
them as NDJSON; tests and benchmarks consume them directly.

Hangs and half-streams are errors, never silence:

* Every connection carries a socket timeout -- ``REPRO_CLIENT_TIMEOUT``
  (seconds, ``positive_int_env`` policy, default 300) unless the caller
  passes one explicitly.  A stalled daemon raises :class:`ServiceError`
  naming the knob instead of blocking forever.
* The NDJSON stream is close-delimited (HTTP/1.0), so a bare EOF is
  ambiguous: completion and a mid-stream crash look the same on the
  wire.  The protocol's terminal ``stats`` record disambiguates --
  :func:`submit_study` raises :class:`ServiceError` if the stream ends
  before one arrives (e.g. the daemon died or the connection dropped),
  instead of silently yielding a truncated study.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Dict, Iterator, Optional, Union

from repro.config import positive_int_env
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    StudySpec,
    decode_record,
)

CLIENT_TIMEOUT_ENV_VAR = "REPRO_CLIENT_TIMEOUT"


class ServiceError(RuntimeError):
    """The daemon rejected a request or reported an in-stream error."""


def client_timeout() -> float:
    """The default socket timeout in seconds (``REPRO_CLIENT_TIMEOUT``)."""
    return float(positive_int_env(CLIENT_TIMEOUT_ENV_VAR, 300))


def submit_study(
    spec: Union[StudySpec, Dict[str, object]],
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    timeout: Optional[float] = None,
) -> Iterator[Dict[str, object]]:
    """POST a study spec; yield protocol records as the daemon streams them.

    Accepts a :class:`StudySpec` or its JSON-dict form (validated
    client-side first, so typos fail before touching the daemon).  An
    in-stream ``error`` record raises :class:`ServiceError` -- by then
    earlier records were already yielded, mirroring what actually
    happened server-side.  ``timeout=None`` (the default) uses
    ``REPRO_CLIENT_TIMEOUT``; a stream that times out or ends before
    the terminal ``stats`` record raises :class:`ServiceError` rather
    than hanging or truncating silently.
    """
    if isinstance(spec, dict):
        spec = StudySpec.from_json_dict(spec)
    if timeout is None:
        timeout = client_timeout()
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    terminated = False
    try:
        connection.request(
            "POST",
            "/v1/studies",
            body=json.dumps(spec.to_json_dict()),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        if response.status != 200:
            detail = response.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (ValueError, AttributeError):
                pass
            raise ServiceError(f"daemon returned {response.status}: {detail}")
        for line in response:
            record = decode_record(line)
            if record is None:
                continue
            if record.get("type") == "error":
                raise ServiceError(str(record.get("error", "unknown service error")))
            if record.get("type") == "stats":
                terminated = True
            yield record
    except socket.timeout as error:
        raise ServiceError(
            f"daemon did not respond within {timeout:g}s "
            f"({CLIENT_TIMEOUT_ENV_VAR} or the timeout argument raises it): {error}"
        ) from error
    finally:
        connection.close()
    if not terminated:
        raise ServiceError(
            "stream ended before the terminal stats record -- the daemon "
            "disconnected mid-study (crashed, killed, or dropped connection)"
        )


def fetch_stats(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    timeout: Optional[float] = None,
) -> Dict[str, object]:
    """GET the daemon's ``/v1/stats`` snapshot.

    ``timeout=None`` uses ``REPRO_CLIENT_TIMEOUT``, same policy as
    :func:`submit_study`.
    """
    if timeout is None:
        timeout = client_timeout()
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", "/v1/stats")
        response = connection.getresponse()
        body = response.read().decode("utf-8")
        if response.status != 200:
            raise ServiceError(f"daemon returned {response.status}: {body}")
        return json.loads(body)
    except socket.timeout as error:
        raise ServiceError(
            f"daemon did not respond within {timeout:g}s "
            f"({CLIENT_TIMEOUT_ENV_VAR} or the timeout argument raises it): {error}"
        ) from error
    finally:
        connection.close()
