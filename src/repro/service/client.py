"""Client for the ``repro serve`` daemon (stdlib ``http.client`` only).

:func:`submit_study` is a generator: records arrive as the daemon
streams them, so a caller watching a long study sees per-job progress
lines rather than one final blob.  ``repro submit`` (the CLI) prints
them as NDJSON; tests and benchmarks consume them directly.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterator, Optional, Union

from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    StudySpec,
    decode_record,
)


class ServiceError(RuntimeError):
    """The daemon rejected a request or reported an in-stream error."""


def submit_study(
    spec: Union[StudySpec, Dict[str, object]],
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    timeout: Optional[float] = 300.0,
) -> Iterator[Dict[str, object]]:
    """POST a study spec; yield protocol records as the daemon streams them.

    Accepts a :class:`StudySpec` or its JSON-dict form (validated
    client-side first, so typos fail before touching the daemon).  An
    in-stream ``error`` record raises :class:`ServiceError` -- by then
    earlier records were already yielded, mirroring what actually
    happened server-side.
    """
    if isinstance(spec, dict):
        spec = StudySpec.from_json_dict(spec)
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST",
            "/v1/studies",
            body=json.dumps(spec.to_json_dict()),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        if response.status != 200:
            detail = response.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (ValueError, AttributeError):
                pass
            raise ServiceError(f"daemon returned {response.status}: {detail}")
        for line in response:
            record = decode_record(line)
            if record is None:
                continue
            if record.get("type") == "error":
                raise ServiceError(str(record.get("error", "unknown service error")))
            yield record
    finally:
        connection.close()


def fetch_stats(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    timeout: Optional[float] = 30.0,
) -> Dict[str, object]:
    """GET the daemon's ``/v1/stats`` snapshot."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", "/v1/stats")
        response = connection.getresponse()
        body = response.read().decode("utf-8")
        if response.status != 200:
            raise ServiceError(f"daemon returned {response.status}: {body}")
        return json.loads(body)
    finally:
        connection.close()
