"""Wire protocol of the study service: specs, shards and NDJSON records.

A client describes a study as a :class:`StudySpec` -- a flat, JSON-round-
trippable description built entirely from *registry names* (application,
instruction-set catalogue, metric, backend, pipeline) plus plain scalars,
so a spec constructed on one host builds the identical study on any
other.  :meth:`StudySpec.fingerprint` digests the canonical JSON form;
the server uses it to label responses and tests use it to assert two
submissions describe the same work.

Responses stream as NDJSON (one JSON object per line, UTF-8):

``{"type": "job", ...}``
    One line per study job, in canonical plan order.  Carries the job
    coordinates (``set``, ``circuit``, ``error_scale``), the scored
    metric ``value`` and ``source`` -- where the measured distribution
    came from: ``"memory"`` / ``"disk"`` (cache tiers), ``"backend"``
    (this request invoked the simulator), ``"inflight"`` (coalesced onto
    a concurrent identical job) or ``"deferred"`` (out-of-shard miss;
    ``value`` is ``null``).
``{"type": "study", ...}``
    The merged study payload: ``rows`` (one per instruction set) and the
    ``table`` rendering, plus ``complete``/``deferred``.  This line is
    deterministic -- byte-identical across cold, warm and coalesced
    requests for the same spec -- because the engine's caches replay
    bit-identical vectors and the merge folds in canonical order.
``{"type": "stats", ...}``
    Per-request counters (jobs by source, backend invocations).  Last
    line; explicitly *not* deterministic across requests.
``{"type": "error", ...}``
    Terminal failure; no further lines follow.

Records are encoded with sorted keys and compact separators
(:func:`encode_record`), which is what makes byte-wise comparison of the
``study`` line meaningful.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642
"""Default bind address of ``repro serve`` (loopback only: the protocol
is unauthenticated by design -- multi-host deployments share work through
the disk cache tier, not by exposing the socket)."""

SUPPORTED_METRICS: Dict[str, str] = {
    "hop": "HOP",
    "xed": "XED",
    "xeb": "XEB",
    "tvd": "TVD",
}
"""Spec metric names -> display names.  ``success_rate`` is deliberately
absent: it scores against a known target bitstring, which a generic
(application, qubits) spec does not carry."""

SUPPORTED_CATALOGUES = ("google", "rigetti", "table2")
SUPPORTED_TOPOLOGIES = ("line", "ring", "grid")


def resolve_metric(name: str) -> Tuple[str, Callable[[np.ndarray, np.ndarray], float]]:
    """Map a spec metric name to ``(display_name, metric_function)``."""
    key = name.lower()
    if key == "hop":
        from repro.metrics.hop import heavy_output_probability

        return "HOP", heavy_output_probability
    if key == "xed":
        from repro.metrics.xeb import cross_entropy_difference

        return "XED", cross_entropy_difference
    if key == "xeb":
        from repro.metrics.xeb import normalized_linear_xeb_fidelity

        return "XEB", normalized_linear_xeb_fidelity
    if key == "tvd":
        from repro.metrics.distributions import total_variation_distance

        return "TVD", total_variation_distance
    known = ", ".join(sorted(SUPPORTED_METRICS))
    raise ValueError(f"unknown metric {name!r}; known: {known}")


@dataclass(frozen=True)
class StudySpec:
    """A JSON-round-trippable description of one instruction-set study.

    Every field is a registry name or a plain scalar -- no live objects
    -- so equal specs build equal studies in any process, and
    :meth:`fingerprint` is a stable identity for dedup and testing.
    """

    application: str
    num_qubits: int
    num_circuits: int = 1
    seed: int = 0
    metric: str = "hop"
    catalogue: str = "google"
    sets: Optional[Tuple[str, ...]] = None
    """Subset of the catalogue's instruction sets, in catalogue order;
    ``None`` selects the whole catalogue."""
    topology: str = "line"
    device_seed: int = 7
    pipeline: str = "default"
    shots: int = 3000
    sim_seed: int = 11
    trajectories: int = 30
    backend: str = "auto"
    error_scale: float = 1.0
    error_scales: Optional[Tuple[float, ...]] = None
    """Error-scale sweep: each scale != 1 adds a ``<set>-<scale>x`` alias
    of every selected instruction set, compiled with that error-rate
    multiplier (the Figure 10 ``FullfSim-2x`` pattern).  The sweep's jobs
    share compiled-circuit and noise-program *structure*, which is
    exactly what the engine's batched replay groups into one vectorised
    pass per circuit (see ``repro serve --batch``).  ``None`` means no
    sweep; scales multiply on top of ``error_scale``."""

    def __post_init__(self) -> None:
        if int(self.num_qubits) < 2:
            raise ValueError(f"num_qubits must be >= 2, got {self.num_qubits}")
        if int(self.num_circuits) < 1:
            raise ValueError(f"num_circuits must be >= 1, got {self.num_circuits}")
        if self.metric.lower() not in SUPPORTED_METRICS:
            known = ", ".join(sorted(SUPPORTED_METRICS))
            raise ValueError(f"unknown metric {self.metric!r}; known: {known}")
        if self.catalogue not in SUPPORTED_CATALOGUES:
            raise ValueError(
                f"unknown catalogue {self.catalogue!r}; known: {', '.join(SUPPORTED_CATALOGUES)}"
            )
        if self.topology not in SUPPORTED_TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; known: {', '.join(SUPPORTED_TOPOLOGIES)}"
            )
        if self.sets is not None:
            object.__setattr__(self, "sets", tuple(str(name) for name in self.sets))
        if float(self.error_scale) <= 0:
            raise ValueError(f"error_scale must be positive, got {self.error_scale}")
        if self.error_scales is not None:
            scales = tuple(float(scale) for scale in self.error_scales)
            if not scales:
                raise ValueError("error_scales must be non-empty when given")
            for scale in scales:
                if scale <= 0:
                    raise ValueError(f"error_scales must be positive, got {scale}")
            if len(set(scales)) != len(scales):
                raise ValueError(f"error_scales must be distinct, got {scales}")
            object.__setattr__(self, "error_scales", scales)

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON form (tuples become lists).

        ``error_scales`` is omitted entirely when unset (rather than
        serialised as ``null``) so specs written before the field existed
        keep their canonical JSON -- and therefore their
        :meth:`fingerprint` -- unchanged.
        """
        payload = asdict(self)
        if payload["sets"] is not None:
            payload["sets"] = list(payload["sets"])
        if payload["error_scales"] is None:
            del payload["error_scales"]
        else:
            payload["error_scales"] = list(payload["error_scales"])
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "StudySpec":
        """Inverse of :meth:`to_json_dict`; rejects unknown keys loudly."""
        if not isinstance(payload, dict):
            raise ValueError(f"study spec must be a JSON object, got {type(payload).__name__}")
        known = set(cls.__dataclass_fields__)
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown study-spec field(s): {', '.join(unknown)}")
        if "application" not in payload:
            raise ValueError("study spec requires an 'application'")
        if "num_qubits" not in payload:
            raise ValueError("study spec requires 'num_qubits'")
        data = dict(payload)
        if data.get("sets") is not None:
            data["sets"] = tuple(data["sets"])
        if data.get("error_scales") is not None:
            data["error_scales"] = tuple(data["error_scales"])
        return cls(**data)

    def fingerprint(self) -> str:
        """SHA-256 of the canonical (sorted, compact) JSON form."""
        canonical = json.dumps(
            self.to_json_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ShardSpec:
    """A ``k/N`` slice of the simulation key space.

    A service started with ``--shard 2/3`` *prepares* (compiles) every
    job of every study -- compilation is order-sensitive and cheap -- but
    only *simulates* jobs whose cache key hashes into its slice.
    Out-of-shard jobs are served from the cache tiers when present and
    otherwise **deferred** (reported, not computed).  N hosts pointed at
    a shared disk-cache directory therefore split a study's simulation
    work without coordinating: each computes its slice into the shared
    tier, and a final submission to any one host completes from disk.
    """

    index: int
    total: int

    def __post_init__(self) -> None:
        if self.total < 1:
            raise ValueError(f"shard total must be >= 1, got {self.total}")
        if not 0 <= self.index < self.total:
            raise ValueError(
                f"shard index must be in [0, {self.total}), got {self.index}"
            )

    @classmethod
    def parse(cls, raw: str) -> "ShardSpec":
        """Parse the CLI form ``k/N`` (1-based ``k``, e.g. ``1/2``, ``2/2``)."""
        parts = raw.strip().split("/")
        if len(parts) != 2:
            raise ValueError(f"shard must look like k/N (e.g. 1/2), got {raw!r}")
        try:
            k, n = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(f"shard must look like k/N (e.g. 1/2), got {raw!r}") from None
        if not 1 <= k <= n:
            raise ValueError(f"shard index must satisfy 1 <= k <= N, got {raw!r}")
        return cls(index=k - 1, total=n)

    def owns(self, cache_key: Tuple) -> bool:
        """Whether a simulation cache key falls in this shard's slice.

        Hashes through :func:`repro.caching.disk.cache_key_digest` -- the
        same fold the disk tier uses for file names -- so every host
        computes the same partition from the key alone.
        """
        if self.total == 1:
            return True
        from repro.caching.disk import cache_key_digest

        return int(cache_key_digest(cache_key), 16) % self.total == self.index

    def __str__(self) -> str:
        return f"{self.index + 1}/{self.total}"


def encode_record(record: Dict[str, object]) -> bytes:
    """One NDJSON line: canonical JSON (sorted keys, compact) + newline.

    Canonical encoding is load-bearing: it is what makes "byte-identical
    ``study`` line" a meaningful acceptance check across requests.
    """
    return (json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def decode_record(line: bytes) -> Optional[Dict[str, object]]:
    """Parse one NDJSON line; ``None`` for blank lines."""
    text = line.strip()
    if not text:
        return None
    record = json.loads(text)
    if not isinstance(record, dict):
        raise ValueError(f"NDJSON record must be a JSON object, got: {text[:80]!r}")
    return record
