"""Long-lived study service: ``repro serve`` / ``repro submit``.

The engine (:mod:`repro.experiments.engine`) already makes individual
studies cheap to re-run through its content-addressed cache tiers; this
package makes those tiers *shared infrastructure*.  A daemon process
(:mod:`repro.service.server`) keeps the in-process caches warm across
requests, deduplicates concurrent identical work through an in-flight
futures table (:mod:`repro.service.dedup`), and streams per-job results
back to clients as NDJSON (:mod:`repro.service.protocol`,
:mod:`repro.service.client`).

See ``docs/service.md`` for the protocol and the dedup semantics.
"""

from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ShardSpec,
    StudySpec,
    SUPPORTED_METRICS,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ShardSpec",
    "StudySpec",
    "SUPPORTED_METRICS",
]
