"""In-flight job deduplication: the third cache tier.

The memory and disk tiers deduplicate work that *finished*; this table
deduplicates work that is *happening*.  Keyed by the same content
digests the cache tiers use, it guarantees that N concurrent identical
jobs cost one backend invocation: the first arrival becomes the owner
and runs the work, later arrivals attach to the owner's future.

Two attachment patterns, matching the two kinds of engine work:

:meth:`InFlightTable.submit`
    Asynchronous, for **simulate** nodes.  The owner's scheduled task
    computes the vector *and stores it in the cache tiers* before the
    future resolves; the done callback then retires the key.  Waiters
    share the future's result directly -- simulation is pure, so one
    vector serves everyone.

:meth:`InFlightTable.coalesce`
    Synchronous, for **compile** nodes.  Compilation has a per-study
    side effect the result alone cannot carry: a cold compile registers
    gate types against the *calling study's* device, advancing its
    private calibration RNG.  A waiter therefore does not take the
    owner's result -- it waits for the owner to finish (so the
    compilation cache is populated), then re-runs the compile itself,
    which is a memory hit that replays the registrations on the waiter's
    own device.  The expensive work happens once; the cheap replay
    happens per study, exactly as determinism requires.

Failed-key backoff (the resilience layer): a key whose work just failed
retires immediately -- no poisoned future is inherited -- but the *next*
owner for that key is delayed by an exponentially growing cooldown
(``REPRO_RETRY_INFLIGHT_BACKOFF_MS``, default 50 ms, doubling per
consecutive failure, capped at 32x).  Under a failure storm this stops
every queued duplicate from hammering the same broken dependency
back-to-back; one success clears the key's history.  Waiters attaching
to *running* work are never delayed.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Callable, Dict, Hashable, Optional, Tuple, TypeVar

from repro.config import duration_env
from repro.resilience.faults import consult_fault

T = TypeVar("T")

INFLIGHT_BACKOFF_ENV_VAR = "REPRO_RETRY_INFLIGHT_BACKOFF_MS"

#: Cap on consecutive-failure doubling (base * 2**5) and on remembered
#: failed keys -- the table must stay O(running work), not O(history).
_BACKOFF_MAX_DOUBLINGS = 5
_FAILED_KEY_LIMIT = 1024


class InFlightTable:
    """Futures keyed by content digest; one owner per key, many waiters.

    Thread-safe.  Keys retire as soon as their work completes (or
    fails), so the table only ever holds *currently running* work --
    completed results live in the real cache tiers, and a failed key
    leaves the table immediately so the next arrival retries instead of
    inheriting a poisoned future (after the failed-key cooldown above).
    """

    def __init__(self, failure_backoff: Optional[float] = None) -> None:
        self._lock = threading.Lock()
        self._futures: Dict[Hashable, Future] = {}
        self._stats = {
            "started": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
            "backoffs": 0,
        }
        if failure_backoff is None:
            failure_backoff = duration_env(INFLIGHT_BACKOFF_ENV_VAR, 50) or 0.05
        self._failure_backoff = max(0.0, float(failure_backoff))
        # key -> (consecutive failures, monotonic not-before time)
        self._failed_keys: "OrderedDict[Hashable, Tuple[int, float]]" = OrderedDict()

    # -- failed-key backoff --------------------------------------------------

    def _backoff_remaining(self, key: Hashable) -> float:
        """Seconds until ``key`` may start again; call under the lock."""
        entry = self._failed_keys.get(key)
        if entry is None:
            return 0.0
        return entry[1] - time.monotonic()

    def _record_failure(self, key: Hashable) -> None:
        failures = self._failed_keys.pop(key, (0, 0.0))[0] + 1
        delay = self._failure_backoff * (
            2 ** min(failures - 1, _BACKOFF_MAX_DOUBLINGS)
        )
        self._failed_keys[key] = (failures, time.monotonic() + delay)
        while len(self._failed_keys) > _FAILED_KEY_LIMIT:
            self._failed_keys.popitem(last=False)

    def _acquire_ownership(self, key: Hashable, sleep=time.sleep):
        """Return the existing future for ``key``, or ``None`` once this
        caller may become the owner -- honouring the failed-key cooldown.

        Loops (sleeping *outside* the lock) until the key is either in
        flight (attach) or cold and past its cooldown (own).  Racing
        prospective owners re-check after sleeping, so exactly one owns.
        """
        while True:
            with self._lock:
                existing = self._futures.get(key)
                if existing is not None:
                    self._stats["coalesced"] += 1
                    return existing
                delay = self._backoff_remaining(key)
                if delay <= 0:
                    return None
                self._stats["backoffs"] += 1
            sleep(delay)

    # -- attachment patterns -------------------------------------------------

    def submit(
        self, key: Hashable, schedule: Callable[[], "Future[T]"]
    ) -> "Tuple[Future[T], bool]":
        """Attach to in-flight work under ``key``, scheduling it if absent.

        Returns ``(future, owner)``.  When no work is in flight the
        ``schedule`` thunk is invoked (under the table lock -- it must
        only *enqueue*, e.g. ``executor.submit``, never run the work
        inline) and its future registered; the caller is the owner
        (``owner=True``).  Otherwise the existing future is returned and
        the arrival is counted as coalesced.  The key retires via a done
        callback, so schedule the *full* job -- compute **and** cache
        store -- under the future: by the time the key is gone, the
        cache tiers already serve the result.
        """
        while True:
            existing = self._acquire_ownership(key)
            if existing is not None:
                return existing, False
            with self._lock:
                # Re-check: another prospective owner may have won the
                # race between _acquire_ownership releasing the lock and
                # this block taking it.
                raced = self._futures.get(key)
                if raced is not None:
                    self._stats["coalesced"] += 1
                    return raced, False
                if self._backoff_remaining(key) > 0:
                    continue
                future = schedule()
                self._futures[key] = future
                self._stats["started"] += 1
            future.add_done_callback(lambda f, key=key: self._retire(key, f))
            return future, True

    def coalesce(self, key: Hashable, fn: Callable[[], T]) -> Tuple[T, bool]:
        """Run ``fn`` under ``key``, or wait for the identical run in flight.

        Returns ``(result, owner)``.  The owner runs ``fn`` and resolves
        the shared future; waiters block until the owner finishes, then
        **re-run ``fn`` themselves** and return their own result (for
        cached compiles that re-run is a memory hit whose side-effect
        replay the waiter's device needs -- see the module docstring).
        An owner's exception propagates to the owner and is *not*
        inherited by waiters: they re-run ``fn`` and surface whatever it
        does for them.
        """
        while True:
            existing = self._acquire_ownership(key)
            if existing is not None:
                future = existing
                owner = False
                break
            with self._lock:
                raced = self._futures.get(key)
                if raced is not None:
                    self._stats["coalesced"] += 1
                    future = raced
                    owner = False
                    break
                if self._backoff_remaining(key) > 0:
                    continue
                future = Future()
                self._futures[key] = future
                self._stats["started"] += 1
                owner = True
                break
        if owner:
            try:
                result = fn()
            except BaseException as error:
                self._retire(key, None, failed=True)
                future.set_exception(error)
                raise
            self._retire(key, None, failed=False)
            future.set_result(result)
            return result, True
        # The ``inflight.wait`` fault point models an owner whose future
        # never resolves for this waiter (e.g. the owner's thread died
        # without retiring).  Skipping the wait degrades gracefully: the
        # re-run below recomputes -- correct, just uncoalesced.
        if consult_fault("inflight.wait") is None:
            try:
                future.result()
            except BaseException:
                # Owner failed; fall through -- the re-run below either
                # succeeds (transient failure) or raises for this caller too.
                pass
        return fn(), False

    def _retire(self, key: Hashable, future, failed: Optional[bool] = None) -> None:
        """Drop ``key`` and count the outcome (done callback / coalesce)."""
        if failed is None:
            failed = future is not None and future.exception() is not None
        with self._lock:
            self._futures.pop(key, None)
            self._stats["failed" if failed else "completed"] += 1
            if failed:
                self._record_failure(key)
            else:
                self._failed_keys.pop(key, None)

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus the current in-flight/cooldown key counts."""
        with self._lock:
            return {
                **self._stats,
                "inflight": len(self._futures),
                "failed_keys": len(self._failed_keys),
            }
