"""In-flight job deduplication: the third cache tier.

The memory and disk tiers deduplicate work that *finished*; this table
deduplicates work that is *happening*.  Keyed by the same content
digests the cache tiers use, it guarantees that N concurrent identical
jobs cost one backend invocation: the first arrival becomes the owner
and runs the work, later arrivals attach to the owner's future.

Two attachment patterns, matching the two kinds of engine work:

:meth:`InFlightTable.submit`
    Asynchronous, for **simulate** nodes.  The owner's scheduled task
    computes the vector *and stores it in the cache tiers* before the
    future resolves; the done callback then retires the key.  Waiters
    share the future's result directly -- simulation is pure, so one
    vector serves everyone.

:meth:`InFlightTable.coalesce`
    Synchronous, for **compile** nodes.  Compilation has a per-study
    side effect the result alone cannot carry: a cold compile registers
    gate types against the *calling study's* device, advancing its
    private calibration RNG.  A waiter therefore does not take the
    owner's result -- it waits for the owner to finish (so the
    compilation cache is populated), then re-runs the compile itself,
    which is a memory hit that replays the registrations on the waiter's
    own device.  The expensive work happens once; the cheap replay
    happens per study, exactly as determinism requires.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Callable, Dict, Hashable, Optional, Tuple, TypeVar

T = TypeVar("T")


class InFlightTable:
    """Futures keyed by content digest; one owner per key, many waiters.

    Thread-safe.  Keys retire as soon as their work completes (or
    fails), so the table only ever holds *currently running* work --
    completed results live in the real cache tiers, and a failed key
    leaves the table immediately so the next arrival retries instead of
    inheriting a poisoned future.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._futures: Dict[Hashable, Future] = {}
        self._stats = {"started": 0, "coalesced": 0, "completed": 0, "failed": 0}

    def submit(
        self, key: Hashable, schedule: Callable[[], "Future[T]"]
    ) -> "Tuple[Future[T], bool]":
        """Attach to in-flight work under ``key``, scheduling it if absent.

        Returns ``(future, owner)``.  When no work is in flight the
        ``schedule`` thunk is invoked (under the table lock -- it must
        only *enqueue*, e.g. ``executor.submit``, never run the work
        inline) and its future registered; the caller is the owner
        (``owner=True``).  Otherwise the existing future is returned and
        the arrival is counted as coalesced.  The key retires via a done
        callback, so schedule the *full* job -- compute **and** cache
        store -- under the future: by the time the key is gone, the
        cache tiers already serve the result.
        """
        with self._lock:
            existing = self._futures.get(key)
            if existing is not None:
                self._stats["coalesced"] += 1
                return existing, False
            future = schedule()
            self._futures[key] = future
            self._stats["started"] += 1
        future.add_done_callback(lambda f, key=key: self._retire(key, f))
        return future, True

    def coalesce(self, key: Hashable, fn: Callable[[], T]) -> Tuple[T, bool]:
        """Run ``fn`` under ``key``, or wait for the identical run in flight.

        Returns ``(result, owner)``.  The owner runs ``fn`` and resolves
        the shared future; waiters block until the owner finishes, then
        **re-run ``fn`` themselves** and return their own result (for
        cached compiles that re-run is a memory hit whose side-effect
        replay the waiter's device needs -- see the module docstring).
        An owner's exception propagates to the owner and is *not*
        inherited by waiters: they re-run ``fn`` and surface whatever it
        does for them.
        """
        with self._lock:
            existing = self._futures.get(key)
            if existing is None:
                future: Future = Future()
                self._futures[key] = future
                self._stats["started"] += 1
                owner = True
            else:
                future = existing
                self._stats["coalesced"] += 1
                owner = False
        if owner:
            try:
                result = fn()
            except BaseException as error:
                self._retire(key, None, failed=True)
                future.set_exception(error)
                raise
            self._retire(key, None, failed=False)
            future.set_result(result)
            return result, True
        try:
            future.result()
        except BaseException:
            # Owner failed; fall through -- the re-run below either
            # succeeds (transient failure) or raises for this caller too.
            pass
        return fn(), False

    def _retire(self, key: Hashable, future, failed: Optional[bool] = None) -> None:
        """Drop ``key`` and count the outcome (done callback / coalesce)."""
        if failed is None:
            failed = future is not None and future.exception() is not None
        with self._lock:
            self._futures.pop(key, None)
            self._stats["failed" if failed else "completed"] += 1

    def stats(self) -> Dict[str, int]:
        """Lifetime counters plus the current in-flight key count."""
        with self._lock:
            return {**self._stats, "inflight": len(self._futures)}
