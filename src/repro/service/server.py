"""The ``repro serve`` daemon: a long-lived study service over the engine.

One process, started once, serving many study submissions.  What a
daemon buys over one-shot ``repro fig10`` invocations:

* the **in-process cache tiers** (compilation, noise programs, ideal
  distributions, simulation results, autotuner verdicts) stay warm
  across requests instead of dying with each CLI process;
* **concurrent identical requests** coalesce onto one execution through
  the in-flight futures table (:mod:`repro.service.dedup`) -- two
  clients submitting the same study simultaneously cost one set of
  backend invocations, not two;
* the **disk tier doubles as a shared artifact store**: services started
  with ``--shard k/N`` against a common cache directory split a study's
  simulation work by key range without any coordination protocol.

The container this runs in is single-CPU: the win is deduplication and
cache residency, not parallelism.  ``exec_workers`` therefore defaults
to 1; raising it only helps when backend invocations block on something
other than the CPU.

Execution model per request (:meth:`StudyService.run_study_spec`):

1. *Build* the study from the spec's registry names (fresh device per
   request -- determinism requires each study to sample calibration
   through its own RNG in canonical order).
2. *Prepare* every job serially in canonical order.  Compiles route
   through :meth:`~repro.service.dedup.InFlightTable.coalesce`, so an
   identical compile already running in another request is awaited and
   replayed rather than recomputed.
3. *Resolve* each job: cache tiers first (memory, then disk), then the
   in-flight table (attach to a concurrent identical simulation), then
   -- if this service's shard owns the key -- schedule the backend
   invocation; out-of-shard misses are deferred.
4. *Stream* one NDJSON ``job`` record per job in canonical order, then
   the deterministic ``study`` record, then a ``stats`` record.

The HTTP layer is stdlib-only (``http.server``): POST ``/v1/studies``
streams the NDJSON response; GET ``/v1/stats`` and ``/v1/health`` return
JSON snapshots.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterator, Optional

from repro.service.dedup import InFlightTable
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ShardSpec,
    StudySpec,
    encode_record,
    resolve_metric,
)


class StudyService:
    """The daemon's engine-facing core (usable in-process, without HTTP).

    Thread-safe: requests arrive on HTTP handler threads and share the
    two in-flight tables, the executor and the counters.  Engine-level
    shared state (the global caches) carries its own locks; per-study
    state (the device and its RNG) is created fresh per request and
    never shared.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        exec_workers: int = 1,
        shard: Optional[ShardSpec] = None,
        batch: int = 1,
    ) -> None:
        from repro.caching.disk import disk_cache_for, get_global_disk_cache

        self.shard = shard
        self.batch = int(batch)
        """Batched-replay knob (``repro serve --batch``): ``1`` keeps the
        per-job scheduling path, ``0``/``N>=2`` makes each request queue
        its owned cache misses and execute same-structure groups as one
        vectorised backend pass between NDJSON flushes (see
        :func:`repro.experiments.engine.group_prepared_for_batch`).  An
        execution-strategy knob of the *server*, deliberately not a
        :class:`~repro.service.protocol.StudySpec` field: it never changes
        study content, cache keys or the ``study`` record bytes."""
        if self.batch < 0:
            raise ValueError(f"batch must be >= 0, got {batch}")
        self._sim_disk = (
            disk_cache_for(cache_dir) if cache_dir else get_global_disk_cache()
        )
        self._compiles = InFlightTable()
        self._simulations = InFlightTable()
        self._executor = ThreadPoolExecutor(
            max_workers=max(int(exec_workers), 1),
            thread_name_prefix="repro-serve-exec",
        )
        self._lock = threading.Lock()
        self._counters = {
            "studies": 0,
            "jobs": 0,
            "jobs_memory": 0,
            "jobs_disk": 0,
            "jobs_backend": 0,
            "jobs_inflight": 0,
            "jobs_deferred": 0,
            "batched_passes": 0,
        }

    # -- study construction -------------------------------------------------

    def build_study(self, spec: StudySpec) -> Dict[str, object]:
        """Materialise a spec into the objects ``run_study_spec`` drives.

        Everything comes from registries keyed by the spec's names, so
        equal specs materialise into studies with equal content
        fingerprints in any process -- the property the cache tiers and
        the in-flight tables key on.
        """
        from repro.applications.registry import build_suite
        from repro.core.instruction_sets import (
            google_catalogue,
            rigetti_catalogue,
            table2_catalogue,
        )
        from repro.devices.synthetic import synthetic_device
        from repro.experiments.runner import SimulationOptions
        from repro.simulators.backend import available_backends, resolve_backend

        if spec.backend != "auto" and spec.backend not in available_backends():
            known = ", ".join(sorted(available_backends()))
            raise ValueError(f"unknown backend {spec.backend!r}; known: {known}")
        catalogues = {
            "google": google_catalogue,
            "rigetti": rigetti_catalogue,
            "table2": table2_catalogue,
        }
        catalogue = catalogues[spec.catalogue]()
        if spec.sets is None:
            instruction_sets = dict(catalogue)
        else:
            unknown = sorted(set(spec.sets) - set(catalogue))
            if unknown:
                known = ", ".join(catalogue)
                raise ValueError(
                    f"unknown instruction set(s) {', '.join(unknown)} "
                    f"for catalogue {spec.catalogue!r}; known: {known}"
                )
            # Catalogue order, not request order: canonical job order must
            # be a property of the study content, never of spelling.
            instruction_sets = {
                name: catalogue[name] for name in catalogue if name in set(spec.sets)
            }
        metric_name, metric = resolve_metric(spec.metric)
        circuits = build_suite(
            spec.application, spec.num_qubits, spec.num_circuits, spec.seed
        )
        device = synthetic_device(
            max(spec.num_qubits, 2), spec.topology, seed=spec.device_seed
        )
        options = SimulationOptions(
            shots=spec.shots,
            seed=spec.sim_seed,
            trajectories=spec.trajectories,
            batch=self.batch,
        )
        # Error-scale sweep: each scale != 1 aliases every selected set to
        # a "<name>-<scale>x" variant compiled with that multiplier (the
        # Figure 10 FullfSim-2x pattern), multiplying on top of the base
        # error_scale.  Sweep jobs share compiled-circuit and noise-program
        # structure, which is exactly what batched replay groups.
        base_scale = float(spec.error_scale)
        error_scales: Dict[str, float] = {}
        if spec.error_scales:
            swept = {}
            for name, instruction_set in instruction_sets.items():
                swept[name] = instruction_set
                if base_scale != 1.0:
                    error_scales[name] = base_scale
                for scale in spec.error_scales:
                    if float(scale) == 1.0:
                        continue
                    alias = f"{name}-{scale:g}x"
                    swept[alias] = instruction_set
                    error_scales[alias] = base_scale * float(scale)
            instruction_sets = swept
        elif base_scale != 1.0:
            error_scales = {name: base_scale for name in instruction_sets}
        return {
            "circuits": circuits,
            "device": device,
            "instruction_sets": instruction_sets,
            "error_scales": error_scales,
            "metric_name": metric_name,
            "metric": metric,
            "options": options,
            "backend": resolve_backend(spec.backend),
        }

    # -- dedup-aware compile wrapper ----------------------------------------

    def _coalescing_compile_fn(self) -> Callable:
        """A ``compile_circuit_cached`` wrapper routed through the table.

        The coalesce key is content-addressed *independently of pipeline
        resolution* (it uses the pipeline's requested name, so it also
        covers ``pipeline="auto"``): two requests at the same point of
        identical studies hold devices with identical calibration
        fingerprints, hence compute identical keys.  The waiter's re-run
        (see :meth:`InFlightTable.coalesce`) is then a compilation-cache
        memory hit that replays gate-type registrations on the waiter's
        own device.
        """
        from repro.circuits.hashing import (
            circuit_fingerprint,
            instruction_set_fingerprint,
        )
        from repro.core.pipeline import _decomposer_fingerprint, compile_circuit_cached

        def compile_fn(circuit, device, instruction_set, **kwargs):
            key = (
                "service-compile",
                circuit_fingerprint(circuit),
                device.calibration_fingerprint(),
                instruction_set_fingerprint(instruction_set),
                _decomposer_fingerprint(kwargs["decomposer"]),
                str(kwargs.get("pipeline", "default")),
                bool(kwargs.get("approximate", True)),
                bool(kwargs.get("use_noise_adaptivity", True)),
                float(kwargs.get("error_scale", 1.0)),
            )
            result, _owner = self._compiles.coalesce(
                key,
                lambda: compile_circuit_cached(circuit, device, instruction_set, **kwargs),
            )
            return result

        return compile_fn

    # -- request execution ---------------------------------------------------

    def run_study_spec(self, spec: StudySpec) -> Iterator[Dict[str, object]]:
        """Execute one study spec; yield protocol records in stream order.

        Builds (and therefore validates) the study *eagerly* -- unknown
        registry names raise here, before the HTTP layer commits to a
        200 -- then returns the streaming generator.  In-process callers
        (tests, benchmarks) iterate the result directly.
        """
        return self._stream_study(spec, self.build_study(spec))

    def _stream_study(
        self, spec: StudySpec, parts: Dict[str, object]
    ) -> Iterator[Dict[str, object]]:
        from repro.experiments.engine import (
            ExperimentJob,
            PreparedJob,
            StudyPlan,
            execute_prepared_batch,
            execute_prepared_simulation,
            fetch_cached_simulation,
            group_prepared_for_batch,
            ideal_distribution_cached,
            merge_study_results,
            prepare_job,
            store_simulation,
        )

        plan = StudyPlan(
            set_names=list(parts["instruction_sets"]),
            num_circuits=len(parts["circuits"]),
            error_scales=dict(parts["error_scales"]),
        )
        jobs = plan.jobs()
        ideal_by_index = [
            ideal_distribution_cached(circuit) for circuit in parts["circuits"]
        ]

        compile_fn = self._coalescing_compile_fn()
        prepared: Dict[ExperimentJob, PreparedJob] = {}
        # Values are source strings; scheduled jobs hold a transient
        # ("owner", invoked) marker until their future resolves.
        sources: Dict[ExperimentJob, object] = {}
        measured: Dict[ExperimentJob, object] = {}
        futures: Dict[ExperimentJob, Future] = {}
        # Batched mode (self.batch != 1): owned misses queue here as
        # (unit, job_future, invoked) instead of going to the executor one
        # by one; after the prepare loop they are grouped by structure and
        # each group runs as one vectorised backend pass.
        pending_batch = []
        request_batch = {"passes": 0}

        # Prepare serially in canonical order (device RNG), resolving each
        # job against the tiers as soon as it is prepared so in-flight
        # submissions overlap the remaining compiles.
        for job in jobs:
            unit = prepare_job(
                job,
                parts["circuits"][job.circuit_index],
                parts["device"],
                parts["instruction_sets"][job.set_name],
                options=parts["options"],
                pipeline=spec.pipeline,
                disk_cache=self._sim_disk,
                backend=parts["backend"],
                compile_fn=compile_fn,
            )
            prepared[job] = unit
            hit = fetch_cached_simulation(unit, self._sim_disk)
            if hit is not None:
                measured[job], sources[job] = hit
                continue
            if self.shard is not None and not self.shard.owns(unit.cache_key):
                sources[job] = "deferred"
                continue

            invoked = {"backend": False}

            if self.batch != 1:
                # Register a bare per-job future under the cache key so
                # concurrent identical jobs still coalesce onto it; the
                # owner's group task resolves it (store-before-resolve,
                # like the per-job path) once the batch executes.
                job_future: Future = Future()
                future, owner = self._simulations.submit(
                    unit.cache_key, lambda job_future=job_future: job_future
                )
                if owner:
                    pending_batch.append((unit, job_future, invoked))
                sources[job] = ("owner", invoked) if owner else "inflight"
                futures[job] = future
                continue

            def task(unit=unit, invoked=invoked):
                # Re-check the tiers first: a concurrent identical job may
                # have stored and retired its in-flight key in the gap
                # between this request's cache miss and its submit.  The
                # in-flight table only retires a key *after* the store, so
                # post-retirement arrivals always hit here.
                hit = fetch_cached_simulation(unit, self._sim_disk)
                if hit is not None:
                    return hit[0]
                invoked["backend"] = True
                vector = execute_prepared_simulation(unit)
                # Store *before* the future resolves: the in-flight key
                # retires on completion, and by then the tiers must
                # already serve the result (no gap for a third arrival
                # to recompute in).
                return store_simulation(unit, vector, self._sim_disk)

            future, owner = self._simulations.submit(
                unit.cache_key, lambda task=task: self._executor.submit(task)
            )
            # Source is resolved after the future completes: an owner whose
            # task found the tiers already populated reports the cache, not
            # the backend, so per-request `executed` equals real backend
            # invocations.
            sources[job] = ("owner", invoked) if owner else "inflight"
            futures[job] = future

        if pending_batch:
            entry_for = {id(entry[0]): entry for entry in pending_batch}

            def run_group(group):
                entries = [entry_for[id(unit)] for unit in group]
                try:
                    remaining = []
                    for unit, job_future, invoked in entries:
                        # Re-check the tiers (same reason as the per-job
                        # task): a concurrent request may have stored this
                        # key after our miss.
                        hit = fetch_cached_simulation(unit, self._sim_disk)
                        if hit is not None:
                            job_future.set_result(hit[0])
                        else:
                            remaining.append((unit, job_future, invoked))
                    if not remaining:
                        return
                    vectors = execute_prepared_batch(
                        [unit for unit, _, _ in remaining]
                    )
                    if len(remaining) > 1:
                        with self._lock:
                            self._counters["batched_passes"] += 1
                            request_batch["passes"] += 1
                    for (unit, job_future, invoked), vector in zip(
                        remaining, vectors
                    ):
                        invoked["backend"] = True
                        job_future.set_result(
                            store_simulation(unit, vector, self._sim_disk)
                        )
                except BaseException as error:  # resolve waiters, don't hang
                    for _, job_future, _ in entries:
                        if not job_future.done():
                            job_future.set_exception(error)

            # One executor task per structure group: each group is a
            # single vectorised pass (singletons fall back to the
            # sequential path inside execute_prepared_batch).
            for group in group_prepared_for_batch(
                [entry[0] for entry in pending_batch]
            ):
                self._executor.submit(run_group, group)

        # Collect and stream per-job records in canonical order.
        deferred = 0
        for index, job in enumerate(jobs):
            if job in futures:
                measured[job] = futures[job].result()
            if isinstance(sources[job], tuple):
                _, invoked_flag = sources[job]
                # A rare owner whose task was answered by the tiers (see
                # the re-check in `task`) counts as a memory hit.
                sources[job] = "backend" if invoked_flag["backend"] else "memory"
            source = sources[job]
            record: Dict[str, object] = {
                "type": "job",
                "index": index,
                "set": job.set_name,
                "circuit": job.circuit_index,
                "error_scale": job.error_scale,
                "source": source,
                "value": None,
            }
            if source == "deferred":
                deferred += 1
            else:
                record["value"] = float(
                    parts["metric"](measured[job], ideal_by_index[job.circuit_index])
                )
            with self._lock:
                self._counters["jobs"] += 1
                self._counters[f"jobs_{source}"] += 1
            yield record

        complete = deferred == 0
        study_record: Dict[str, object] = {
            "type": "study",
            "fingerprint": spec.fingerprint(),
            "application": spec.application,
            "metric": parts["metric_name"],
            "complete": complete,
            "deferred": deferred,
        }
        if complete:
            study = merge_study_results(
                spec.application,
                parts["metric_name"],
                parts["metric"],
                plan,
                ideal_by_index,
                {job: unit.compiled for job, unit in prepared.items()},
                measured,
            )
            study_record["rows"] = study.rows()
            study_record["table"] = study.format_table()
        with self._lock:
            self._counters["studies"] += 1
        yield study_record
        yield {
            "type": "stats",
            "executed": sum(1 for s in sources.values() if s == "backend"),
            "coalesced": sum(1 for s in sources.values() if s == "inflight"),
            "from_memory": sum(1 for s in sources.values() if s == "memory"),
            "from_disk": sum(1 for s in sources.values() if s == "disk"),
            "deferred": deferred,
            "batched_passes": request_batch["passes"],
        }

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Service-lifetime counters plus every engine cache's counters."""
        from repro.core.pipeline import global_compilation_cache
        from repro.experiments.engine import ideal_cache_stats, simulation_cache_stats
        from repro.simulators.array_ops import array_backend_stats
        from repro.simulators.backend import backend_invocation_counts
        from repro.simulators.noise_program import noise_program_cache_stats

        with self._lock:
            counters = dict(self._counters)
        return {
            "service": counters,
            "shard": str(self.shard) if self.shard is not None else None,
            "batch": self.batch,
            "array_backends": array_backend_stats(),
            "inflight_compiles": self._compiles.stats(),
            "inflight_simulations": self._simulations.stats(),
            "backend_invocations": backend_invocation_counts(),
            "caches": {
                "compilation_memory": global_compilation_cache().stats(),
                "ideal_distributions": ideal_cache_stats(),
                "noise_programs": noise_program_cache_stats(),
                "simulation_memory": simulation_cache_stats(),
                "disk": self._sim_disk.stats() if self._sim_disk is not None else None,
            },
        }

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        self._executor.shutdown(wait=True)


# ---------------------------------------------------------------------------
# HTTP layer (stdlib only)
# ---------------------------------------------------------------------------


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes: POST /v1/studies (NDJSON stream), GET /v1/stats, /v1/health."""

    # HTTP/1.0 keeps the streaming body close-delimited: no Content-Length
    # needed, no chunked framing, and http.client reads until EOF.
    protocol_version = "HTTP/1.0"
    service: StudyService  # injected by make_http_server

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # quiet: the daemon's stdout is the operator's console

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/v1/health":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/v1/stats":
            self._send_json(200, self.service.stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path != "/v1/studies":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            spec = StudySpec.from_json_dict(json.loads(self.rfile.read(length)))
            stream = self.service.run_study_spec(spec)  # validates eagerly
        except (ValueError, TypeError) as error:
            self._send_json(400, {"error": str(error)})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            for record in stream:
                self.wfile.write(encode_record(record))
                self.wfile.flush()
        except BrokenPipeError:
            pass  # client went away mid-stream; nothing to clean up
        except Exception as error:  # stream already started: error in-band
            try:
                self.wfile.write(
                    encode_record(
                        {"type": "error", "error": f"{type(error).__name__}: {error}"}
                    )
                )
            except BrokenPipeError:
                pass


def make_http_server(
    service: StudyService, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server around ``service`` (port 0 = ephemeral)."""
    handler = type("BoundServiceHandler", (_ServiceHandler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    cache_dir: Optional[str] = None,
    exec_workers: int = 1,
    shard: Optional[ShardSpec] = None,
    batch: int = 1,
) -> str:
    """Run the daemon until interrupted; returns a farewell line.

    Prints the listening address (flushed) once the socket is bound, so
    wrappers -- the CI smoke test, shell scripts -- can wait for that
    line before submitting.
    """
    service = StudyService(
        cache_dir=cache_dir, exec_workers=exec_workers, shard=shard, batch=batch
    )
    server = make_http_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    shard_note = f" shard={shard}" if shard is not None else ""
    batch_note = f" batch={batch}" if int(batch) != 1 else ""
    print(
        f"repro serve listening on http://{bound_host}:{bound_port}{shard_note}{batch_note}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return "repro serve: shut down"
