"""The ``repro serve`` daemon: a long-lived study service over the engine.

One process, started once, serving many study submissions.  What a
daemon buys over one-shot ``repro fig10`` invocations:

* the **in-process cache tiers** (compilation, noise programs, ideal
  distributions, simulation results, autotuner verdicts) stay warm
  across requests instead of dying with each CLI process;
* **concurrent identical requests** coalesce onto one execution through
  the in-flight futures table (:mod:`repro.service.dedup`) -- two
  clients submitting the same study simultaneously cost one set of
  backend invocations, not two;
* the **disk tier doubles as a shared artifact store**: services started
  with ``--shard k/N`` against a common cache directory split a study's
  simulation work by key range without any coordination protocol.

The container this runs in is single-CPU: the win is deduplication and
cache residency, not parallelism.  ``exec_workers`` therefore defaults
to 1; raising it only helps when backend invocations block on something
other than the CPU.

Execution model per request (:meth:`StudyService.run_study_spec`):

1. *Build* the study from the spec's registry names (fresh device per
   request -- determinism requires each study to sample calibration
   through its own RNG in canonical order).
2. *Prepare* every job serially in canonical order.  Compiles route
   through :meth:`~repro.service.dedup.InFlightTable.coalesce`, so an
   identical compile already running in another request is awaited and
   replayed rather than recomputed.
3. *Resolve* each job: cache tiers first (memory, then disk), then the
   in-flight table (attach to a concurrent identical simulation), then
   -- if this service's shard owns the key -- schedule the backend
   invocation; out-of-shard misses are deferred.
4. *Stream* one NDJSON ``job`` record per job in canonical order, then
   the deterministic ``study`` record, then a ``stats`` record.

The HTTP layer is stdlib-only (``http.server``): POST ``/v1/studies``
streams the NDJSON response; GET ``/v1/stats`` and ``/v1/health`` return
JSON snapshots.

Resilience (see ``docs/resilience.md``): backend invocations retry under
the ``REPRO_RETRY_*`` policy; SIGTERM/SIGINT trigger a **graceful
drain** -- new submissions get 503, requests already streaming flush
their in-flight futures and close with a final ``complete:false`` study
record for whatever could not finish -- and ``/v1/health`` reports
``ok``/``degraded``/``draining`` instead of an unconditional ``ok``.
Per-request deadlines (``--request-deadline`` /
``REPRO_RETRY_REQUEST_DEADLINE_MS``) bound how long one submission may
hold a handler thread.
"""

from __future__ import annotations

import json
import signal
import threading
import time
import warnings
from concurrent.futures import Future, ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Iterator, Optional

from repro.config import duration_env
from repro.resilience import (
    InjectedFault,
    ResilienceCounters,
    RetryPolicy,
    call_with_retry,
    consult_fault,
    fault_stats,
    retry_stats,
)
from repro.service.dedup import InFlightTable
from repro.service.protocol import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ShardSpec,
    StudySpec,
    encode_record,
    resolve_metric,
)

REQUEST_DEADLINE_ENV_VAR = "REPRO_RETRY_REQUEST_DEADLINE_MS"


class ServiceDraining(RuntimeError):
    """The daemon is draining and no longer accepts new studies (HTTP 503)."""


class StudyService:
    """The daemon's engine-facing core (usable in-process, without HTTP).

    Thread-safe: requests arrive on HTTP handler threads and share the
    two in-flight tables, the executor and the counters.  Engine-level
    shared state (the global caches) carries its own locks; per-study
    state (the device and its RNG) is created fresh per request and
    never shared.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        exec_workers: int = 1,
        shard: Optional[ShardSpec] = None,
        batch: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        request_deadline: Optional[float] = None,
    ) -> None:
        from repro.caching.disk import disk_cache_for, get_global_disk_cache

        self.shard = shard
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy.from_env()
        )
        """Bounds for re-executing failed backend invocations
        (``REPRO_RETRY_*`` by default); see :mod:`repro.resilience`."""
        self.request_deadline = (
            request_deadline
            if request_deadline is not None
            else duration_env(REQUEST_DEADLINE_ENV_VAR, None)
        )
        """Per-request wall-clock budget in seconds (``None`` = unbounded).
        A request past its deadline stops waiting: remaining jobs are
        reported with ``source:"deadline"`` and the study closes with
        ``complete:false`` -- the stream always terminates."""
        self.batch = int(batch)
        """Batched-replay knob (``repro serve --batch``): ``1`` keeps the
        per-job scheduling path, ``0``/``N>=2`` makes each request queue
        its owned cache misses and execute same-structure groups as one
        vectorised backend pass between NDJSON flushes (see
        :func:`repro.experiments.engine.group_prepared_for_batch`).  An
        execution-strategy knob of the *server*, deliberately not a
        :class:`~repro.service.protocol.StudySpec` field: it never changes
        study content, cache keys or the ``study`` record bytes."""
        if self.batch < 0:
            raise ValueError(f"batch must be >= 0, got {batch}")
        self._sim_disk = (
            disk_cache_for(cache_dir) if cache_dir else get_global_disk_cache()
        )
        self._compiles = InFlightTable()
        self._simulations = InFlightTable()
        self._executor = ThreadPoolExecutor(
            max_workers=max(int(exec_workers), 1),
            thread_name_prefix="repro-serve-exec",
        )
        self._lock = threading.Lock()
        self._counters = {
            "studies": 0,
            "jobs": 0,
            "jobs_memory": 0,
            "jobs_disk": 0,
            "jobs_backend": 0,
            "jobs_inflight": 0,
            "jobs_deferred": 0,
            "jobs_drained": 0,
            "jobs_deadline": 0,
            "requests_rejected": 0,
            "batched_passes": 0,
        }
        # Graceful-drain state: once _draining is set, new submissions are
        # rejected (503) while requests already streaming finish flushing
        # their in-flight futures; _active tracks streaming requests so
        # drain() knows when the last one closed its NDJSON stream.
        self._draining = threading.Event()
        self._active = 0
        self._active_cond = threading.Condition()
        self._resilience = ResilienceCounters()

    # -- graceful drain ------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin_drain(self) -> None:
        """Stop accepting new studies; in-flight streams keep flushing."""
        self._draining.set()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Begin draining and wait for active streams to finish.

        Returns ``True`` when every in-flight request closed its stream
        within ``timeout`` seconds (``None`` = wait indefinitely).
        """
        self.begin_drain()
        deadline = time.monotonic() + timeout if timeout is not None else None
        with self._active_cond:
            while self._active > 0:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._active_cond.wait(remaining)
        return True

    def _begin_request(self) -> None:
        with self._active_cond:
            self._active += 1

    def _end_request(self) -> None:
        with self._active_cond:
            self._active = max(0, self._active - 1)
            self._active_cond.notify_all()

    def health(self) -> Dict[str, object]:
        """Liveness snapshot: ``ok``, ``degraded`` or ``draining``.

        ``degraded`` means the process kept working but not at full
        fidelity: retry budgets were exhausted, an executor fell back, or
        in-flight keys are in failure cooldown.  Degraded is still
        serving -- the status is a signal to operators, not a refusal.
        """
        retries = retry_stats()
        cooling = (
            self._compiles.stats()["failed_keys"]
            + self._simulations.stats()["failed_keys"]
        )
        status = "ok"
        if retries["exhausted"] or retries["executor_fallbacks"] or cooling:
            status = "degraded"
        if self.draining:
            status = "draining"
        with self._active_cond:
            active = self._active
        return {
            "status": status,
            "draining": self.draining,
            "active_requests": active,
            "retries": retries["retries"],
            "exhausted": retries["exhausted"],
            "executor_fallbacks": retries["executor_fallbacks"],
            "failed_keys_cooling": cooling,
        }

    # -- study construction -------------------------------------------------

    def build_study(self, spec: StudySpec) -> Dict[str, object]:
        """Materialise a spec into the objects ``run_study_spec`` drives.

        Everything comes from registries keyed by the spec's names, so
        equal specs materialise into studies with equal content
        fingerprints in any process -- the property the cache tiers and
        the in-flight tables key on.
        """
        from repro.applications.registry import build_suite
        from repro.core.instruction_sets import (
            google_catalogue,
            rigetti_catalogue,
            table2_catalogue,
        )
        from repro.devices.synthetic import synthetic_device
        from repro.experiments.runner import SimulationOptions
        from repro.simulators.backend import available_backends, resolve_backend

        if spec.backend != "auto" and spec.backend not in available_backends():
            known = ", ".join(sorted(available_backends()))
            raise ValueError(f"unknown backend {spec.backend!r}; known: {known}")
        catalogues = {
            "google": google_catalogue,
            "rigetti": rigetti_catalogue,
            "table2": table2_catalogue,
        }
        catalogue = catalogues[spec.catalogue]()
        if spec.sets is None:
            instruction_sets = dict(catalogue)
        else:
            unknown = sorted(set(spec.sets) - set(catalogue))
            if unknown:
                known = ", ".join(catalogue)
                raise ValueError(
                    f"unknown instruction set(s) {', '.join(unknown)} "
                    f"for catalogue {spec.catalogue!r}; known: {known}"
                )
            # Catalogue order, not request order: canonical job order must
            # be a property of the study content, never of spelling.
            instruction_sets = {
                name: catalogue[name] for name in catalogue if name in set(spec.sets)
            }
        metric_name, metric = resolve_metric(spec.metric)
        circuits = build_suite(
            spec.application, spec.num_qubits, spec.num_circuits, spec.seed
        )
        device = synthetic_device(
            max(spec.num_qubits, 2), spec.topology, seed=spec.device_seed
        )
        options = SimulationOptions(
            shots=spec.shots,
            seed=spec.sim_seed,
            trajectories=spec.trajectories,
            batch=self.batch,
        )
        # Error-scale sweep: each scale != 1 aliases every selected set to
        # a "<name>-<scale>x" variant compiled with that multiplier (the
        # Figure 10 FullfSim-2x pattern), multiplying on top of the base
        # error_scale.  Sweep jobs share compiled-circuit and noise-program
        # structure, which is exactly what batched replay groups.
        base_scale = float(spec.error_scale)
        error_scales: Dict[str, float] = {}
        if spec.error_scales:
            swept = {}
            for name, instruction_set in instruction_sets.items():
                swept[name] = instruction_set
                if base_scale != 1.0:
                    error_scales[name] = base_scale
                for scale in spec.error_scales:
                    if float(scale) == 1.0:
                        continue
                    alias = f"{name}-{scale:g}x"
                    swept[alias] = instruction_set
                    error_scales[alias] = base_scale * float(scale)
            instruction_sets = swept
        elif base_scale != 1.0:
            error_scales = {name: base_scale for name in instruction_sets}
        return {
            "circuits": circuits,
            "device": device,
            "instruction_sets": instruction_sets,
            "error_scales": error_scales,
            "metric_name": metric_name,
            "metric": metric,
            "options": options,
            "backend": resolve_backend(spec.backend),
        }

    # -- dedup-aware compile wrapper ----------------------------------------

    def _coalescing_compile_fn(self) -> Callable:
        """A ``compile_circuit_cached`` wrapper routed through the table.

        The coalesce key is content-addressed *independently of pipeline
        resolution* (it uses the pipeline's requested name, so it also
        covers ``pipeline="auto"``): two requests at the same point of
        identical studies hold devices with identical calibration
        fingerprints, hence compute identical keys.  The waiter's re-run
        (see :meth:`InFlightTable.coalesce`) is then a compilation-cache
        memory hit that replays gate-type registrations on the waiter's
        own device.
        """
        from repro.circuits.hashing import (
            circuit_fingerprint,
            instruction_set_fingerprint,
        )
        from repro.core.pipeline import _decomposer_fingerprint, compile_circuit_cached

        def compile_fn(circuit, device, instruction_set, **kwargs):
            key = (
                "service-compile",
                circuit_fingerprint(circuit),
                device.calibration_fingerprint(),
                instruction_set_fingerprint(instruction_set),
                _decomposer_fingerprint(kwargs["decomposer"]),
                str(kwargs.get("pipeline", "default")),
                bool(kwargs.get("approximate", True)),
                bool(kwargs.get("use_noise_adaptivity", True)),
                float(kwargs.get("error_scale", 1.0)),
            )
            result, _owner = self._compiles.coalesce(
                key,
                lambda: compile_circuit_cached(circuit, device, instruction_set, **kwargs),
            )
            return result

        return compile_fn

    # -- request execution ---------------------------------------------------

    def run_study_spec(self, spec: StudySpec) -> Iterator[Dict[str, object]]:
        """Execute one study spec; yield protocol records in stream order.

        Builds (and therefore validates) the study *eagerly* -- unknown
        registry names raise here, before the HTTP layer commits to a
        200 -- then returns the streaming generator.  In-process callers
        (tests, benchmarks) iterate the result directly.  Raises
        :class:`ServiceDraining` (HTTP 503) once a drain has begun.
        """
        if self.draining:
            with self._lock:
                self._counters["requests_rejected"] += 1
            raise ServiceDraining(
                "service is draining; not accepting new studies"
            )
        return self._stream_study(spec, self.build_study(spec))

    def _stream_study(
        self, spec: StudySpec, parts: Dict[str, object]
    ) -> Iterator[Dict[str, object]]:
        # Generator body: runs lazily, so active-request tracking starts
        # at the first record pull and ends (via finally) when the stream
        # is exhausted or closed -- exactly the window drain() must wait
        # out.
        self._begin_request()
        try:
            yield from self._stream_study_inner(spec, parts)
        finally:
            self._end_request()

    def _stream_study_inner(
        self, spec: StudySpec, parts: Dict[str, object]
    ) -> Iterator[Dict[str, object]]:
        from repro.experiments.engine import (
            ExperimentJob,
            PreparedJob,
            StudyPlan,
            execute_prepared_batch,
            execute_prepared_simulation,
            fetch_cached_simulation,
            group_prepared_for_batch,
            ideal_distribution_cached,
            merge_study_results,
            prepare_job,
            store_simulation,
        )

        plan = StudyPlan(
            set_names=list(parts["instruction_sets"]),
            num_circuits=len(parts["circuits"]),
            error_scales=dict(parts["error_scales"]),
        )
        jobs = plan.jobs()
        ideal_by_index = [
            ideal_distribution_cached(circuit) for circuit in parts["circuits"]
        ]

        compile_fn = self._coalescing_compile_fn()
        prepared: Dict[ExperimentJob, PreparedJob] = {}
        # Values are source strings; scheduled jobs hold a transient
        # ("owner", invoked) marker until their future resolves.
        sources: Dict[ExperimentJob, object] = {}
        measured: Dict[ExperimentJob, object] = {}
        futures: Dict[ExperimentJob, Future] = {}
        # Batched mode (self.batch != 1): owned misses queue here as
        # (unit, job_future, invoked) instead of going to the executor one
        # by one; after the prepare loop they are grouped by structure and
        # each group runs as one vectorised backend pass.
        pending_batch = []
        request_batch = {"passes": 0}
        request_resilience = ResilienceCounters()
        deadline_at = (
            time.monotonic() + self.request_deadline
            if self.request_deadline is not None
            else None
        )

        def halt_reason() -> Optional[str]:
            """Why this request must stop scheduling new work, if at all."""
            if self.draining:
                return "drained"
            if deadline_at is not None and time.monotonic() >= deadline_at:
                return "deadline"
            return None

        # Prepare serially in canonical order (device RNG), resolving each
        # job against the tiers as soon as it is prepared so in-flight
        # submissions overlap the remaining compiles.  A drain or an
        # expired deadline stops *scheduling*: jobs not yet prepared are
        # reported unscored (source "drained"/"deadline") while futures
        # already in flight still flush below.
        for job in jobs:
            halted = halt_reason()
            if halted is not None:
                sources[job] = halted
                continue
            unit = prepare_job(
                job,
                parts["circuits"][job.circuit_index],
                parts["device"],
                parts["instruction_sets"][job.set_name],
                options=parts["options"],
                pipeline=spec.pipeline,
                disk_cache=self._sim_disk,
                backend=parts["backend"],
                compile_fn=compile_fn,
            )
            prepared[job] = unit
            hit = fetch_cached_simulation(unit, self._sim_disk)
            if hit is not None:
                measured[job], sources[job] = hit
                continue
            if self.shard is not None and not self.shard.owns(unit.cache_key):
                sources[job] = "deferred"
                continue

            invoked = {"backend": False}

            if self.batch != 1:
                # Register a bare per-job future under the cache key so
                # concurrent identical jobs still coalesce onto it; the
                # owner's group task resolves it (store-before-resolve,
                # like the per-job path) once the batch executes.
                job_future: Future = Future()
                future, owner = self._simulations.submit(
                    unit.cache_key, lambda job_future=job_future: job_future
                )
                if owner:
                    pending_batch.append((unit, job_future, invoked))
                sources[job] = ("owner", invoked) if owner else "inflight"
                futures[job] = future
                continue

            def task(unit=unit, invoked=invoked):
                # Re-check the tiers first: a concurrent identical job may
                # have stored and retired its in-flight key in the gap
                # between this request's cache miss and its submit.  The
                # in-flight table only retires a key *after* the store, so
                # post-retirement arrivals always hit here.
                hit = fetch_cached_simulation(unit, self._sim_disk)
                if hit is not None:
                    return hit[0]
                invoked["backend"] = True
                # Retry under the service policy: the job is pure given
                # its prepared program, so a retried vector is
                # bit-identical to a first-try one.
                vector = call_with_retry(
                    lambda: execute_prepared_simulation(unit),
                    self.retry_policy,
                    describe=(
                        f"serve job {unit.job.set_name}#{unit.job.circuit_index}"
                    ),
                    counters=request_resilience,
                )
                # Store *before* the future resolves: the in-flight key
                # retires on completion, and by then the tiers must
                # already serve the result (no gap for a third arrival
                # to recompute in).
                return store_simulation(unit, vector, self._sim_disk)

            future, owner = self._simulations.submit(
                unit.cache_key, lambda task=task: self._executor.submit(task)
            )
            # Source is resolved after the future completes: an owner whose
            # task found the tiers already populated reports the cache, not
            # the backend, so per-request `executed` equals real backend
            # invocations.
            sources[job] = ("owner", invoked) if owner else "inflight"
            futures[job] = future

        if pending_batch:
            entry_for = {id(entry[0]): entry for entry in pending_batch}

            def run_group(group):
                entries = [entry_for[id(unit)] for unit in group]
                try:
                    remaining = []
                    for unit, job_future, invoked in entries:
                        # Re-check the tiers (same reason as the per-job
                        # task): a concurrent request may have stored this
                        # key after our miss.
                        hit = fetch_cached_simulation(unit, self._sim_disk)
                        if hit is not None:
                            job_future.set_result(hit[0])
                        else:
                            remaining.append((unit, job_future, invoked))
                    if not remaining:
                        return
                    remaining_units = [unit for unit, _, _ in remaining]
                    vectors = call_with_retry(
                        lambda: execute_prepared_batch(remaining_units),
                        self.retry_policy,
                        describe=(
                            f"serve batched pass ({len(remaining_units)} jobs)"
                        ),
                        counters=request_resilience,
                    )
                    if len(remaining) > 1:
                        with self._lock:
                            self._counters["batched_passes"] += 1
                            request_batch["passes"] += 1
                    for (unit, job_future, invoked), vector in zip(
                        remaining, vectors
                    ):
                        invoked["backend"] = True
                        job_future.set_result(
                            store_simulation(unit, vector, self._sim_disk)
                        )
                except BaseException as error:  # resolve waiters, don't hang
                    for _, job_future, _ in entries:
                        if not job_future.done():
                            job_future.set_exception(error)

            # One executor task per structure group: each group is a
            # single vectorised pass (singletons fall back to the
            # sequential path inside execute_prepared_batch).
            for group in group_prepared_for_batch(
                [entry[0] for entry in pending_batch]
            ):
                self._executor.submit(run_group, group)

        # Collect and stream per-job records in canonical order.  Futures
        # already scheduled flush even during a drain (the graceful-drain
        # contract); only the per-request deadline abandons a wait, and
        # then the job is reported as "deadline" with no value while its
        # task still completes (and caches its result) in the executor.
        deferred = 0
        halted_jobs = 0
        for index, job in enumerate(jobs):
            if job in futures:
                try:
                    if deadline_at is not None:
                        remaining = deadline_at - time.monotonic()
                        measured[job] = futures[job].result(
                            timeout=max(remaining, 0.001)
                        )
                    else:
                        measured[job] = futures[job].result()
                except TimeoutError:
                    sources[job] = "deadline"
            if isinstance(sources[job], tuple):
                _, invoked_flag = sources[job]
                # A rare owner whose task was answered by the tiers (see
                # the re-check in `task`) counts as a memory hit.
                sources[job] = "backend" if invoked_flag["backend"] else "memory"
            source = sources[job]
            record: Dict[str, object] = {
                "type": "job",
                "index": index,
                "set": job.set_name,
                "circuit": job.circuit_index,
                "error_scale": job.error_scale,
                "source": source,
                "value": None,
            }
            if source == "deferred":
                deferred += 1
            elif source in ("drained", "deadline"):
                halted_jobs += 1
            else:
                record["value"] = float(
                    parts["metric"](measured[job], ideal_by_index[job.circuit_index])
                )
            with self._lock:
                self._counters["jobs"] += 1
                self._counters[f"jobs_{source}"] += 1
            yield record

        complete = deferred == 0 and halted_jobs == 0
        study_record: Dict[str, object] = {
            "type": "study",
            "fingerprint": spec.fingerprint(),
            "application": spec.application,
            "metric": parts["metric_name"],
            "complete": complete,
            "deferred": deferred,
            "drained": halted_jobs,
        }
        if complete:
            study = merge_study_results(
                spec.application,
                parts["metric_name"],
                parts["metric"],
                plan,
                ideal_by_index,
                {job: unit.compiled for job, unit in prepared.items()},
                measured,
            )
            study_record["rows"] = study.rows()
            study_record["table"] = study.format_table()
        with self._lock:
            self._counters["studies"] += 1
        for key, amount in request_resilience.snapshot().items():
            self._resilience.increment(key, amount)
        yield study_record
        yield {
            "type": "stats",
            "executed": sum(1 for s in sources.values() if s == "backend"),
            "coalesced": sum(1 for s in sources.values() if s == "inflight"),
            "from_memory": sum(1 for s in sources.values() if s == "memory"),
            "from_disk": sum(1 for s in sources.values() if s == "disk"),
            "deferred": deferred,
            "drained": halted_jobs,
            "retries": request_resilience.get("retries"),
            "batched_passes": request_batch["passes"],
        }

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Service-lifetime counters plus every engine cache's counters."""
        from repro.core.pipeline import global_compilation_cache
        from repro.experiments.engine import ideal_cache_stats, simulation_cache_stats
        from repro.simulators.array_ops import array_backend_stats
        from repro.simulators.backend import backend_invocation_counts
        from repro.simulators.noise_program import noise_program_cache_stats

        with self._lock:
            counters = dict(self._counters)
        with self._active_cond:
            active = self._active
        return {
            "service": counters,
            "shard": str(self.shard) if self.shard is not None else None,
            "batch": self.batch,
            "resilience": {
                "draining": self.draining,
                "active_requests": active,
                "requests": self._resilience.snapshot(),
                "retry": retry_stats(),
                "faults": fault_stats(),
            },
            "array_backends": array_backend_stats(),
            "inflight_compiles": self._compiles.stats(),
            "inflight_simulations": self._simulations.stats(),
            "backend_invocations": backend_invocation_counts(),
            "caches": {
                "compilation_memory": global_compilation_cache().stats(),
                "ideal_distributions": ideal_cache_stats(),
                "noise_programs": noise_program_cache_stats(),
                "simulation_memory": simulation_cache_stats(),
                "disk": self._sim_disk.stats() if self._sim_disk is not None else None,
            },
        }

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        self._executor.shutdown(wait=True)


# ---------------------------------------------------------------------------
# HTTP layer (stdlib only)
# ---------------------------------------------------------------------------


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes: POST /v1/studies (NDJSON stream), GET /v1/stats, /v1/health."""

    # HTTP/1.0 keeps the streaming body close-delimited: no Content-Length
    # needed, no chunked framing, and http.client reads until EOF.
    protocol_version = "HTTP/1.0"
    service: StudyService  # injected by make_http_server

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # quiet: the daemon's stdout is the operator's console

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/v1/health":
            health = self.service.health()
            # 503 while draining so load balancers and probes stop routing
            # here; "degraded" still serves (200) -- it is an operator
            # signal, not a refusal.
            status = 503 if health["status"] == "draining" else 200
            self._send_json(status, health)
        elif self.path == "/v1/stats":
            self._send_json(200, self.service.stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        if self.path != "/v1/studies":
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        # The ``serve.handler`` fault point: "reject" fails the request
        # up front (503, the draining shape); any other kind fails
        # in-band after the stream starts (the error-record shape).
        handler_fault = consult_fault("serve.handler")
        if handler_fault == "reject":
            self._send_json(
                503, {"error": "injected fault: handler rejecting request"}
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            spec = StudySpec.from_json_dict(json.loads(self.rfile.read(length)))
            stream = self.service.run_study_spec(spec)  # validates eagerly
        except ServiceDraining as error:
            self._send_json(503, {"error": str(error)})
            return
        except (ValueError, TypeError) as error:
            self._send_json(400, {"error": str(error)})
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            if handler_fault is not None:
                raise InjectedFault("serve.handler", handler_fault)
            for record in stream:
                self.wfile.write(encode_record(record))
                self.wfile.flush()
        except BrokenPipeError:
            pass  # client went away mid-stream; nothing to clean up
        except Exception as error:  # stream already started: error in-band
            try:
                self.wfile.write(
                    encode_record(
                        {"type": "error", "error": f"{type(error).__name__}: {error}"}
                    )
                )
            except BrokenPipeError:
                pass


def make_http_server(
    service: StudyService, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server around ``service`` (port 0 = ephemeral)."""
    handler = type("BoundServiceHandler", (_ServiceHandler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)


def serve(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    cache_dir: Optional[str] = None,
    exec_workers: int = 1,
    shard: Optional[ShardSpec] = None,
    batch: int = 1,
    request_deadline: Optional[float] = None,
    drain_timeout: float = 30.0,
) -> str:
    """Run the daemon until interrupted; returns a farewell line.

    Prints the listening address (flushed) once the socket is bound, so
    wrappers -- the CI smoke test, shell scripts -- can wait for that
    line before submitting.

    SIGTERM/SIGINT trigger a **graceful drain**: the service stops
    accepting new studies (503), requests already streaming flush their
    in-flight futures and close their NDJSON streams (with
    ``complete:false`` for whatever could not be scheduled), and the
    process exits 0 -- within ``drain_timeout`` seconds, after which the
    shutdown proceeds anyway.  Signal handlers are only installed when
    running on the main thread (tests drive :func:`serve` from worker
    threads, where ``KeyboardInterrupt`` remains the stop path).
    """
    service = StudyService(
        cache_dir=cache_dir,
        exec_workers=exec_workers,
        shard=shard,
        batch=batch,
        request_deadline=request_deadline,
    )
    server = make_http_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]

    def request_shutdown(signum, frame):  # pragma: no cover - signal path
        service.begin_drain()
        # serve_forever() must be stopped from another thread: shutdown()
        # blocks until the serve loop acknowledges, and the serve loop is
        # the very thread this handler interrupted.
        threading.Thread(target=server.shutdown, daemon=True).start()

    # Handlers go in *before* the listening line: wrappers treat that
    # line as "ready", and a SIGTERM arriving in the gap would otherwise
    # hit the default handler and kill the process without draining.
    installed = []
    try:
        for signum in (signal.SIGTERM, signal.SIGINT):
            installed.append((signum, signal.signal(signum, request_shutdown)))
    except ValueError:
        installed = []  # not the main thread: no signal-based drain
    shard_note = f" shard={shard}" if shard is not None else ""
    batch_note = f" batch={batch}" if int(batch) != 1 else ""
    print(
        f"repro serve listening on http://{bound_host}:{bound_port}{shard_note}{batch_note}",
        flush=True,
    )
    drained = True
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.begin_drain()
        drained = service.drain(timeout=drain_timeout)
        if not drained:
            warnings.warn(
                f"resilience: drain timed out after {drain_timeout:g}s with "
                "requests still streaming; shutting down anyway",
                RuntimeWarning,
                stacklevel=2,
            )
        server.server_close()
        service.close()
        for signum, previous in installed:
            signal.signal(signum, previous)
    if drained:
        return "repro serve: drained and shut down"
    return "repro serve: shut down"
