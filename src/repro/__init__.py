"""repro: reproduction of "Designing Calibration and Expressivity-Efficient
Instruction Sets for Quantum Computing" (Murali, Lao, Martonosi, Browne,
ISCA 2021).

Subpackages
-----------
``repro.gates``
    Gate matrices, parametric families, unitary utilities and KAK/Weyl
    local-equivalence analysis.
``repro.circuits``
    Circuit IR (gates, operations, circuits, moments, serialisation).
``repro.simulators``
    Statevector, density-matrix and trajectory simulators; noise channels
    and calibration-driven noise models.
``repro.devices``
    Topologies plus the Rigetti Aspen-8 and Google Sycamore device models.
``repro.compiler``
    PassManager pipeline architecture: layout, routing, scheduling and
    peephole optimisation passes composed into named pipelines.
``repro.core``
    NuOp -- the paper's contribution: template-based numerical gate
    decomposition, noise-adaptive gate-type selection, instruction-set
    catalogue and the end-to-end compilation pipeline.
``repro.applications``
    QV, QAOA, Fermi-Hubbard and QFT benchmark circuit generators.
``repro.metrics``
    HOP, cross-entropy difference, linear XEB and success-rate metrics.
``repro.calibration``
    Calibration-overhead model and expressivity/calibration tradeoffs.
``repro.experiments``
    One driver per paper table/figure, on a parallel execution engine.
``repro.caching``
    Persistent on-disk compilation cache (cross-process warm starts).
"""

__version__ = "1.0.0"

__all__ = [
    "gates",
    "circuits",
    "simulators",
    "devices",
    "compiler",
    "core",
    "applications",
    "metrics",
    "calibration",
    "experiments",
]
