"""Figure 6: NuOp vs the analytic (Cirq-like) baseline.

For ensembles of QV, QAOA and QFT two-qubit unitaries and four hardware
target gates (CZ, SYC, iSWAP, sqrt(iSWAP)), compare:

* the analytic KAK / gate-identity baseline gate count ("Cirq"),
* NuOp exact decomposition (``NuOp-100%``),
* NuOp approximate decompositions assuming 99.9%, 99% and 95% hardware
  gate fidelity (``NuOp-99.9%`` etc.), reporting both the hardware gate
  count and the residual decomposition error.

The paper's headline: NuOp matches or beats the baseline everywhere
(1.26x average reduction exactly, 1.3-2.3x with approximation), and the
baseline simply cannot target sqrt(iSWAP) for QV unitaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.applications import unitary_ensembles
from repro.circuits.gate import Gate, named_gate
from repro.core.baseline import UnsupportedDecompositionError, baseline_gate_count
from repro.core.decomposer import NuOpDecomposer


TARGET_GATES: Dict[str, str] = {
    "cz": "cz",
    "syc": "syc",
    "iswap": "iswap",
    "sqrt_iswap": "sqrt_iswap",
}

NUOP_FIDELITY_VARIANTS: Dict[str, float] = {
    "NuOp-100%": 1.0,
    "NuOp-99.9%": 0.999,
    "NuOp-99%": 0.99,
    "NuOp-95%": 0.95,
}


@dataclass
class Figure6Config:
    """Workload sizes for the Figure 6 comparison."""

    unitaries_per_application: int = 8
    applications: List[str] = field(default_factory=lambda: ["qv", "qaoa", "qft"])
    seed: int = 6
    workers: int = 1

    @classmethod
    def quick(cls) -> "Figure6Config":
        """Benchmark-sized configuration."""
        return cls(unitaries_per_application=4)

    @classmethod
    def paper_scale(cls) -> "Figure6Config":
        """The paper's configuration (100 random unitaries per application)."""
        return cls(unitaries_per_application=100)


@dataclass
class Figure6Row:
    """Average gate count of one (method, target gate, application) cell."""

    method: str
    target: str
    application: str
    mean_gate_count: Optional[float]
    mean_decomposition_error: Optional[float] = None


@dataclass
class Figure6Result:
    """All Figure 6 rows plus aggregate reduction factors."""

    rows: List[Figure6Row] = field(default_factory=list)

    def mean_count(
        self, method: str, target: str, application: Optional[str] = None
    ) -> Optional[float]:
        """Average gate count of a method/target (None if unsupported).

        With ``application=None`` the mean is taken over every application
        for which the method supports the target; pass an application name
        to look at a single workload (e.g. the baseline cannot target
        ``sqrt_iswap`` for QV unitaries specifically).
        """
        values = [
            row.mean_gate_count
            for row in self.rows
            if row.method == method
            and row.target == target
            and row.mean_gate_count is not None
            and (application is None or row.application == application)
        ]
        return float(np.mean(values)) if values else None

    def reduction_vs_baseline(self, method: str) -> float:
        """Average Cirq-count / method-count ratio over supported targets."""
        ratios = []
        for target in TARGET_GATES:
            baseline = self.mean_count("Cirq", target)
            candidate = self.mean_count(method, target)
            if baseline and candidate and candidate > 0:
                ratios.append(baseline / candidate)
        return float(np.mean(ratios)) if ratios else float("nan")

    def format_table(self) -> str:
        """Text table mirroring the Figure 6 bar groups."""
        lines = ["Figure 6: average hardware two-qubit gate count per application unitary"]
        methods = ["Cirq"] + list(NUOP_FIDELITY_VARIANTS)
        header = f"{'target':>11} | " + " | ".join(f"{m:>11}" for m in methods)
        lines.append(header)
        lines.append("-" * len(header))
        for target in TARGET_GATES:
            cells = []
            for method in methods:
                value = self.mean_count(method, target)
                cells.append(f"{value:11.2f}" if value is not None else f"{'n/a':>11}")
            lines.append(f"{target:>11} | " + " | ".join(cells))
        return "\n".join(lines)


def _target_gate(name: str) -> Gate:
    return named_gate(name)


def _figure6_cell(
    application: str,
    target_name: str,
    unitaries: List[np.ndarray],
    decomposer: NuOpDecomposer,
) -> List[Figure6Row]:
    """All rows of one (application, target gate) cell of Figure 6.

    Module-level so the experiment engine's worker pool can dispatch cells
    to processes; each cell is self-contained (the decomposer's fidelity
    profiles for one cell are keyed by that cell's unitaries and target,
    so cells share no work and parallelise cleanly).
    """
    gate = _target_gate(target_name)
    rows: List[Figure6Row] = []

    # Analytic baseline ("Cirq").
    baseline_counts = []
    supported = True
    for unitary in unitaries:
        try:
            baseline_counts.append(
                baseline_gate_count(unitary, target_name).num_two_qubit_gates
            )
        except UnsupportedDecompositionError:
            supported = False
            break
    rows.append(
        Figure6Row(
            method="Cirq",
            target=target_name,
            application=application,
            mean_gate_count=float(np.mean(baseline_counts)) if supported else None,
        )
    )

    # NuOp variants.
    for method, hardware_fidelity in NUOP_FIDELITY_VARIANTS.items():
        counts = []
        errors = []
        for unitary in unitaries:
            if hardware_fidelity >= 1.0:
                decomposition = decomposer.decompose_exact(unitary, gate=gate)
            else:
                decomposition = decomposer.decompose_for_threshold(
                    unitary, gate=gate, hardware_fidelity_target=hardware_fidelity
                )
            counts.append(decomposition.num_layers)
            errors.append(1.0 - decomposition.decomposition_fidelity)
        rows.append(
            Figure6Row(
                method=method,
                target=target_name,
                application=application,
                mean_gate_count=float(np.mean(counts)),
                mean_decomposition_error=float(np.mean(errors)),
            )
        )
    return rows


def run_figure6(
    config: Optional[Figure6Config] = None,
    decomposer: Optional[NuOpDecomposer] = None,
) -> Figure6Result:
    """Run the Figure 6 comparison and return per-cell averages.

    The (application, target gate) cells are independent jobs dispatched
    through the experiment engine's worker pool (``config.workers``); cell
    results are merged in canonical order, so output is identical for any
    worker count.
    """
    from repro.experiments.engine import run_parallel

    config = config or Figure6Config.quick()
    decomposer = decomposer if decomposer is not None else NuOpDecomposer()
    ensembles = unitary_ensembles(config.unitaries_per_application, seed=config.seed)
    result = Figure6Result()

    cells = [
        (application, target_name, ensembles[application], decomposer)
        for application in config.applications
        for target_name in TARGET_GATES
    ]
    for rows in run_parallel(_figure6_cell, cells, workers=config.workers):
        result.rows.extend(rows)
    return result
