"""Parallel experiment execution engine.

Every headline result of the paper (Figures 6-11) is produced by the same
ensemble workflow: compile every application circuit under every candidate
instruction set (optionally at several error scales), simulate the
compiled circuit noisily, and score the measured distribution against the
ideal one.  The legacy :func:`repro.experiments.runner.run_instruction_set_study`
executed that workflow as a fully serial double loop; this module turns it
into an explicit job graph executed by a configurable worker pool.

Architecture
------------

A study decomposes into a small DAG per ``(circuit, instruction set,
error scale)`` combination:

* an **ideal node** per circuit (noiseless output distribution) -- shared
  by every instruction set and error scale, served from a process-global
  content-addressed cache;
* a **compile node** per job -- served from the global
  :class:`~repro.core.pipeline.CompilationCache`;
* a **simulate node** per job, depending on the compile node and the
  device calibration state;
* a **score node** per job, depending on the simulate and ideal nodes;
* a **merge node** folding scored jobs into a :class:`StudyResult`.

Determinism is the design constraint that shapes the schedule.  The
device samples calibration data for gate types *lazily*, from a private
RNG, in the order compilations first request them; reordering compile
nodes would therefore change the sampled noise and the study's numbers.
Compile nodes consequently execute serially in canonical order (the order
the legacy double loop used), which is cheap because they are backed by
the compilation cache.  Simulate/score nodes are *pure*: they read the
device calibration but never advance any shared RNG (each job seeds its
own generator from ``SimulationOptions.seed``), so they run concurrently
on the worker pool, and the merge node folds results in canonical job
order regardless of completion order.  ``workers=1`` and ``workers=N``
are bit-identical, and both are bit-identical to the legacy serial loop
-- the property ``tests/test_engine_determinism.py`` pins down.

Simulate nodes are backed by a **simulation-result cache** with the same
two-tier layout as compilation: a process-wide memory LRU plus the
persistent disk tier's ``sim`` namespace
(:meth:`repro.caching.disk.DiskCompilationCache.get_simulation`).  Keys
(:func:`simulation_cache_key`) are content digests of the precompiled
noise program (gate matrices, every Kraus operator, durations), the
readout-error vector, the output permutation, the backend name/version
and the simulation options -- so a warm re-run of a study, even in a
fresh process, serves every simulate node from cache with **zero backend
invocations** (`benchmarks/test_bench_sim_cache.py` proves it).

Workers default to processes (simulation is dominated by small-matrix
numpy kernels that hold the GIL); the engine transparently falls back to
threads, and then to inline execution, when the platform cannot spawn or
feed a process pool.  Worker payloads are the immutable noise program
plus plain option scalars -- the engine no longer deep-copies the
``Device`` per simulate job.

Cold simulate nodes run the **fused superoperator kernels** by default
(:mod:`repro.simulators.superop`); ``REPRO_SIM_KERNEL=reference``
selects the pinned sequential replay instead (bit-identical to the
legacy loops, and the mode the engine-vs-legacy determinism tests run
under).  The active kernel is folded into the backend version component
of :func:`simulation_cache_key`, so the two kernels never share cached
vectors.
"""

from __future__ import annotations

import os
import pickle
import threading
import warnings
from collections import OrderedDict
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.hashing import circuit_fingerprint, hash_scalars
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import InstructionSet
from repro.core.pipeline import (
    CompilationCache,
    CompiledCircuit,
    compile_circuit_cached,
    global_compilation_cache,
)
from repro.devices.device import Device
from repro.experiments.runner import (
    InstructionSetResult,
    MetricFunction,
    SimulationOptions,
    StudyResult,
    finalize_measured_distribution,
    simulate_noise_program,
)
from repro.resilience import (
    DEFAULT_RETRYABLE,
    InjectedFault,
    ResilienceCounters,
    RetryPolicy,
    call_with_retry,
    count_executor_fallback,
    maybe_raise_fault,
)
from repro.simulators.backend import SimulatorBackend, resolve_backend
from repro.simulators.noise_program import (
    NoiseProgram,
    clear_noise_program_cache,
    noise_program_for,
)
from repro.simulators.superop import (
    max_batch_items,
    superop_program_for,
    superop_structure_key,
)
from repro.simulators.statevector import ideal_probabilities

# ---------------------------------------------------------------------------
# Ideal-distribution cache (shared across instruction sets, sweeps, studies)
# ---------------------------------------------------------------------------

_IDEAL_CACHE: "OrderedDict[str, np.ndarray]" = OrderedDict()
_IDEAL_CACHE_LOCK = threading.Lock()
_IDEAL_CACHE_STATS = {"hits": 0, "misses": 0}
_IDEAL_CACHE_MAX_ENTRIES = 1024
"""LRU bound (hits refresh recency, like every other in-process tier):
distinct wide circuits would otherwise accumulate 2^n-sized vectors for
the process lifetime."""


def ideal_distribution_cached(circuit: QuantumCircuit) -> np.ndarray:
    """Noiseless output distribution of ``circuit``, content-addressed.

    The legacy runner recomputed ideal probability vectors once per study;
    sweeps that revisit the same circuits (error-scale sweeps, calibration
    studies, repeated benchmark runs) paid the exponential-cost statevector
    simulation again each time.  This cache keys on the circuit *content*
    so every study in the process shares one vector per distinct circuit.

    Eviction is LRU: a hit refreshes the entry's recency, so in a
    long-lived process (the ``repro serve`` daemon) hot benchmark
    circuits survive bursts of one-off traffic.  (It used to evict FIFO
    while the sim-result and compile caches were LRU -- exactly the
    workloads a daemon keeps hot were the first evicted.)
    """
    key = circuit_fingerprint(circuit)
    with _IDEAL_CACHE_LOCK:
        cached = _IDEAL_CACHE.get(key)
        if cached is not None:
            _IDEAL_CACHE_STATS["hits"] += 1
            _IDEAL_CACHE.move_to_end(key)
            return cached
        _IDEAL_CACHE_STATS["misses"] += 1
    value = ideal_probabilities(circuit)
    value.setflags(write=False)
    with _IDEAL_CACHE_LOCK:
        _IDEAL_CACHE[key] = value
        _IDEAL_CACHE.move_to_end(key)
        while len(_IDEAL_CACHE) > _IDEAL_CACHE_MAX_ENTRIES:
            _IDEAL_CACHE.popitem(last=False)
    return value


def ideal_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the ideal-distribution cache."""
    with _IDEAL_CACHE_LOCK:
        return {
            "hits": _IDEAL_CACHE_STATS["hits"],
            "misses": _IDEAL_CACHE_STATS["misses"],
            "entries": len(_IDEAL_CACHE),
            "max_entries": _IDEAL_CACHE_MAX_ENTRIES,
        }


def clear_experiment_caches(include_disk: bool = False) -> None:
    """Reset every in-process experiment cache.

    Covers the ideal-distribution cache, the global compilation cache,
    the autotuner verdict cache, the noise-program cache and the
    simulation-result memory cache.  Used by determinism tests and
    benchmarks that need a guaranteed cold start; production callers
    normally never need it.  ``include_disk`` additionally clears the
    configured persistent disk tier (when one is active); the default
    leaves it alone because the disk tier exists precisely to survive
    "cold starts" of new processes.
    """
    from repro.compiler.autotune import global_tuner_cache

    with _IDEAL_CACHE_LOCK:
        _IDEAL_CACHE.clear()
        _IDEAL_CACHE_STATS["hits"] = 0
        _IDEAL_CACHE_STATS["misses"] = 0
    with _SIM_CACHE_LOCK:
        _SIM_CACHE.clear()
        _SIM_CACHE_STATS["hits"] = 0
        _SIM_CACHE_STATS["misses"] = 0
    clear_noise_program_cache()
    global_compilation_cache().clear()
    global_tuner_cache().clear()
    if include_disk:
        from repro.caching.disk import get_global_disk_cache

        disk = get_global_disk_cache()
        if disk is not None:
            disk.clear()


# ---------------------------------------------------------------------------
# Simulation-result cache (memory tier; the disk tier is the `sim` namespace
# of repro.caching.disk)
# ---------------------------------------------------------------------------

_SIM_CACHE: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
_SIM_CACHE_LOCK = threading.Lock()
_SIM_CACHE_STATS = {"hits": 0, "misses": 0}
_SIM_CACHE_MAX_ENTRIES = 4096
"""LRU bound; measured distributions are ``2^n`` floats, so thousands of
small-circuit results fit comfortably."""


def simulation_cache_key(
    program: NoiseProgram,
    readout_error: Optional[Sequence[float]],
    program_order: Sequence[int],
    backend: SimulatorBackend,
    options: SimulationOptions,
) -> Tuple:
    """Content-addressed key of one simulate node's measured distribution.

    Components cover everything :func:`repro.experiments.runner.simulate_noise_program`
    consumes: the noise program's full content (gate matrices, Kraus
    operators, durations -- see
    :meth:`repro.simulators.noise_program.NoiseProgram.fingerprint`), the
    readout-error vector, the slot-to-program-qubit permutation, the
    backend identity (name *and* version, so numeric changes orphan old
    entries) and the simulation-options fingerprint.  Keying on program
    content rather than the compilation key makes entries insensitive to
    unrelated device state -- gate types registered for *other*
    instruction sets change the device fingerprint mid-study but not the
    program lowered for this circuit -- and lets two pipelines that
    compile to the identical circuit share one simulation.

    Callers must pass the *effective* backend
    (:meth:`~repro.simulators.backend.SimulatorBackend.effective_backend`):
    keying ``auto`` runs under the delegate that actually produces the
    numbers lets ``auto`` and the explicit spelling share entries, and
    keeps a delegate's ``version`` bump authoritative for results
    produced through the dispatcher.
    """
    readout = tuple(float(p) for p in readout_error) if readout_error is not None else None
    return (
        program.fingerprint(),
        hash_scalars("readout", readout is None, *(readout or ())),
        hash_scalars("order", *(int(q) for q in program_order)),
        backend.name,
        int(backend.version),
        options.fingerprint(),
    )


def _simulation_cache_get(key: Tuple) -> Optional[np.ndarray]:
    """Memory-tier lookup (counts a hit or miss)."""
    with _SIM_CACHE_LOCK:
        cached = _SIM_CACHE.get(key)
        if cached is not None:
            _SIM_CACHE_STATS["hits"] += 1
            _SIM_CACHE.move_to_end(key)
            return cached
        _SIM_CACHE_STATS["misses"] += 1
        return None


def _simulation_cache_put(key: Tuple, vector: np.ndarray) -> np.ndarray:
    """Store a measured distribution (frozen) in the memory tier."""
    vector = np.asarray(vector)
    vector.setflags(write=False)
    with _SIM_CACHE_LOCK:
        _SIM_CACHE[key] = vector
        _SIM_CACHE.move_to_end(key)
        while len(_SIM_CACHE) > _SIM_CACHE_MAX_ENTRIES:
            _SIM_CACHE.popitem(last=False)
    return vector


def simulation_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the simulation-result memory cache."""
    with _SIM_CACHE_LOCK:
        return {
            "hits": _SIM_CACHE_STATS["hits"],
            "misses": _SIM_CACHE_STATS["misses"],
            "entries": len(_SIM_CACHE),
            "max_entries": _SIM_CACHE_MAX_ENTRIES,
        }


# ---------------------------------------------------------------------------
# Job graph
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentJob:
    """One (instruction set, circuit, error scale) unit of study work."""

    set_name: str
    circuit_index: int
    error_scale: float = 1.0


@dataclass
class StudyPlan:
    """The job graph of one instruction-set study, in canonical order.

    Canonical order is instruction sets in catalogue order, circuits in
    ensemble order -- exactly the iteration order of the legacy serial
    loop.  Compile nodes run serially in this order (see the module
    docstring for why); the merge step also folds job results in this
    order so the :class:`StudyResult` is independent of completion order.
    """

    set_names: List[str]
    num_circuits: int
    error_scales: Dict[str, float] = field(default_factory=dict)

    def jobs(self) -> List[ExperimentJob]:
        """Every job of the study, in canonical (deterministic) order."""
        return [
            ExperimentJob(
                set_name=name,
                circuit_index=index,
                error_scale=self.error_scales.get(name, 1.0),
            )
            for name in self.set_names
            for index in range(self.num_circuits)
        ]

    def __len__(self) -> int:
        return len(self.set_names) * self.num_circuits


_EXECUTOR_FAILURES = (BrokenExecutor, pickle.PicklingError, TypeError, OSError)
"""Exceptions that mean the *pool* failed (broken process, unpicklable
payload, fork refusal) rather than the task itself.  Only these trigger
the thread/inline fallbacks; other task errors propagate immediately
instead of re-running the whole workload on a slower executor.
``TypeError``/``OSError`` stay in the tuple because CPython reports many
unpicklable payloads as bare ``TypeError`` and fork refusal as
``OSError`` -- a task genuinely raising one of these is re-run, so the
fallback emits a warning (never silent) and eventually re-raises."""


def _warn_executor_fallback(
    executor_name: str,
    error: BaseException,
    fallback: str = "a slower executor",
    counters: Optional[ResilienceCounters] = None,
) -> None:
    """One warning per degradation, always naming the cause and the target."""
    count_executor_fallback()
    if counters is not None:
        counters.increment("executor_fallbacks")
    warnings.warn(
        f"experiment-engine {executor_name} failed ({type(error).__name__}: {error}); "
        f"falling back to {fallback} and re-running the affected jobs",
        RuntimeWarning,
        stacklevel=3,
    )


def _build_study_pool(
    workers: int, counters: Optional[ResilienceCounters] = None
) -> Tuple[Optional[Executor], str]:
    """Create the study's worker pool: process -> thread -> inline.

    Each degradation step emits one :func:`_warn_executor_fallback`
    warning naming the failed executor and its cause -- pool creation is
    never allowed to fail silently (the pre-resilience code swallowed
    both exceptions bare).  Returns the pool (or ``None`` for inline)
    plus the executor kind surfaced in ``StudyResult.executor_kind``.
    """
    try:
        return ProcessPoolExecutor(max_workers=workers), "process"
    except Exception as error:
        _warn_executor_fallback(
            "ProcessPoolExecutor", error, fallback="a thread pool", counters=counters
        )
    try:
        return ThreadPoolExecutor(max_workers=workers), "thread"
    except Exception as error:
        _warn_executor_fallback(
            "ThreadPoolExecutor", error, fallback="inline execution", counters=counters
        )
    return None, "inline"


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``--workers`` value: ``None``/1 serial, 0 = all cores."""
    if workers is None:
        return 1
    workers = int(workers)
    if workers <= 0:
        return max(os.cpu_count() or 1, 1)
    return workers


def _simulate_job(
    program: NoiseProgram,
    readout_error: Optional[List[float]],
    program_order: List[int],
    options: SimulationOptions,
    backend: Union[str, SimulatorBackend],
) -> np.ndarray:
    """Worker entry point: noisy measured distribution of one compiled job.

    Module-level so process pools can pickle it by reference.  The
    payload is the immutable noise program, plain scalars and the backend
    *instance* -- no ``Device`` (and no per-job deep copy of one) crosses
    the process boundary.  Shipping the instance rather than a name keeps
    custom backends working: one registered only in the parent process
    (or never registered at all) would not resolve in a freshly imported
    worker registry.  Pure: seeds its own RNG from ``options`` and never
    mutates shared state.

    The ``worker.task`` fault point is consulted here, before any
    simulation work, so an injected crash/failure models a worker dying
    at task pickup -- both the pool path and the inline retry path
    (:func:`execute_prepared_with_retry`) funnel through this function.
    """
    maybe_raise_fault("worker.task")
    return simulate_noise_program(
        program,
        options,
        resolve_backend(backend),
        readout_error=readout_error,
        program_order=program_order,
    )


def run_parallel(
    function: Callable,
    argument_tuples: Sequence[Tuple],
    workers: Optional[int] = 1,
) -> List[object]:
    """Apply ``function`` to argument tuples on a worker pool, preserving order.

    Generic fan-out helper for experiment drivers whose jobs do not touch
    shared mutable state (e.g. the Figure 6 decomposition cells).  Results
    are returned in input order, so output is independent of scheduling;
    ``function`` must be module-level (picklable) for process execution.
    Falls back to threads, then to inline execution, when a process pool
    is unavailable.
    """
    effective = resolve_workers(workers)
    if effective <= 1 or len(argument_tuples) <= 1:
        return [function(*arguments) for arguments in argument_tuples]
    for executor_class in (ProcessPoolExecutor, ThreadPoolExecutor):
        try:
            with executor_class(max_workers=effective) as pool:
                futures = [pool.submit(function, *arguments) for arguments in argument_tuples]
                return [future.result() for future in futures]
        except _EXECUTOR_FAILURES as error:
            _warn_executor_fallback(executor_class.__name__, error)
            continue
    return [function(*arguments) for arguments in argument_tuples]


# ---------------------------------------------------------------------------
# Schedulable units
#
# ``run_study`` below decomposes into four phases that external schedulers
# (notably the ``repro serve`` daemon, :mod:`repro.service`) drive job by
# job: *prepare* (compile + lower + key), *fetch* (consult the two cache
# tiers), *execute* (invoke the backend) and *store* (populate the tiers),
# plus a *merge* fold at the end.  The functions are factored out rather
# than inlined so a scheduler can interleave jobs from concurrent studies,
# coalesce identical in-flight work on the shared cache keys, and still
# produce bit-identical :class:`StudyResult` payloads -- ``run_study``
# itself is just the serial canonical-order driver over these same units.
# ---------------------------------------------------------------------------


@dataclass
class PreparedJob:
    """One compiled study job, ready to simulate.

    The schedulable unit between the compile and simulate phases: the
    compiled circuit, its lowered noise program, the readout/permutation
    scalars the simulator consumes, the *effective* backend that will
    produce the numbers and the content-addressed simulation cache key.
    Everything here is immutable or treated as such, so a scheduler may
    hold prepared jobs from many studies and execute them in any order --
    only the *prepare* phase (device RNG) is order-sensitive.
    """

    job: ExperimentJob
    compiled: CompiledCircuit
    program: NoiseProgram
    readout_error: Optional[List[float]]
    program_order: List[int]
    options: SimulationOptions
    backend: SimulatorBackend
    cache_key: Tuple

    def simulation_arguments(self) -> Tuple:
        """Positional arguments for :func:`_simulate_job` (picklable)."""
        return (
            self.program,
            self.readout_error,
            self.program_order,
            self.options,
            self.backend,
        )


def prepare_job(
    job: ExperimentJob,
    circuit: QuantumCircuit,
    device: Device,
    instruction_set: InstructionSet,
    *,
    decomposer: Optional[NuOpDecomposer] = None,
    options: Optional[SimulationOptions] = None,
    approximate: bool = True,
    use_noise_adaptivity: bool = True,
    pipeline: str = "default",
    compilation_cache: Optional[CompilationCache] = None,
    disk_cache: Optional[object] = None,
    backend: Optional[SimulatorBackend] = None,
    compile_fn: Optional[Callable[..., CompiledCircuit]] = None,
) -> PreparedJob:
    """Compile one job and derive everything its simulate node needs.

    This is the order-sensitive phase: compiling may lazily sample
    calibration data from the device's private RNG, so callers must
    invoke ``prepare_job`` for a study's jobs serially in canonical order
    (:meth:`StudyPlan.jobs`).  ``compile_fn`` lets a scheduler wrap the
    compile step -- the service's in-flight coalescing substitutes a
    wrapper that waits for an identical concurrent compilation, then
    re-runs :func:`~repro.core.pipeline.compile_circuit_cached` itself so
    the memory hit replays gate-type registrations on *this* device.  The
    wrapper must be call-compatible with ``compile_circuit_cached``.
    """
    decomposer = decomposer if decomposer is not None else NuOpDecomposer()
    options = options or SimulationOptions()
    backend_obj = resolve_backend(backend if backend is not None else options.method)
    compile = compile_fn if compile_fn is not None else compile_circuit_cached
    compiled = compile(
        circuit,
        device,
        instruction_set,
        decomposer=decomposer,
        approximate=approximate,
        use_noise_adaptivity=use_noise_adaptivity,
        error_scale=job.error_scale,
        pipeline=pipeline,
        cache=compilation_cache,
        disk_cache=disk_cache,
    )
    program = noise_program_for(compiled, device, error_scale=job.error_scale)
    readout = (
        device.readout_errors_for(compiled.physical_qubits)
        if options.apply_readout_error
        else None
    )
    order = [compiled.final_mapping[q] for q in range(compiled.circuit.num_qubits)]
    effective_backend = backend_obj.effective_backend(program, options)
    key = simulation_cache_key(program, readout, order, effective_backend, options)
    return PreparedJob(
        job=job,
        compiled=compiled,
        program=program,
        readout_error=readout,
        program_order=order,
        options=options,
        backend=effective_backend,
        cache_key=key,
    )


def fetch_cached_simulation(
    prepared: PreparedJob, sim_disk: Optional[object] = None
) -> Optional[Tuple[np.ndarray, str]]:
    """Consult the simulation-cache tiers for a prepared job.

    Returns ``(vector, source)`` with ``source`` one of ``"memory"`` or
    ``"disk"``, or ``None`` on a full miss.  Side effects mirror the
    engine's historical two-tier walk exactly (counter order included):
    a memory hit is backfilled to the disk tier when absent there (so
    fresh processes warm-start from the same directory), and a disk hit
    is promoted into the memory LRU.
    """
    key = prepared.cache_key
    cached = _simulation_cache_get(key)
    if cached is not None:
        if sim_disk is not None and not sim_disk.has_simulation(key):
            # Backfill: the vector exists only in this process's memory
            # tier (e.g. the earlier study ran without a cache dir, or
            # with a different one) -- persist it so fresh processes
            # warm-start from this directory too.
            sim_disk.put_simulation(key, cached)
        return cached, "memory"
    if sim_disk is not None:
        vector = sim_disk.get_simulation(key)
        if vector is not None:
            return _simulation_cache_put(key, np.asarray(vector)), "disk"
    return None


def execute_prepared_simulation(prepared: PreparedJob) -> np.ndarray:
    """Run a prepared job's simulate node inline (one backend invocation).

    Pure: seeds its own RNG from the job's options and touches no shared
    state, so schedulers may run prepared jobs concurrently and in any
    order.  Does *not* consult or populate the caches -- pair with
    :func:`fetch_cached_simulation` and :func:`store_simulation`.
    """
    return _simulate_job(*prepared.simulation_arguments())


def execute_prepared_with_retry(
    prepared: PreparedJob,
    policy: Optional[RetryPolicy] = None,
    counters: Optional[ResilienceCounters] = None,
) -> np.ndarray:
    """:func:`execute_prepared_simulation` under a retry policy.

    Because the job is pure given its prepared ``NoiseProgram``, a retry
    re-executes bit-identically: no device RNG advances, no cache key
    changes -- the invariant that lets a chaos run render the same report
    as a fault-free one.  Transient failures (``DEFAULT_RETRYABLE``) are
    retried with deterministic backoff; deterministic errors propagate
    on the first attempt.
    """
    job = prepared.job
    return call_with_retry(
        lambda: execute_prepared_simulation(prepared),
        policy,
        describe=(
            f"job {job.set_name}#{job.circuit_index}@{job.error_scale:g}x"
        ),
        counters=counters,
    )


# ---------------------------------------------------------------------------
# Batched replay grouping (SimulationOptions.batch != 1)
#
# An error-scale sweep simulates B variants of the *same* compiled circuit
# whose noise programs share fused-group structure (identical qubit
# supports per group; only the channel tensors differ with the scale).
# Rather than B sequential replays, the engine groups such prepared jobs
# by a BatchKey and lets the backend run each group as ONE vectorised
# pass over a stacked (B, 2^n, 2^n) rho tensor
# (:meth:`~repro.simulators.backend.SimulatorBackend.run_batch`), then
# fans the per-job distributions back out through the unchanged per-job
# cache keys -- memory/disk tiers, dedup and ``repro serve`` see
# individual jobs exactly as before.
# ---------------------------------------------------------------------------


def batch_signature(prepared: PreparedJob) -> Optional[Tuple]:
    """The ``BatchKey`` of a prepared job, or ``None`` when unbatchable.

    Jobs may share one vectorised backend pass iff they agree on this
    key: same effective backend (name *and* kernel-dependent version),
    same simulation-options fingerprint, and the same fused-group
    *structure* -- :func:`~repro.simulators.superop.superop_structure_key`
    of the lowered program, i.e. identical per-group qubit supports (the
    error-scale-sweep case: channel tensors differ, shapes do not).
    Backends that cannot batch this program (reference kernel, trajectory,
    estimator, too many qubits) opt out via ``supports_batched_run``.
    """
    backend = prepared.backend
    if not backend.supports_batched_run(prepared.program, prepared.options):
        return None
    structure = superop_structure_key(superop_program_for(prepared.program))
    return (
        backend.name,
        int(backend.version),
        prepared.options.fingerprint(),
        structure,
    )


def group_prepared_for_batch(
    prepared_units: Sequence[PreparedJob],
) -> List[List[PreparedJob]]:
    """Partition prepared jobs into batched-replay groups.

    Jobs with equal :func:`batch_signature` land in one group, chunked to
    at most :func:`~repro.simulators.superop.max_batch_items` members (the
    ``REPRO_SIM_BATCH_MAX_BYTES`` working-set cap combined with the
    ``SimulationOptions.batch`` group-size knob); unbatchable jobs become
    singleton groups.  Group order follows first appearance and members
    keep their input order, so downstream folds stay deterministic.
    """
    grouped: "OrderedDict[Tuple, List[PreparedJob]]" = OrderedDict()
    ordered_groups: List[List[PreparedJob]] = []
    for unit in prepared_units:
        signature = batch_signature(unit)
        if signature is None:
            ordered_groups.append([unit])
            continue
        if signature not in grouped:
            grouped[signature] = []
            ordered_groups.append(grouped[signature])
        grouped[signature].append(unit)
    chunked: List[List[PreparedJob]] = []
    for group in ordered_groups:
        limit = max_batch_items(
            group[0].program.num_qubits, int(group[0].options.batch)
        )
        for start in range(0, len(group), limit):
            chunked.append(group[start : start + limit])
    return chunked


def execute_prepared_batch(group: Sequence[PreparedJob]) -> List[np.ndarray]:
    """Run one batched-replay group; returns per-job measured distributions.

    Singleton groups take the ordinary sequential path
    (:func:`execute_prepared_simulation`) so a "batch of one" stays
    bit-identical to an unbatched run.  Larger groups make one
    ``run_batch`` backend pass (one invocation-counter tick) and then
    finalize each job exactly as the sequential path does -- same per-job
    RNG seed, readout error and output permutation
    (:func:`repro.experiments.runner.finalize_measured_distribution`).
    """
    group = list(group)
    if len(group) == 1:
        return [execute_prepared_simulation(group[0])]
    backend = group[0].backend
    raw = backend.run_batch([unit.program for unit in group], group[0].options)
    return [
        finalize_measured_distribution(
            probabilities, unit.options, unit.readout_error, unit.program_order
        )
        for probabilities, unit in zip(raw, group)
    ]


def store_simulation(
    prepared: PreparedJob,
    vector: np.ndarray,
    sim_disk: Optional[object] = None,
) -> np.ndarray:
    """Populate both cache tiers with a freshly computed vector.

    Returns the frozen (read-only) array the memory tier now holds; use
    that for all further reads.  Only call for *computed* vectors --
    cache hits are already stored, and re-writing them would break the CI
    warm-start "no file changed" check.
    """
    vector = _simulation_cache_put(prepared.cache_key, vector)
    if sim_disk is not None:
        sim_disk.put_simulation(prepared.cache_key, vector)
    return vector


def merge_study_results(
    application: str,
    metric_name: str,
    metric: MetricFunction,
    plan: StudyPlan,
    ideal_by_index: Sequence[np.ndarray],
    compiled: Dict[ExperimentJob, CompiledCircuit],
    measured: Dict[ExperimentJob, np.ndarray],
) -> StudyResult:
    """Score and fold job results into a :class:`StudyResult`.

    Folds in canonical plan order regardless of the order ``measured``
    was produced in, so the merged payload is independent of scheduling
    -- the property that makes warm service responses byte-identical to
    cold ones.
    """
    from repro.compiler.manager import aggregate_pass_stats, merge_aggregated_pass_stats

    study = StudyResult(application=application, metric_name=metric_name)
    for set_name in plan.set_names:
        result = InstructionSetResult(instruction_set=set_name, metric_name=metric_name)
        for index in range(plan.num_circuits):
            job = ExperimentJob(
                set_name=set_name,
                circuit_index=index,
                error_scale=plan.error_scales.get(set_name, 1.0),
            )
            value = metric(measured[job], ideal_by_index[index])
            job_compiled = compiled[job]
            result.metric_values.append(float(value))
            result.two_qubit_counts.append(job_compiled.two_qubit_gate_count)
            result.swap_counts.append(job_compiled.num_swaps)
            for label, count in job_compiled.gate_type_usage.items():
                result.gate_type_usage[label] = result.gate_type_usage.get(label, 0) + count
            result.pipeline_usage[job_compiled.pipeline_name] = (
                result.pipeline_usage.get(job_compiled.pipeline_name, 0) + 1
            )
            merge_aggregated_pass_stats(
                result.pass_stats, aggregate_pass_stats(job_compiled.pass_stats)
            )
        study.per_set[set_name] = result
    return study


# ---------------------------------------------------------------------------
# Study execution
# ---------------------------------------------------------------------------


def run_study(
    application: str,
    circuits: Sequence[QuantumCircuit],
    metric_name: str,
    metric: MetricFunction,
    device_factory: Callable[[], Device],
    instruction_sets: Dict[str, InstructionSet],
    decomposer: Optional[NuOpDecomposer] = None,
    options: Optional[SimulationOptions] = None,
    approximate: bool = True,
    use_noise_adaptivity: bool = True,
    error_scales: Optional[Dict[str, float]] = None,
    ideal_override: Optional[Callable[[QuantumCircuit], np.ndarray]] = None,
    workers: Optional[int] = 1,
    compilation_cache: Optional[CompilationCache] = None,
    pipeline: str = "default",
    cache_dir: Optional[str] = None,
    backend: Optional[Union[str, SimulatorBackend]] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> StudyResult:
    """Execute an instruction-set study on the engine.

    Same contract as the legacy
    :func:`repro.experiments.runner.run_instruction_set_study` (which now
    delegates here), plus:

    workers:
        Size of the simulation worker pool.  ``None``/1 runs everything
        inline; ``0`` uses every CPU core.  Output is bit-identical for
        every value.  When ``options.batch != 1`` the pool is bypassed:
        cache misses are grouped by :func:`batch_signature` and executed
        as vectorised batched-replay passes instead (see the batched
        replay section above), results landing under the same per-job
        cache keys.
    compilation_cache:
        Cache for compile nodes (default: the process-global cache).
    pipeline:
        Named compiler pipeline for the compile nodes (see
        :func:`repro.compiler.manager.available_pipelines`); ablation
        studies select e.g. ``"optimized"`` vs ``"no-cancellation"``
        instead of forking code paths.  ``"auto"`` asks the pipeline
        autotuner (:mod:`repro.compiler.autotune`) to pick the best
        candidate per (circuit, instruction set) by predicted compiled
        fidelity; the chosen pipelines land in each
        :class:`~repro.experiments.runner.InstructionSetResult`'s
        ``pipeline_usage``.
    cache_dir:
        Directory for the persistent disk cache tier, overriding the
        global ``REPRO_CACHE_DIR`` configuration for this study only.
        Resolved through the shared per-directory registry
        (:func:`repro.caching.disk.disk_cache_for`), so the study's
        hits/misses show up in ``repro cache stats``.
    backend:
        Simulator backend for the simulate nodes -- a registry name (see
        :func:`repro.simulators.backend.available_backends`) or an
        instance.  Defaults to ``options.method`` (itself ``"auto"``, the
        historical qubit-threshold dispatch, so existing callers see
        bit-identical results).
    retry_policy:
        Bounds for re-executing failed simulate nodes (default:
        :meth:`RetryPolicy.from_env`, i.e. the ``REPRO_RETRY_*`` knobs).
        Transient failures -- injected faults, worker crashes, OS errors
        -- re-execute inline; a broken process pool degrades to threads,
        then to inline execution, each step warned once with its cause.
        The study completes with a report bit-identical to a fault-free
        run (simulate nodes are pure), surfacing what happened in
        ``StudyResult.executor_kind`` / ``StudyResult.resilience``.
    """
    decomposer = decomposer if decomposer is not None else NuOpDecomposer()
    options = options or SimulationOptions()
    error_scales = error_scales or {}
    device = device_factory()
    effective_workers = resolve_workers(workers)
    backend_obj = resolve_backend(backend if backend is not None else options.method)
    disk_cache = None
    if cache_dir is not None:
        from repro.caching.disk import disk_cache_for

        disk_cache = disk_cache_for(cache_dir)
    from repro.caching.disk import get_global_disk_cache

    sim_disk = disk_cache if disk_cache is not None else get_global_disk_cache()

    plan = StudyPlan(
        set_names=list(instruction_sets),
        num_circuits=len(circuits),
        error_scales=dict(error_scales),
    )
    jobs = plan.jobs()

    # Ideal nodes: one per circuit, shared by every set and error scale.
    if ideal_override is not None:
        ideal_by_index = [ideal_override(circuit) for circuit in circuits]
    else:
        ideal_by_index = [ideal_distribution_cached(circuit) for circuit in circuits]

    # Compile nodes: serial, canonical order (device RNG determinism).
    # Simulate nodes: looked up in the simulation-result cache (memory ->
    # disk); misses are submitted to the pool as soon as their compile
    # node finishes, so simulation overlaps the remaining compilations.
    # The pool payload is the immutable noise program plus scalars -- the
    # Device itself never crosses the worker boundary (the engine used to
    # deep-copy it per job).
    # Batched replay (options.batch != 1): cache misses are grouped by
    # batch_signature and executed as vectorised backend passes inline,
    # instead of fanning individual jobs out to a worker pool -- on this
    # container one stacked contraction beats process parallelism.
    batching = int(options.batch) != 1
    policy = retry_policy if retry_policy is not None else RetryPolicy.from_env()
    resilience = ResilienceCounters()
    pool: Optional[Executor] = None
    executor_kind = "batched" if batching else "inline"
    if not batching and effective_workers > 1 and len(jobs) > 1:
        pool, executor_kind = _build_study_pool(effective_workers, resilience)

    prepared: Dict[ExperimentJob, PreparedJob] = {}
    measured: Dict[ExperimentJob, np.ndarray] = {}
    cached_jobs = set()
    futures = {}
    submit_rejected = False
    try:
        for job in jobs:
            unit = prepare_job(
                job,
                circuits[job.circuit_index],
                device,
                instruction_sets[job.set_name],
                decomposer=decomposer,
                options=options,
                approximate=approximate,
                use_noise_adaptivity=use_noise_adaptivity,
                pipeline=pipeline,
                compilation_cache=compilation_cache,
                disk_cache=disk_cache,
                backend=backend_obj,
            )
            prepared[job] = unit
            hit = fetch_cached_simulation(unit, sim_disk)
            if hit is not None:
                measured[job] = hit[0]
                cached_jobs.add(job)
                continue
            if pool is not None and not submit_rejected:
                try:
                    futures[job] = pool.submit(
                        _simulate_job, *unit.simulation_arguments()
                    )
                except _EXECUTOR_FAILURES as error:
                    # The pool died between submits (a worker crashing
                    # while the prepare loop is still compiling).  Stop
                    # feeding it: jobs never submitted flow into the
                    # inline recovery sweep, and futures already in
                    # flight are collected below -- results resolved
                    # before the break survive, pending ones re-raise
                    # there and take the thread/inline fallback.
                    submit_rejected = True
                    _warn_executor_fallback(
                        type(pool).__name__,
                        error,
                        fallback="the recovery sweep",
                        counters=resilience,
                    )

        if batching:
            miss_units = [prepared[job] for job in jobs if job not in measured]
            for group in group_prepared_for_batch(miss_units):
                try:
                    vectors = call_with_retry(
                        lambda group=group: execute_prepared_batch(group),
                        policy,
                        describe=f"batched replay pass ({len(group)} jobs)",
                        counters=resilience,
                    )
                except DEFAULT_RETRYABLE:
                    # The whole pass kept failing: degrade to per-job
                    # execution, each job under a fresh retry budget.
                    # Identical vectors either way (batch equivalence is
                    # pinned by tests/test_batched_replay.py).
                    vectors = [
                        execute_prepared_with_retry(unit, policy, resilience)
                        for unit in group
                    ]
                for unit, vector in zip(group, vectors):
                    measured[unit.job] = vector

        if pool is not None and futures:
            broken: Optional[BaseException] = None
            for job in jobs:
                if job not in futures:
                    continue
                try:
                    measured[job] = futures[job].result()
                except InjectedFault as error:
                    # A transient *task* failure, not a pool failure: leave
                    # the job unmeasured so the inline sweep below re-runs
                    # it under the retry policy.  (Real transient task
                    # errors -- OSError and friends -- are indistinguishable
                    # from pool failures and take the fallback path.)
                    resilience.increment("retries")
                    warnings.warn(
                        f"resilience: re-running job {job.set_name}"
                        f"#{job.circuit_index} inline after "
                        f"{type(error).__name__}: {error}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                except _EXECUTOR_FAILURES as error:
                    # Pool died (broken process, unpicklable payload):
                    # stop collecting and recover below.  Simulation is
                    # pure, so results already retrieved (and cache hits)
                    # are unchanged.
                    broken = error
                    break
            if broken is not None:
                # The re-runs below own the remaining jobs now; cancel
                # whatever is still queued so an abandoned-but-alive pool
                # (an injected crash reports broken while workers keep
                # draining the queue) stops competing for cores and the
                # final shutdown does not wait on work nobody collects.
                pool.shutdown(wait=False, cancel_futures=True)
                remaining = [
                    job for job in jobs if job in futures and job not in measured
                ]
                if executor_kind == "process" and len(remaining) > 1:
                    # Degrade one level: re-run the survivors on threads;
                    # a second failure falls through to the inline sweep.
                    _warn_executor_fallback(
                        type(pool).__name__,
                        broken,
                        fallback="a thread pool",
                        counters=resilience,
                    )
                    try:
                        with ThreadPoolExecutor(
                            max_workers=effective_workers
                        ) as retry_pool:
                            refutures = {
                                job: retry_pool.submit(
                                    execute_prepared_with_retry,
                                    prepared[job],
                                    policy,
                                    resilience,
                                )
                                for job in remaining
                            }
                            for job in remaining:
                                measured[job] = refutures[job].result()
                    except _EXECUTOR_FAILURES as error:
                        _warn_executor_fallback(
                            "ThreadPoolExecutor",
                            error,
                            fallback="inline execution",
                            counters=resilience,
                        )
                else:
                    _warn_executor_fallback(
                        type(pool).__name__,
                        broken,
                        fallback="inline execution",
                        counters=resilience,
                    )
        for job in jobs:
            if job not in measured:
                measured[job] = execute_prepared_with_retry(
                    prepared[job], policy, resilience
                )
    finally:
        if pool is not None:
            pool.shutdown()

    # Populate the simulation-result cache tiers with freshly computed
    # vectors (cache hits are already stored; re-writing them would break
    # the CI warm-start "no file changed" check).
    for job in jobs:
        if job in cached_jobs:
            continue
        measured[job] = store_simulation(prepared[job], measured[job], sim_disk)

    study = merge_study_results(
        application,
        metric_name,
        metric,
        plan,
        ideal_by_index,
        {job: unit.compiled for job, unit in prepared.items()},
        measured,
    )
    # Surface what actually executed the study.  Metadata only: rows()
    # and format_table() deliberately exclude both fields, so reports
    # stay byte-identical across executor kinds and retry histories.
    study.executor_kind = executor_kind
    study.resilience = resilience.snapshot()
    return study
