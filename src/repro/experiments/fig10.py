"""Figure 10: instruction-set study on the Google Sycamore model.

Panels:

* (a-c) 6-qubit QV (HOP), QAOA (XED) and QFT (success rate) across the
  single-type sets S1-S7, the multi-type sets G1-G7 and FullfSim,
  including FullfSim variants with 1.5x/2x/2.5x/3x worse average error.
* (d) 10-qubit Fermi-Hubbard fidelity (linear XEB) for the same sets.
* (e) the QAOA panel repeated with no noise variation across gate types
  (isolating the instruction-count benefit from noise adaptivity).
* (f) 10/20-qubit Fermi-Hubbard fidelity versus the mean two-qubit error
  rate for the single-type S2 set versus the full G7 set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.applications import (
    fermi_hubbard_circuit,
    qaoa_suite,
    qft_benchmark_circuit,
    qft_target_value,
    qv_suite,
)
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import (
    InstructionSet,
    full_fsim_set,
    google_catalogue,
    google_instruction_set,
    single_gate_set,
)
from repro.devices.sycamore import sycamore_device
from repro.experiments.runner import (
    SimulationOptions,
    StudyResult,
    run_instruction_set_study,
)
from repro.metrics.hop import heavy_output_probability
from repro.metrics.success import success_rate
from repro.metrics.xeb import cross_entropy_difference, normalized_linear_xeb_fidelity


@dataclass
class Figure10Config:
    """Workload sizes for the Sycamore study."""

    app_qubits: int = 6
    qv_circuits: int = 2
    qaoa_circuits: int = 2
    fh_qubits: int = 10
    shots: int = 3000
    seed: int = 10
    trajectories: int = 20
    instruction_sets: Optional[List[str]] = None
    full_fsim_error_scales: List[float] = field(default_factory=lambda: [1.0, 2.0])
    include_no_variation_panel: bool = True
    workers: int = 1
    pipeline: str = "default"
    """Compiler pipeline for every compile node; ``"auto"`` lets the
    autotuner (:mod:`repro.compiler.autotune`) pick per (circuit,
    instruction set) by predicted compiled fidelity."""
    backend: str = "auto"
    """Simulator backend for every simulate node (see ``repro
    simulators``); ``"auto"`` is the historical qubit-threshold
    dispatch."""

    @classmethod
    def quick(cls) -> "Figure10Config":
        """Benchmark-sized configuration."""
        return cls(
            app_qubits=4,
            qv_circuits=1,
            qaoa_circuits=1,
            fh_qubits=6,
            shots=2000,
            trajectories=10,
            instruction_sets=["S1", "S2", "G3", "G7", "FullfSim"],
            full_fsim_error_scales=[1.0, 2.0],
            include_no_variation_panel=False,
        )

    @classmethod
    def paper_scale(cls) -> "Figure10Config":
        """The paper's configuration (6-qubit apps, 100 circuits, 10000 shots)."""
        return cls(
            qv_circuits=100,
            qaoa_circuits=100,
            shots=10000,
            trajectories=100,
            full_fsim_error_scales=[1.0, 1.5, 2.0, 2.5, 3.0],
        )

    def selected_sets(self) -> Dict[str, InstructionSet]:
        """Instruction sets evaluated, including scaled FullfSim variants."""
        catalogue = google_catalogue()
        if self.instruction_sets is not None:
            catalogue = {name: catalogue[name] for name in self.instruction_sets}
        for scale in self.full_fsim_error_scales:
            if scale == 1.0:
                continue
            catalogue[f"FullfSim-{scale:g}x"] = full_fsim_set()
        return catalogue

    def error_scales(self) -> Dict[str, float]:
        """Per-set error-rate multipliers (scaled FullfSim variants)."""
        return {
            f"FullfSim-{scale:g}x": scale
            for scale in self.full_fsim_error_scales
            if scale != 1.0
        }


@dataclass
class Figure10Result:
    """All panels of Figure 10."""

    qv: StudyResult
    qaoa: StudyResult
    qft: StudyResult
    fh: StudyResult
    qaoa_no_variation: Optional[StudyResult] = None

    def studies(self) -> List[StudyResult]:
        """The main panels (a-d)."""
        return [self.qv, self.qaoa, self.qft, self.fh]

    def format_table(self) -> str:
        """Text rendering of the main panels, plus per-pass rewrite statistics."""
        parts = [study.format_table() for study in self.studies()]
        if self.qaoa_no_variation is not None:
            parts.append("(e) no noise variation:\n" + self.qaoa_no_variation.format_table())
        parts.extend(
            section
            for section in (study.format_pass_stats() for study in self.studies())
            if section
        )
        return "\n\n".join(parts)


def run_figure10(
    config: Optional[Figure10Config] = None,
    decomposer: Optional[NuOpDecomposer] = None,
) -> Figure10Result:
    """Run the Sycamore instruction-set study (panels a-e)."""
    config = config or Figure10Config.quick()
    decomposer = decomposer if decomposer is not None else NuOpDecomposer()
    instruction_sets = config.selected_sets()
    error_scales = config.error_scales()
    options = SimulationOptions(
        shots=config.shots, seed=config.seed, trajectories=config.trajectories
    )

    def device_factory():
        return sycamore_device(noise_variation=True)

    def no_variation_factory():
        return sycamore_device(noise_variation=False)

    qv_study = run_instruction_set_study(
        "qv",
        qv_suite(config.app_qubits, config.qv_circuits, seed=config.seed),
        "HOP",
        heavy_output_probability,
        device_factory,
        instruction_sets,
        decomposer=decomposer,
        options=options,
        error_scales=error_scales,
        workers=config.workers,
        pipeline=config.pipeline,
        backend=config.backend,
    )
    qaoa_circuits = qaoa_suite(config.app_qubits, config.qaoa_circuits, seed=config.seed + 1)
    qaoa_study = run_instruction_set_study(
        "qaoa",
        qaoa_circuits,
        "XED",
        cross_entropy_difference,
        device_factory,
        instruction_sets,
        decomposer=decomposer,
        options=options,
        error_scales=error_scales,
        workers=config.workers,
        pipeline=config.pipeline,
        backend=config.backend,
    )
    target = qft_target_value(config.app_qubits)
    qft_study = run_instruction_set_study(
        "qft",
        [qft_benchmark_circuit(config.app_qubits, target)],
        "success_rate",
        lambda measured, ideal: success_rate(measured, target),
        device_factory,
        instruction_sets,
        decomposer=decomposer,
        options=options,
        error_scales=error_scales,
        workers=config.workers,
        pipeline=config.pipeline,
        backend=config.backend,
    )
    fh_study = run_instruction_set_study(
        "fh",
        [fermi_hubbard_circuit(config.fh_qubits)],
        "XEB_fidelity",
        normalized_linear_xeb_fidelity,
        device_factory,
        instruction_sets,
        decomposer=decomposer,
        options=options,
        error_scales=error_scales,
        workers=config.workers,
        pipeline=config.pipeline,
        backend=config.backend,
    )
    no_variation_study = None
    if config.include_no_variation_panel:
        no_variation_study = run_instruction_set_study(
            "qaoa_no_variation",
            qaoa_circuits,
            "XED",
            cross_entropy_difference,
            no_variation_factory,
            instruction_sets,
            decomposer=decomposer,
            options=options,
            use_noise_adaptivity=False,
            error_scales=error_scales,
            workers=config.workers,
            pipeline=config.pipeline,
            backend=config.backend,
        )
    return Figure10Result(
        qv=qv_study,
        qaoa=qaoa_study,
        qft=qft_study,
        fh=fh_study,
        qaoa_no_variation=no_variation_study,
    )


# ---------------------------------------------------------------------------
# Panel (f): Fermi-Hubbard scaling with error rate
# ---------------------------------------------------------------------------


@dataclass
class Figure10fConfig:
    """Error-rate sweep for the Fermi-Hubbard scaling panel."""

    fh_sizes: List[int] = field(default_factory=lambda: [10])
    error_rates: List[float] = field(default_factory=lambda: [0.0036, 0.0009])
    shots: int = 2000
    trajectories: int = 15
    seed: int = 17
    workers: int = 1
    pipeline: str = "default"
    backend: str = "auto"

    @classmethod
    def quick(cls) -> "Figure10fConfig":
        """Benchmark-sized configuration."""
        return cls(fh_sizes=[6], error_rates=[0.0036, 0.0009], trajectories=8)

    @classmethod
    def paper_scale(cls) -> "Figure10fConfig":
        """The paper's configuration: 10 and 20 qubits, five error rates."""
        return cls(
            fh_sizes=[10, 20],
            error_rates=[0.0036, 0.0018, 0.0009, 0.00045, 0.000225],
            shots=10000,
            trajectories=100,
        )


@dataclass
class Figure10fPoint:
    """Fidelity of S2 vs G7 at one (size, error-rate) combination."""

    num_qubits: int
    error_rate: float
    fidelity_s2: float
    fidelity_g7: float


@dataclass
class Figure10fResult:
    """All points of the panel (f) sweep."""

    points: List[Figure10fPoint] = field(default_factory=list)

    def g7_always_wins(self) -> bool:
        """True when G7 matches or beats S2 at every point (the paper's claim)."""
        return all(p.fidelity_g7 >= p.fidelity_s2 - 1e-6 for p in self.points)

    def format_table(self) -> str:
        """Text rendering of the sweep."""
        lines = ["Figure 10f: Fermi-Hubbard fidelity vs error rate"]
        lines.append(f"{'qubits':>6} | {'error rate':>10} | {'S2':>8} | {'G7':>8}")
        lines.append("-" * 42)
        for point in self.points:
            lines.append(
                f"{point.num_qubits:>6} | {point.error_rate:10.5f} | "
                f"{point.fidelity_s2:8.4f} | {point.fidelity_g7:8.4f}"
            )
        return "\n".join(lines)


def run_figure10f(
    config: Optional[Figure10fConfig] = None,
    decomposer: Optional[NuOpDecomposer] = None,
) -> Figure10fResult:
    """Run the Fermi-Hubbard error-rate scaling sweep (Figure 10f)."""
    config = config or Figure10fConfig.quick()
    decomposer = decomposer if decomposer is not None else NuOpDecomposer()
    instruction_sets = {
        "S2": single_gate_set("S2", vendor="google"),
        "G7": google_instruction_set("G7"),
    }
    options = SimulationOptions(
        shots=config.shots, seed=config.seed, trajectories=config.trajectories
    )
    result = Figure10fResult()
    for num_qubits in config.fh_sizes:
        circuit = fermi_hubbard_circuit(num_qubits)
        for error_rate in config.error_rates:
            def device_factory(rate: float = error_rate):
                return sycamore_device(
                    noise_variation=True,
                    mean_two_qubit_error=rate,
                    std_two_qubit_error=rate * 0.4,
                )

            study = run_instruction_set_study(
                "fh",
                [circuit],
                "XEB_fidelity",
                normalized_linear_xeb_fidelity,
                device_factory,
                instruction_sets,
                decomposer=decomposer,
                options=options,
                workers=config.workers,
                pipeline=config.pipeline,
                backend=config.backend,
            )
            result.points.append(
                Figure10fPoint(
                    num_qubits=num_qubits,
                    error_rate=error_rate,
                    fidelity_s2=study.per_set["S2"].mean_metric,
                    fidelity_g7=study.per_set["G7"].mean_metric,
                )
            )
    return result
