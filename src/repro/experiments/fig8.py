"""Figure 8: expressivity heatmaps over the fSim(theta, phi) parameter space.

For a grid of fSim gate types (theta in [0, pi/2], phi in [0, pi]) and each
application's ensemble of two-qubit unitaries, compute the average number
of hardware gates an exact NuOp decomposition needs.  These heatmaps are
how the paper selects the expressive S1-S7 gate types (marked on the grid
in Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.applications import unitary_ensembles
from repro.circuits.gate import fsim_gate
from repro.core.decomposer import NuOpDecomposer
from repro.core.gate_types import S_TYPE_FSIM_PARAMETERS


@dataclass
class Figure8Config:
    """Grid resolution and ensemble sizes for the heatmaps."""

    theta_points: int = 5
    phi_points: int = 5
    unitaries_per_application: int = 4
    applications: List[str] = field(
        default_factory=lambda: ["qv", "qaoa", "qft", "fh", "swap"]
    )
    max_layers: int = 6
    seed: int = 8

    @classmethod
    def quick(cls) -> "Figure8Config":
        """Benchmark-sized configuration (coarse grid, few unitaries)."""
        return cls(theta_points=4, phi_points=4, unitaries_per_application=3,
                   applications=["qv", "qaoa", "swap"])

    @classmethod
    def paper_scale(cls) -> "Figure8Config":
        """The paper's configuration: 19 x 19 grid, 1000 QV/QAOA unitaries."""
        return cls(theta_points=19, phi_points=19, unitaries_per_application=1000)

    def theta_values(self) -> np.ndarray:
        """Grid of iSWAP-like angles."""
        return np.linspace(0.0, np.pi / 2, self.theta_points)

    def phi_values(self) -> np.ndarray:
        """Grid of CPHASE angles."""
        return np.linspace(0.0, np.pi, self.phi_points)


@dataclass
class Figure8Result:
    """Per-application heatmaps of average exact gate counts."""

    theta_values: np.ndarray
    phi_values: np.ndarray
    heatmaps: Dict[str, np.ndarray] = field(default_factory=dict)

    def best_gate(self, application: str) -> Tuple[float, float, float]:
        """(theta, phi, count) of the most expressive grid point for an application."""
        grid = self.heatmaps[application]
        index = np.unravel_index(np.argmin(grid), grid.shape)
        return (
            float(self.theta_values[index[1]]),
            float(self.phi_values[index[0]]),
            float(grid[index]),
        )

    def count_at(self, application: str, theta: float, phi: float) -> float:
        """Average gate count at the grid point closest to (theta, phi)."""
        grid = self.heatmaps[application]
        theta_index = int(np.argmin(np.abs(self.theta_values - theta)))
        phi_index = int(np.argmin(np.abs(self.phi_values - phi)))
        return float(grid[phi_index, theta_index])

    def s_type_counts(self, application: str) -> Dict[str, float]:
        """Average counts at the grid points nearest the S1-S7 gate types."""
        return {
            label: self.count_at(application, theta, phi)
            for label, (theta, phi) in S_TYPE_FSIM_PARAMETERS.items()
        }

    def format_table(self, application: str) -> str:
        """ASCII rendering of one heatmap."""
        grid = self.heatmaps[application]
        lines = [f"Figure 8 heatmap for {application} (average exact gate count)"]
        header = "phi \\ theta | " + " ".join(f"{t:5.2f}" for t in self.theta_values)
        lines.append(header)
        lines.append("-" * len(header))
        for phi_index, phi in enumerate(self.phi_values):
            row = " ".join(f"{grid[phi_index, t]:5.2f}" for t in range(len(self.theta_values)))
            lines.append(f"{phi:11.2f} | {row}")
        return "\n".join(lines)


def run_figure8(
    config: Optional[Figure8Config] = None,
    decomposer: Optional[NuOpDecomposer] = None,
) -> Figure8Result:
    """Compute the Figure 8 heatmaps."""
    config = config or Figure8Config.quick()
    decomposer = decomposer if decomposer is not None else NuOpDecomposer(
        max_layers=config.max_layers
    )
    ensembles = unitary_ensembles(config.unitaries_per_application, seed=config.seed)
    theta_values = config.theta_values()
    phi_values = config.phi_values()
    result = Figure8Result(theta_values=theta_values, phi_values=phi_values)

    for application in config.applications:
        unitaries = ensembles[application]
        grid = np.zeros((len(phi_values), len(theta_values)))
        for phi_index, phi in enumerate(phi_values):
            for theta_index, theta in enumerate(theta_values):
                gate = fsim_gate(float(theta), float(phi))
                counts = []
                for unitary in unitaries:
                    decomposition = decomposer.decompose_exact(
                        unitary, gate=gate, max_layers=config.max_layers
                    )
                    if decomposition.decomposition_fidelity >= decomposer.exact_threshold:
                        counts.append(decomposition.num_layers)
                    else:
                        # The gate family member cannot express the target
                        # within the layer budget; charge the budget + 1.
                        counts.append(config.max_layers + 1)
                grid[phi_index, theta_index] = float(np.mean(counts))
        result.heatmaps[application] = grid
    return result
