"""Tables I and II of the paper as data.

Table I lists the current and anticipated two-qubit gate types of Rigetti
and Google systems; Table II lists every instruction set studied.  The
functions here regenerate the table contents from the library's own gate
and instruction-set definitions so the benchmark harness can check them
for consistency (unitarity, local-equivalence identities, set membership).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.experiments.runner import StudyResult

from repro.core.gate_types import S_TYPE_FSIM_PARAMETERS, google_gate_type
from repro.core.instruction_sets import table2_catalogue
from repro.gates.kak import is_locally_equivalent
from repro.gates.parametric import fsim, xy
from repro.gates.standard import CZ, ISWAP, SQRT_ISWAP, SYC


@dataclass
class Table1Row:
    """One gate entry of Table I."""

    vendor: str
    status: str
    gate_name: str
    matrix: np.ndarray
    fidelity_range: str


def table1_rows() -> List[Table1Row]:
    """The gate types of Table I with representative fidelity ranges."""
    return [
        Table1Row("rigetti", "current", "CZ", CZ.copy(), "~95%"),
        Table1Row("rigetti", "current", "XY(pi)", xy(np.pi), "~95%"),
        Table1Row("rigetti", "anticipated", "XY(theta)", xy(np.pi / 3), "95-99%"),
        Table1Row("google", "current", "CZ", CZ.copy(), "~99.6%"),
        Table1Row("google", "current", "SYC", SYC.copy(), "~99.6%"),
        Table1Row("google", "current", "sqrt_iSWAP", SQRT_ISWAP.copy(), "~99.4%"),
        Table1Row("google", "anticipated", "fSim(theta, phi)", fsim(0.7, 0.9), "~99.6%"),
    ]


def table1_identities() -> Dict[str, bool]:
    """Gate identities asserted by Table I / Table II footnotes.

    ``XY(theta) = iSWAP(theta/2) = fSim(theta/2, 0)`` and
    ``CZ(phi) = fSim(0, phi)`` up to single-qubit rotations, plus the named
    special cases.
    """
    theta = 1.234
    phi = 2.345
    return {
        "xy_equals_fsim": is_locally_equivalent(xy(theta), fsim(theta / 2, 0.0)),
        "cphase_equals_fsim": is_locally_equivalent(
            np.diag([1, 1, 1, np.exp(1j * phi)]), fsim(0.0, phi)
        ),
        "cz_is_fsim_0_pi": is_locally_equivalent(CZ, fsim(0.0, np.pi)),
        "iswap_is_fsim_pi2_0": is_locally_equivalent(ISWAP, fsim(np.pi / 2, 0.0)),
        "sqrt_iswap_is_fsim_pi4_0": is_locally_equivalent(SQRT_ISWAP, fsim(np.pi / 4, 0.0)),
        "syc_is_fsim_pi2_pi6": np.allclose(SYC, fsim(np.pi / 2, np.pi / 6)),
    }


@dataclass
class Table2Row:
    """One instruction set of Table II."""

    name: str
    kind: str
    members: List[str] = field(default_factory=list)
    num_gate_types: int = 0


def table2_rows() -> List[Table2Row]:
    """Every instruction set of Table II, regenerated from the catalogue."""
    rows: List[Table2Row] = []
    for name, instruction_set in table2_catalogue().items():
        if instruction_set.is_continuous:
            kind = "continuous"
        elif instruction_set.num_gate_types == 1:
            kind = "single"
        else:
            kind = "multi"
        rows.append(
            Table2Row(
                name=name,
                kind=kind,
                members=instruction_set.labels(),
                num_gate_types=instruction_set.num_gate_types,
            )
        )
    return rows


def pass_statistics_rows(study: "StudyResult") -> List[Dict[str, object]]:
    """Per-pass rewrite statistics of a study, as rows for ``render_table``.

    One row per compiler pass (execution order for a fixed pipeline),
    aggregated over every compile of the study: how many times the pass
    ran, how many gates it removed/added, how it moved the two-qubit count
    and depth, and where the compile time went.  Empty for results produced
    by the frozen legacy reference loop, which predates pass statistics.
    """
    rows: List[Dict[str, object]] = []
    for pass_name, counters in study.aggregated_pass_stats().items():
        rows.append(
            {
                "pass": pass_name,
                "runs": int(counters["runs"]),
                "removed": int(counters["gates_removed"]),
                "added": int(counters["gates_added"]),
                "2q_delta": int(counters["two_qubit_delta"]),
                "depth_delta": int(counters["depth_delta"]),
                "time_ms": round(counters["wall_time"] * 1e3, 1),
            }
        )
    return rows


def pipeline_usage_rows(study: "StudyResult") -> List[Dict[str, object]]:
    """Pipelines selected per instruction set (interesting under ``auto``)."""
    rows: List[Dict[str, object]] = []
    for name, result in study.per_set.items():
        if not result.pipeline_usage:
            continue
        rendered = ", ".join(
            f"{pipeline} x{count}"
            for pipeline, count in sorted(result.pipeline_usage.items())
        )
        rows.append({"set": name, "pipelines": rendered})
    return rows


def s_type_parameter_table() -> Dict[str, Dict[str, float]]:
    """The S1-S7 fSim parameters (Table II header identities)."""
    table = {}
    for label, (theta, phi) in S_TYPE_FSIM_PARAMETERS.items():
        table[label] = {"theta": float(theta), "phi": float(phi)}
    return table


def verify_s_type_equivalences() -> Dict[str, bool]:
    """Check that each S-type gate matches its documented fSim parameters."""
    checks = {}
    for label, (theta, phi) in S_TYPE_FSIM_PARAMETERS.items():
        gate_type = google_gate_type(label)
        checks[label] = is_locally_equivalent(gate_type.matrix, fsim(theta, phi))
    return checks
