"""Experiment drivers: one module per paper table/figure.

Every driver exposes a ``Config`` dataclass with ``quick()`` (benchmark-
sized) and ``paper_scale()`` constructors, a ``run_*`` function and a
result object with a ``format_table()`` method.  EXPERIMENTS.md records
paper-versus-measured values for each.
"""

from repro.experiments.runner import (
    SimulationOptions,
    InstructionSetResult,
    StudyResult,
    run_instruction_set_study,
    run_instruction_set_study_reference,
    simulate_compiled,
)
from repro.experiments.engine import (
    ExperimentJob,
    StudyPlan,
    clear_experiment_caches,
    ideal_distribution_cached,
    resolve_workers,
    run_parallel,
    run_study,
)
from repro.experiments.fig6 import Figure6Config, Figure6Result, run_figure6
from repro.experiments.fig7 import Figure7Config, Figure7Result, run_figure7
from repro.experiments.fig8 import Figure8Config, Figure8Result, run_figure8
from repro.experiments.fig9 import Figure9Config, Figure9Result, run_figure9
from repro.experiments.fig10 import (
    Figure10Config,
    Figure10Result,
    Figure10fConfig,
    Figure10fResult,
    run_figure10,
    run_figure10f,
)
from repro.experiments.fig11 import (
    Figure11aConfig,
    Figure11aResult,
    Figure11bConfig,
    Figure11bResult,
    run_figure11a,
    run_figure11b,
    tradeoff_from_measurements,
)
from repro.experiments import tables

__all__ = [
    "SimulationOptions",
    "InstructionSetResult",
    "StudyResult",
    "run_instruction_set_study",
    "run_instruction_set_study_reference",
    "simulate_compiled",
    "ExperimentJob",
    "StudyPlan",
    "clear_experiment_caches",
    "ideal_distribution_cached",
    "resolve_workers",
    "run_parallel",
    "run_study",
    "Figure6Config",
    "Figure6Result",
    "run_figure6",
    "Figure7Config",
    "Figure7Result",
    "run_figure7",
    "Figure8Config",
    "Figure8Result",
    "run_figure8",
    "Figure9Config",
    "Figure9Result",
    "run_figure9",
    "Figure10Config",
    "Figure10Result",
    "Figure10fConfig",
    "Figure10fResult",
    "run_figure10",
    "run_figure10f",
    "Figure11aConfig",
    "Figure11aResult",
    "Figure11bConfig",
    "Figure11bResult",
    "run_figure11a",
    "run_figure11b",
    "tradeoff_from_measurements",
    "tables",
]
