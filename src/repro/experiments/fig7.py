"""Figure 7: exact vs approximate decomposition across hardware error rates.

Sweeps the mean two-qubit error rate (multiples of Sycamore's 0.62%) and
compares application performance when circuits are decomposed with NuOp's
exact mode versus the approximate (Eq. 2) mode.  The paper's finding: the
two coincide at low noise, and approximation wins once error rates reach
the Sycamore regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.applications import qaoa_suite, qv_suite
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import single_gate_set
from repro.devices.sycamore import sycamore_device
from repro.experiments.runner import SimulationOptions, run_instruction_set_study
from repro.metrics.hop import heavy_output_probability
from repro.metrics.xeb import cross_entropy_difference

BASE_ERROR_RATE = 0.0062
"""Sycamore's mean simultaneous two-qubit error rate."""


@dataclass
class Figure7Config:
    """Workload and sweep sizes for Figure 7."""

    error_multipliers: List[float] = field(default_factory=lambda: [0.5, 1.0, 2.0, 4.0])
    qv_qubits: int = 5
    qv_circuits: int = 2
    qaoa_qubits: int = 4
    qaoa_circuits: int = 2
    shots: int = 2000
    seed: int = 7
    workers: int = 1

    @classmethod
    def quick(cls) -> "Figure7Config":
        """Benchmark-sized configuration."""
        return cls(error_multipliers=[0.5, 2.0], qv_qubits=4, qv_circuits=1, qaoa_circuits=1)

    @classmethod
    def paper_scale(cls) -> "Figure7Config":
        """The paper's configuration (100 circuits, 8 error points, 10000 shots)."""
        return cls(
            error_multipliers=[0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0],
            qv_circuits=100,
            qaoa_circuits=100,
            shots=10000,
        )


@dataclass
class Figure7Point:
    """Metric values of exact vs approximate decomposition at one error rate."""

    error_multiplier: float
    application: str
    exact_metric: float
    approximate_metric: float


@dataclass
class Figure7Result:
    """All sweep points of the Figure 7 study."""

    points: List[Figure7Point] = field(default_factory=list)

    def crossover_multiplier(self, application: str) -> Optional[float]:
        """Smallest error multiplier at which approximation beats exact decomposition."""
        candidates = [
            point.error_multiplier
            for point in self.points
            if point.application == application
            and point.approximate_metric > point.exact_metric
        ]
        return min(candidates) if candidates else None

    def format_table(self) -> str:
        """Text table of the sweep."""
        lines = ["Figure 7: exact vs approximate decomposition"]
        lines.append(f"{'app':>6} | {'error x0.62%':>12} | {'exact':>8} | {'approx':>8}")
        lines.append("-" * 44)
        for point in self.points:
            lines.append(
                f"{point.application:>6} | {point.error_multiplier:12.2f} | "
                f"{point.exact_metric:8.4f} | {point.approximate_metric:8.4f}"
            )
        return "\n".join(lines)


def run_figure7(
    config: Optional[Figure7Config] = None,
    decomposer: Optional[NuOpDecomposer] = None,
) -> Figure7Result:
    """Run the exact-vs-approximate sweep of Figure 7."""
    config = config or Figure7Config.quick()
    decomposer = decomposer if decomposer is not None else NuOpDecomposer()
    result = Figure7Result()

    qv_circuits = qv_suite(config.qv_qubits, config.qv_circuits, seed=config.seed)
    qaoa_circuits = qaoa_suite(config.qaoa_qubits, config.qaoa_circuits, seed=config.seed + 1)
    instruction_sets = {"S1": single_gate_set("S1", vendor="google")}
    options = SimulationOptions(shots=config.shots, seed=config.seed)

    workloads = [
        ("qv", qv_circuits, "HOP", heavy_output_probability),
        ("qaoa", qaoa_circuits, "XED", cross_entropy_difference),
    ]

    for multiplier in config.error_multipliers:
        def device_factory(multiplier: float = multiplier):
            return sycamore_device(
                noise_variation=False,
                mean_two_qubit_error=BASE_ERROR_RATE * multiplier,
                std_two_qubit_error=0.0,
            )

        for application, circuits, metric_name, metric in workloads:
            exact_study = run_instruction_set_study(
                application,
                circuits,
                metric_name,
                metric,
                device_factory,
                instruction_sets,
                decomposer=decomposer,
                options=options,
                approximate=False,
                workers=config.workers,
            )
            approx_study = run_instruction_set_study(
                application,
                circuits,
                metric_name,
                metric,
                device_factory,
                instruction_sets,
                decomposer=decomposer,
                options=options,
                approximate=True,
                workers=config.workers,
            )
            result.points.append(
                Figure7Point(
                    error_multiplier=multiplier,
                    application=application,
                    exact_metric=exact_study.per_set["S1"].mean_metric,
                    approximate_metric=approx_study.per_set["S1"].mean_metric,
                )
            )
    return result
