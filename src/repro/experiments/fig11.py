"""Figure 11: calibration overhead versus application reliability.

Panel (a) is purely analytic: the number of calibration circuits as a
function of the number of fSim parameter combinations for 2-, 54- and
1000-qubit devices.  Panel (b) pairs the calibration-time model with the
reliability improvements measured by the Figure 9 / Figure 10 studies to
exhibit the diminishing-returns sweet spot at 4-8 gate types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.calibration.model import CalibrationModel, calibration_savings_factor
from repro.calibration.tradeoff import TradeoffPoint, tradeoff_curve
from repro.core.decomposer import NuOpDecomposer
from repro.experiments.fig10 import Figure10Config, run_figure10


@dataclass
class Figure11aConfig:
    """Device sizes and gate-type counts swept in panel (a)."""

    device_qubits: List[int] = field(default_factory=lambda: [2, 54, 1000])
    gate_type_counts: List[int] = field(default_factory=lambda: [1, 2, 4, 8, 16, 50, 100, 300])
    average_degree: float = 3.4


@dataclass
class Figure11aResult:
    """Calibration circuit counts: ``circuits[num_qubits][num_types]``."""

    circuits: Dict[int, Dict[int, int]] = field(default_factory=dict)

    def format_table(self) -> str:
        """Text rendering of panel (a)."""
        lines = ["Figure 11a: number of calibration circuits"]
        sizes = sorted(self.circuits)
        type_counts = sorted(next(iter(self.circuits.values()))) if self.circuits else []
        header = f"{'#types':>8} | " + " | ".join(f"{size:>12}q" for size in sizes)
        lines.append(header)
        lines.append("-" * len(header))
        for count in type_counts:
            cells = " | ".join(f"{self.circuits[size][count]:13.3g}" for size in sizes)
            lines.append(f"{count:>8} | {cells}")
        return "\n".join(lines)


def run_figure11a(
    config: Optional[Figure11aConfig] = None,
    model: Optional[CalibrationModel] = None,
) -> Figure11aResult:
    """Compute the calibration-circuit scaling of panel (a)."""
    config = config or Figure11aConfig()
    model = model or CalibrationModel()
    result = Figure11aResult()
    for num_qubits in config.device_qubits:
        per_size: Dict[int, int] = {}
        for num_types in config.gate_type_counts:
            per_size[num_types] = model.circuits_for_device(
                num_types, num_qubits, average_degree=config.average_degree
            )
        result.circuits[num_qubits] = per_size
    return result


@dataclass
class Figure11bConfig:
    """Configuration of the calibration-time vs reliability panel."""

    gate_type_counts: List[int] = field(default_factory=lambda: [2, 3, 4, 5, 6, 7, 8])
    num_qubit_pairs: int = 93
    figure10_config: Optional[Figure10Config] = None

    @classmethod
    def quick(cls) -> "Figure11bConfig":
        """Benchmark-sized configuration (tiny Figure 10 run behind the scenes)."""
        config = Figure10Config.quick()
        config.instruction_sets = ["S2", "G1", "G3", "G7"]
        config.full_fsim_error_scales = [1.0]
        return cls(gate_type_counts=[2, 4, 8], figure10_config=config)


@dataclass
class Figure11bResult:
    """Tradeoff points plus the calibration savings factor."""

    points: List[TradeoffPoint] = field(default_factory=list)
    savings_factor: float = 0.0

    def format_table(self) -> str:
        """Text rendering of panel (b)."""
        lines = ["Figure 11b: calibration time vs reliability improvement"]
        lines.append(f"{'#types':>7} | {'hours':>7} | {'circuits':>10} | improvements")
        lines.append("-" * 60)
        for point in self.points:
            improvements = ", ".join(
                f"{name}={value:+.2%}" for name, value in point.reliability_improvement.items()
            )
            lines.append(
                f"{point.num_gate_types:>7} | {point.calibration_hours:7.1f} | "
                f"{point.calibration_circuits:10.3g} | {improvements}"
            )
        lines.append(f"calibration savings vs continuous family: {self.savings_factor:.0f}x")
        return "\n".join(lines)


GOOGLE_SET_SIZES: Dict[str, int] = {
    "G1": 2,
    "G2": 3,
    "G3": 4,
    "G4": 5,
    "G5": 6,
    "G6": 7,
    "G7": 8,
}


def tradeoff_from_measurements(
    reliability_by_set: Mapping[str, Mapping[str, float]],
    baseline: Mapping[str, float],
    model: Optional[CalibrationModel] = None,
    num_qubit_pairs: int = 93,
) -> List[TradeoffPoint]:
    """Convert per-instruction-set reliabilities into the Figure 11b curve.

    ``reliability_by_set`` maps Google multi-type set names (G1-G7) to
    metric dictionaries; the set size is looked up in
    :data:`GOOGLE_SET_SIZES`.
    """
    by_size = {
        GOOGLE_SET_SIZES[name]: metrics
        for name, metrics in reliability_by_set.items()
        if name in GOOGLE_SET_SIZES
    }
    return tradeoff_curve(by_size, baseline, model=model, num_qubit_pairs=num_qubit_pairs)


def run_figure11b(
    config: Optional[Figure11bConfig] = None,
    decomposer: Optional[NuOpDecomposer] = None,
    model: Optional[CalibrationModel] = None,
) -> Figure11bResult:
    """Run (a small) Figure 10 study and derive the Figure 11b tradeoff."""
    config = config or Figure11bConfig.quick()
    model = model or CalibrationModel()
    figure10 = run_figure10(config.figure10_config or Figure10Config.quick(), decomposer)

    reliability_by_set: Dict[str, Dict[str, float]] = {}
    baseline: Dict[str, float] = {}
    for study, metric_label in (
        (figure10.qv, "Google-QV"),
        (figure10.qaoa, "Google-QAOA"),
        (figure10.qft, "Google-QFT"),
    ):
        single_values = [
            result.mean_metric
            for name, result in study.per_set.items()
            if name.startswith("S")
        ]
        if single_values:
            baseline[metric_label] = float(np.max(single_values))
        for name, result in study.per_set.items():
            if name in GOOGLE_SET_SIZES:
                reliability_by_set.setdefault(name, {})[metric_label] = result.mean_metric

    points = tradeoff_from_measurements(
        reliability_by_set, baseline, model=model, num_qubit_pairs=config.num_qubit_pairs
    )
    proposed = max(
        (GOOGLE_SET_SIZES[name] for name in reliability_by_set), default=8
    )
    savings = calibration_savings_factor(model, proposed)
    return Figure11bResult(points=points, savings_factor=savings)
