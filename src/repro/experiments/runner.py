"""Shared infrastructure for the per-figure experiment drivers.

Every experiment in :mod:`repro.experiments` follows the same pattern:
compile application circuits for a set of candidate instruction sets, run
a noisy simulation on the target device model, post-process the measured
distribution back into program-qubit order and evaluate the paper's
metric.  This module holds that common machinery plus small result
containers that the benchmark harness and the examples print.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.hashing import hash_scalars
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import InstructionSet
from repro.core.pipeline import CompiledCircuit, compile_circuit
from repro.devices.device import Device
from repro.metrics.distributions import permute_distribution
from repro.simulators.array_ops import validate_array_backend_env
from repro.simulators.backend import SimulatorBackend, resolve_backend
from repro.simulators.density_matrix import (
    MAX_DENSITY_MATRIX_QUBITS,
    DensityMatrixSimulator,
)
from repro.simulators.noise_program import NoiseProgram, noise_program_for
from repro.simulators.sampling import sample_counts
from repro.simulators.statevector import ideal_probabilities
from repro.simulators.trajectory import TrajectorySimulator

MetricFunction = Callable[[np.ndarray, np.ndarray], float]
"""Signature: ``metric(measured_program_order, ideal_program_order) -> float``."""


@dataclass
class SimulationOptions:
    """Knobs controlling the noisy simulation of compiled circuits."""

    shots: int = 3000
    seed: int = 11
    max_density_matrix_qubits: int = 8
    trajectories: int = 30
    apply_readout_error: bool = True
    method: str = "auto"
    """Simulator backend name (see
    :func:`repro.simulators.backend.available_backends`).  ``"auto"``
    reproduces the historical qubit-threshold dispatch; an explicit
    ``backend=`` argument to :func:`simulate_compiled` /
    :func:`repro.experiments.engine.run_study` takes precedence."""
    batch: int = 1
    """Batched-replay group-size cap for the study engine: ``1`` (the
    default) disables batching, ``0`` means "as large as the
    ``REPRO_SIM_BATCH_MAX_BYTES`` memory cap allows", and ``N >= 2`` caps
    groups at ``N`` jobs (still bounded by the memory cap).  Excluded from
    :meth:`fingerprint` for the same reason as ``method``: batching is an
    execution strategy, not part of the measured distribution -- batched
    results land under the same per-job cache keys as sequential ones
    (held to the fused kernel's ``<= 1e-10`` bar), so warm batched runs
    reuse sequential entries and vice versa."""

    def __post_init__(self) -> None:
        if int(self.shots) <= 0:
            raise ValueError(f"SimulationOptions.shots must be positive, got {self.shots}")
        if int(self.trajectories) <= 0:
            raise ValueError(
                f"SimulationOptions.trajectories must be positive, got {self.trajectories}"
            )
        if int(self.max_density_matrix_qubits) < 0:
            raise ValueError(
                "SimulationOptions.max_density_matrix_qubits must be >= 0, got "
                f"{self.max_density_matrix_qubits}"
            )
        if int(self.max_density_matrix_qubits) > MAX_DENSITY_MATRIX_QUBITS:
            raise ValueError(
                "SimulationOptions.max_density_matrix_qubits cannot exceed the "
                f"density-matrix simulator's hard cap of {MAX_DENSITY_MATRIX_QUBITS} "
                f"qubits, got {self.max_density_matrix_qubits}"
            )
        if int(self.batch) < 0:
            raise ValueError(
                "SimulationOptions.batch must be >= 0 (0 = memory-cap bound, "
                f"1 = disabled, N = group-size cap), got {self.batch}"
            )
        # Fail a typo'd REPRO_ARRAY_BACKEND here, at option construction,
        # instead of warning mid-study from a worker thread.
        validate_array_backend_env()

    def fingerprint(self) -> str:
        """Content digest of every field that shapes a measured distribution.

        One component of the simulation-result cache key
        (:func:`repro.experiments.engine.simulation_cache_key`).
        ``method`` is deliberately excluded: the *resolved* backend's name
        and version are separate key components, so including the
        requested method here would only split cache entries between
        ``backend=`` and ``method=`` spellings of the same run.
        ``batch`` is excluded for the same reason (see its field doc):
        batched and sequential execution produce the same distribution,
        so splitting their cache entries would orphan every warm result
        whenever the knob changed.
        """
        return hash_scalars(
            "simulation-options",
            int(self.shots),
            int(self.seed),
            int(self.max_density_matrix_qubits),
            int(self.trajectories),
            bool(self.apply_readout_error),
        )


def simulate_noise_program(
    program: NoiseProgram,
    options: SimulationOptions,
    backend: SimulatorBackend,
    readout_error: Optional[Sequence[float]] = None,
    program_order: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Measured distribution of a precompiled noise program.

    The backend produces the noisy output distribution over circuit
    slots; shot sampling (with optional readout error) and the final
    permutation back into program-qubit order are backend-independent and
    happen here.  Pure: the only RNG is seeded from ``options``, so this
    is safe to run on worker pools.
    """
    probabilities = backend.run(program, options)
    return finalize_measured_distribution(
        probabilities, options, readout_error, program_order
    )


def finalize_measured_distribution(
    probabilities: np.ndarray,
    options: SimulationOptions,
    readout_error: Optional[Sequence[float]] = None,
    program_order: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Shot-sample a backend distribution and permute it to program order.

    The backend-independent tail of :func:`simulate_noise_program`, split
    out so the engine's batched path can run one vectorised backend pass
    and still finalize each job identically to the sequential path (same
    per-job RNG seeded from ``options``, same readout error, same
    permutation).
    """
    counts = sample_counts(
        probabilities,
        options.shots,
        rng=np.random.default_rng(options.seed),
        readout_error=readout_error,
    )
    measured_slots = counts.to_probability_vector()
    if program_order is None:
        return measured_slots
    return permute_distribution(measured_slots, list(program_order))


def simulate_compiled(
    compiled: CompiledCircuit,
    device: Device,
    options: Optional[SimulationOptions] = None,
    backend: Optional[Union[str, SimulatorBackend]] = None,
) -> np.ndarray:
    """Noisy output distribution of a compiled circuit, in program-qubit order.

    Thin dispatcher over the simulator-backend registry
    (:mod:`repro.simulators.backend`): resolves ``backend`` (default:
    ``options.method``, itself defaulting to ``"auto"``, the historical
    qubit-threshold dispatch), fetches the compiled circuit's precompiled
    noise program from the process-wide cache
    (:func:`repro.simulators.noise_program.noise_program_for`) and runs
    the backend on it.  The backends run the fused superoperator kernels
    by default; under ``REPRO_SIM_KERNEL=reference`` this path is pinned
    bit-identical to :func:`simulate_compiled_reference` by
    ``tests/test_simulator_backends.py``, and the fused default is held
    to ``<= 1e-10`` of it by ``tests/test_superop.py``.
    """
    options = options or SimulationOptions()
    resolved = resolve_backend(backend if backend is not None else options.method)
    program = noise_program_for(compiled, device)
    readout = None
    if options.apply_readout_error:
        readout = device.readout_errors_for(compiled.physical_qubits)
    order = [compiled.final_mapping[q] for q in range(compiled.circuit.num_qubits)]
    return simulate_noise_program(
        program, options, resolved, readout_error=readout, program_order=order
    )


def simulate_compiled_reference(
    compiled: CompiledCircuit,
    device: Device,
    options: Optional[SimulationOptions] = None,
) -> np.ndarray:
    """The pre-backend-registry implementation, kept as ground truth.

    ``tests/test_simulator_backends.py`` asserts the ``auto`` backend
    (and therefore the default :func:`simulate_compiled` path) reproduces
    this function bit-for-bit on both sides of the density-matrix /
    trajectory threshold.  Do not optimise or restructure it; its stasis
    is the point (the same role :func:`repro.core.pipeline.compile_circuit_reference`
    plays for the compiler).
    """
    options = options or SimulationOptions()
    circuit = compiled.circuit
    noise_model = device.noise_model
    if circuit.num_qubits <= options.max_density_matrix_qubits:
        result = DensityMatrixSimulator(noise_model).run(
            circuit, physical_qubits=compiled.physical_qubits
        )
        probabilities = result.probabilities()
    else:
        simulator = TrajectorySimulator(
            noise_model, num_trajectories=options.trajectories, seed=options.seed
        )
        probabilities = simulator.run(circuit, physical_qubits=compiled.physical_qubits)

    readout = None
    if options.apply_readout_error:
        readout = device.readout_errors_for(compiled.physical_qubits)
    counts = sample_counts(
        probabilities,
        options.shots,
        rng=np.random.default_rng(options.seed),
        readout_error=readout,
    )
    measured_slots = counts.to_probability_vector()
    order = [compiled.final_mapping[q] for q in range(circuit.num_qubits)]
    return permute_distribution(measured_slots, order)


@dataclass
class InstructionSetResult:
    """Aggregate metrics of one instruction set over an ensemble of circuits."""

    instruction_set: str
    metric_name: str
    metric_values: List[float] = field(default_factory=list)
    two_qubit_counts: List[int] = field(default_factory=list)
    swap_counts: List[int] = field(default_factory=list)
    gate_type_usage: Dict[str, int] = field(default_factory=dict)
    pass_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)
    """Aggregated per-pass rewrite statistics (runs, gates removed/added,
    2Q/depth deltas, wall time) across every compile of this set, keyed by
    pass name (see :func:`repro.compiler.manager.aggregate_pass_stats`).
    The frozen legacy reference loop leaves this empty."""
    pipeline_usage: Dict[str, int] = field(default_factory=dict)
    """Compile count per selected pipeline name.  One entry for a fixed
    pipeline; under ``pipeline="auto"`` it records what the autotuner
    picked per circuit."""

    @property
    def mean_metric(self) -> float:
        """Ensemble mean of the reliability metric."""
        return float(np.mean(self.metric_values)) if self.metric_values else float("nan")

    @property
    def mean_two_qubit_count(self) -> float:
        """Ensemble mean hardware two-qubit instruction count."""
        return float(np.mean(self.two_qubit_counts)) if self.two_qubit_counts else 0.0

    def as_row(self) -> Dict[str, object]:
        """Row for tabular reporting (EXPERIMENTS.md / benchmark output)."""
        return {
            "instruction_set": self.instruction_set,
            "metric": self.metric_name,
            "mean_metric": round(self.mean_metric, 4),
            "mean_2q_count": round(self.mean_two_qubit_count, 2),
            "mean_swaps": round(float(np.mean(self.swap_counts)) if self.swap_counts else 0.0, 2),
        }


@dataclass
class StudyResult:
    """Results of one application workload across many instruction sets."""

    application: str
    metric_name: str
    per_set: Dict[str, InstructionSetResult] = field(default_factory=dict)
    #: How the engine actually executed the study ("process", "thread",
    #: "inline" or "batched") and what the resilience layer did along the
    #: way (retries/recoveries/executor_fallbacks, from
    #: ``repro.resilience``).  Metadata only -- deliberately excluded from
    #: rows()/format_table() so reports stay byte-identical across
    #: executor kinds, fallbacks and retry histories (same contract as
    #: the omitted wall times in format_pass_stats()).
    executor_kind: Optional[str] = None
    resilience: Dict[str, int] = field(default_factory=dict)

    def best_set(self) -> str:
        """Instruction set with the highest mean metric."""
        return max(self.per_set, key=lambda name: self.per_set[name].mean_metric)

    def rows(self) -> List[Dict[str, object]]:
        """All rows, in insertion order."""
        return [result.as_row() for result in self.per_set.values()]

    def aggregated_pass_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-pass rewrite statistics folded across every instruction set."""
        from repro.compiler.manager import merge_aggregated_pass_stats

        totals: Dict[str, Dict[str, float]] = {}
        for result in self.per_set.values():
            merge_aggregated_pass_stats(totals, result.pass_stats)
        return totals

    def pipeline_usage(self) -> Dict[str, int]:
        """Compile count per selected pipeline, folded across every set."""
        usage: Dict[str, int] = {}
        for result in self.per_set.values():
            for name, count in result.pipeline_usage.items():
                usage[name] = usage.get(name, 0) + count
        return usage

    def format_pass_stats(self) -> str:
        """Plain-text per-pass rewrite statistics section of the study report.

        Empty string when no pass statistics were recorded (legacy
        reference runs), so callers can append it unconditionally.
        Deliberately omits wall times: the study report must stay
        byte-identical across worker counts and fresh processes (the CI
        warm-start and `--workers` diff checks), and timings are the one
        nondeterministic counter.  Profile with ``repro pipelines
        --stats`` or ``aggregated_pass_stats()`` instead.
        """
        totals = self.aggregated_pass_stats()
        if not totals:
            return ""
        lines = [f"{self.application} pass statistics"]
        lines.append(
            f"{'pass':>10} | {'runs':>5} | {'removed':>7} | {'added':>6} | "
            f"{'2q delta':>8} | {'depth delta':>11}"
        )
        lines.append("-" * 62)
        for pass_name, counters in totals.items():
            lines.append(
                f"{pass_name:>10} | {int(counters['runs']):>5} | "
                f"{int(counters['gates_removed']):>7} | "
                f"{int(counters['gates_added']):>6} | "
                f"{int(counters['two_qubit_delta']):>8} | "
                f"{int(counters['depth_delta']):>11}"
            )
        usage = self.pipeline_usage()
        if usage:
            rendered = ", ".join(
                f"{name} x{count}" for name, count in sorted(usage.items())
            )
            lines.append(f"pipelines used: {rendered}")
        return "\n".join(lines)

    def format_table(self) -> str:
        """Plain-text table matching the paper's bar-chart annotations."""
        lines = [f"{self.application} ({self.metric_name})"]
        lines.append(f"{'set':>10} | {'metric':>8} | {'2Q count':>8} | {'swaps':>6}")
        lines.append("-" * 42)
        for name, result in self.per_set.items():
            lines.append(
                f"{name:>10} | {result.mean_metric:8.4f} | "
                f"{result.mean_two_qubit_count:8.2f} | "
                f"{(np.mean(result.swap_counts) if result.swap_counts else 0):6.2f}"
            )
        return "\n".join(lines)


def run_instruction_set_study(
    application: str,
    circuits: Sequence[QuantumCircuit],
    metric_name: str,
    metric: MetricFunction,
    device_factory: Callable[[], Device],
    instruction_sets: Dict[str, InstructionSet],
    decomposer: Optional[NuOpDecomposer] = None,
    options: Optional[SimulationOptions] = None,
    approximate: bool = True,
    use_noise_adaptivity: bool = True,
    error_scales: Optional[Dict[str, float]] = None,
    ideal_override: Optional[Callable[[QuantumCircuit], np.ndarray]] = None,
    workers: Optional[int] = 1,
    pipeline: str = "default",
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
) -> StudyResult:
    """Compile + simulate + score every circuit under every instruction set.

    Thin compatibility wrapper over the experiment engine
    (:func:`repro.experiments.engine.run_study`): same signature as the
    original serial implementation (retained below as
    :func:`run_instruction_set_study_reference`) plus a ``workers`` knob
    for the simulation worker pool and a ``backend`` selector for the
    simulate nodes.  Results are bit-identical to the reference
    implementation for every worker count (and for ``backend=None`` /
    ``"auto"``, the reference dispatch).

    A single device instance is shared by all instruction sets so that every
    set sees the *same* sampled calibration data (as on a real device), and
    a single decomposer instance is shared so fidelity profiles are reused.
    ``error_scales`` optionally maps instruction-set names to error-rate
    multipliers (used for the scaled FullfSim variants of Figure 10).
    """
    from repro.experiments.engine import run_study

    return run_study(
        application,
        circuits,
        metric_name,
        metric,
        device_factory,
        instruction_sets,
        decomposer=decomposer,
        options=options,
        approximate=approximate,
        use_noise_adaptivity=use_noise_adaptivity,
        error_scales=error_scales,
        ideal_override=ideal_override,
        workers=workers,
        pipeline=pipeline,
        cache_dir=cache_dir,
        backend=backend,
    )


def run_instruction_set_study_reference(
    application: str,
    circuits: Sequence[QuantumCircuit],
    metric_name: str,
    metric: MetricFunction,
    device_factory: Callable[[], Device],
    instruction_sets: Dict[str, InstructionSet],
    decomposer: Optional[NuOpDecomposer] = None,
    options: Optional[SimulationOptions] = None,
    approximate: bool = True,
    use_noise_adaptivity: bool = True,
    error_scales: Optional[Dict[str, float]] = None,
    ideal_override: Optional[Callable[[QuantumCircuit], np.ndarray]] = None,
) -> StudyResult:
    """The original serial double loop, kept as the engine's ground truth.

    ``tests/test_engine_determinism.py`` asserts the engine reproduces this
    implementation bit-for-bit (including the device's lazily sampled
    calibration data, which depends on compilation order).  Do not optimise
    this function; its simplicity is the point.

    .. deprecated::
        For anything other than ground-truth comparison, use
        :func:`repro.experiments.engine.run_study` (or this module's
        :func:`run_instruction_set_study` wrapper), which adds worker
        pools, compilation caching and pipeline selection.
    """
    warnings.warn(
        "run_instruction_set_study_reference is the frozen ground-truth loop; "
        "use repro.experiments.engine.run_study (or run_instruction_set_study) "
        "for real studies",
        DeprecationWarning,
        stacklevel=2,
    )
    decomposer = decomposer if decomposer is not None else NuOpDecomposer()
    options = options or SimulationOptions()
    error_scales = error_scales or {}
    device = device_factory()
    study = StudyResult(application=application, metric_name=metric_name)

    ideal_cache: Dict[int, np.ndarray] = {}
    for name, instruction_set in instruction_sets.items():
        result = InstructionSetResult(instruction_set=name, metric_name=metric_name)
        for index, circuit in enumerate(circuits):
            if index not in ideal_cache:
                if ideal_override is not None:
                    ideal_cache[index] = ideal_override(circuit)
                else:
                    ideal_cache[index] = ideal_probabilities(circuit)
            compiled = compile_circuit(
                circuit,
                device,
                instruction_set,
                decomposer=decomposer,
                approximate=approximate,
                use_noise_adaptivity=use_noise_adaptivity,
                error_scale=error_scales.get(name, 1.0),
            )
            measured = simulate_compiled_reference(compiled, device, options)
            value = metric(measured, ideal_cache[index])
            result.metric_values.append(float(value))
            result.two_qubit_counts.append(compiled.two_qubit_gate_count)
            result.swap_counts.append(compiled.num_swaps)
            for label, count in compiled.gate_type_usage.items():
                result.gate_type_usage[label] = result.gate_type_usage.get(label, 0) + count
        study.per_set[name] = result
    return study
