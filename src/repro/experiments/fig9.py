"""Figure 9: instruction-set study on the Rigetti Aspen-8 model.

Three workloads (3-qubit QV / HOP, 4-qubit QAOA / XED, 3-qubit QFT /
success rate) are compiled and simulated for the single-type sets S2-S6,
the multi-type sets R1-R5 and the continuous FullXY family, using the
Aspen-8 noise model with measured per-edge, per-gate-type fidelities
(noise variation across gate types).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.applications import qaoa_suite, qft_benchmark_circuit, qft_target_value, qv_suite
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import InstructionSet, rigetti_catalogue
from repro.devices.aspen8 import aspen8_device
from repro.experiments.runner import (
    SimulationOptions,
    StudyResult,
    run_instruction_set_study,
)
from repro.metrics.hop import heavy_output_probability
from repro.metrics.success import success_rate
from repro.metrics.xeb import cross_entropy_difference


@dataclass
class Figure9Config:
    """Workload sizes for the Aspen-8 study."""

    qv_qubits: int = 3
    qv_circuits: int = 2
    qaoa_qubits: int = 4
    qaoa_circuits: int = 2
    qft_qubits: int = 3
    shots: int = 3000
    seed: int = 9
    instruction_sets: Optional[List[str]] = None
    workers: int = 1
    pipeline: str = "default"
    """Compiler pipeline for every compile node; ``"auto"`` lets the
    autotuner (:mod:`repro.compiler.autotune`) pick per (circuit,
    instruction set) by predicted compiled fidelity."""
    backend: str = "auto"
    """Simulator backend for every simulate node (see ``repro
    simulators``); ``"auto"`` is the historical qubit-threshold
    dispatch."""

    @classmethod
    def quick(cls) -> "Figure9Config":
        """Benchmark-sized configuration with a representative subset of sets."""
        return cls(
            qv_circuits=1,
            qaoa_circuits=1,
            shots=2000,
            instruction_sets=["S3", "S4", "R1", "R5", "FullXY"],
        )

    @classmethod
    def paper_scale(cls) -> "Figure9Config":
        """The paper's configuration (100 circuits per random workload, 10000 shots)."""
        return cls(qv_circuits=100, qaoa_circuits=100, shots=10000)

    def selected_sets(self) -> Dict[str, InstructionSet]:
        """The instruction sets evaluated (defaults to the whole Rigetti catalogue)."""
        catalogue = rigetti_catalogue()
        if self.instruction_sets is None:
            return catalogue
        return {name: catalogue[name] for name in self.instruction_sets}


@dataclass
class Figure9Result:
    """Per-workload study results for Figure 9."""

    qv: StudyResult
    qaoa: StudyResult
    qft: StudyResult

    def studies(self) -> List[StudyResult]:
        """All three studies (panels a, b, c)."""
        return [self.qv, self.qaoa, self.qft]

    def format_table(self) -> str:
        """Text rendering of all three panels, plus per-pass rewrite statistics."""
        parts = [study.format_table() for study in self.studies()]
        parts.extend(
            section
            for section in (study.format_pass_stats() for study in self.studies())
            if section
        )
        return "\n\n".join(parts)

    def multi_type_beats_single(self, panel: str = "qv") -> bool:
        """True when the best multi-type set beats the best single-type set."""
        study = {"qv": self.qv, "qaoa": self.qaoa, "qft": self.qft}[panel]
        single = [v.mean_metric for k, v in study.per_set.items() if k.startswith("S")]
        multi = [
            v.mean_metric
            for k, v in study.per_set.items()
            if k.startswith("R") or k.startswith("Full")
        ]
        if not single or not multi:
            return False
        return max(multi) >= max(single)


def run_figure9(
    config: Optional[Figure9Config] = None,
    decomposer: Optional[NuOpDecomposer] = None,
) -> Figure9Result:
    """Run the Aspen-8 instruction-set study."""
    config = config or Figure9Config.quick()
    decomposer = decomposer if decomposer is not None else NuOpDecomposer()
    instruction_sets = config.selected_sets()
    options = SimulationOptions(shots=config.shots, seed=config.seed)

    def device_factory():
        return aspen8_device(noise_variation=True)

    qv_study = run_instruction_set_study(
        "qv",
        qv_suite(config.qv_qubits, config.qv_circuits, seed=config.seed),
        "HOP",
        heavy_output_probability,
        device_factory,
        instruction_sets,
        decomposer=decomposer,
        options=options,
        workers=config.workers,
        pipeline=config.pipeline,
        backend=config.backend,
    )
    qaoa_study = run_instruction_set_study(
        "qaoa",
        qaoa_suite(config.qaoa_qubits, config.qaoa_circuits, seed=config.seed + 1),
        "XED",
        cross_entropy_difference,
        device_factory,
        instruction_sets,
        decomposer=decomposer,
        options=options,
        workers=config.workers,
        pipeline=config.pipeline,
        backend=config.backend,
    )
    target = qft_target_value(config.qft_qubits)
    qft_study = run_instruction_set_study(
        "qft",
        [qft_benchmark_circuit(config.qft_qubits, target)],
        "success_rate",
        lambda measured, ideal: success_rate(measured, target),
        device_factory,
        instruction_sets,
        decomposer=decomposer,
        options=options,
        workers=config.workers,
        pipeline=config.pipeline,
        backend=config.backend,
    )
    return Figure9Result(qv=qv_study, qaoa=qaoa_study, qft=qft_study)
