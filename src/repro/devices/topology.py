"""Device connectivity graphs.

Wraps a :class:`networkx.Graph` with the handful of queries the compiler
and the experiment drivers need: adjacency tests, shortest paths / swap
distances and connected-subgraph enumeration for initial qubit placement.
Constructors are provided for the topologies used in the paper: rings and
octagon chains (Rigetti Aspen family) and rectangular grids (Google
Sycamore).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

Edge = Tuple[int, int]


class Topology:
    """Undirected device connectivity graph over integer-labelled qubits."""

    def __init__(self, num_qubits: int, edges: Iterable[Sequence[int]], name: str = "topology"):
        self.name = name
        self.graph: nx.Graph = nx.Graph()
        self.graph.add_nodes_from(range(int(num_qubits)))
        for a, b in edges:
            a, b = int(a), int(b)
            if a == b:
                raise ValueError("self-loop edges are not allowed")
            if a >= num_qubits or b >= num_qubits or a < 0 or b < 0:
                raise ValueError(f"edge ({a}, {b}) outside qubit range")
            self.graph.add_edge(*sorted((a, b)))
        self._distances: Optional[Dict[int, Dict[int, int]]] = None

    # -- basic queries --------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Number of qubits (nodes)."""
        return self.graph.number_of_nodes()

    @property
    def edges(self) -> List[Edge]:
        """Sorted list of coupler edges."""
        return sorted(tuple(sorted(edge)) for edge in self.graph.edges)

    def degree(self, qubit: int) -> int:
        """Number of couplers attached to ``qubit``."""
        return self.graph.degree[qubit]

    def neighbors(self, qubit: int) -> List[int]:
        """Qubits directly coupled to ``qubit``."""
        return sorted(self.graph.neighbors(qubit))

    def are_connected(self, a: int, b: int) -> bool:
        """True when a two-qubit gate can act directly on ``(a, b)``."""
        return self.graph.has_edge(int(a), int(b))

    def is_connected_subset(self, qubits: Sequence[int]) -> bool:
        """True when ``qubits`` induce a connected subgraph."""
        subgraph = self.graph.subgraph(qubits)
        return len(qubits) > 0 and nx.is_connected(subgraph)

    # -- distances ------------------------------------------------------------

    def _ensure_distances(self) -> Dict[int, Dict[int, int]]:
        if self._distances is None:
            self._distances = dict(nx.all_pairs_shortest_path_length(self.graph))
        return self._distances

    def distance(self, a: int, b: int) -> int:
        """Shortest-path distance (in couplers) between two qubits."""
        return self._ensure_distances()[int(a)][int(b)]

    def shortest_path(self, a: int, b: int) -> List[int]:
        """A shortest path of qubits from ``a`` to ``b`` inclusive."""
        return nx.shortest_path(self.graph, int(a), int(b))

    def swap_distance(self, a: int, b: int) -> int:
        """Number of SWAPs needed to make ``a`` and ``b`` adjacent."""
        return max(self.distance(a, b) - 1, 0)

    # -- placement helpers -----------------------------------------------------

    def connected_subgraphs(self, size: int, limit: int = 200) -> List[Tuple[int, ...]]:
        """Enumerate up to ``limit`` connected qubit subsets of the given size.

        Uses a breadth-first expansion from every qubit; sufficient for the
        small application sizes (3-6 qubits) the paper evaluates.
        """
        if size < 1 or size > self.num_qubits:
            return []
        found: List[Tuple[int, ...]] = []
        seen = set()
        for start in sorted(self.graph.nodes):
            frontier = [(start,)]
            while frontier and len(found) < limit:
                subset = frontier.pop()
                if len(subset) == size:
                    key = tuple(sorted(subset))
                    if key not in seen:
                        seen.add(key)
                        found.append(key)
                    continue
                last_neighbors = set()
                for qubit in subset:
                    last_neighbors.update(self.graph.neighbors(qubit))
                for candidate in sorted(last_neighbors - set(subset)):
                    frontier.append(subset + (candidate,))
            if len(found) >= limit:
                break
        return found

    def subgraph_edges(self, qubits: Sequence[int]) -> List[Edge]:
        """Edges of the induced subgraph over ``qubits``."""
        subgraph = self.graph.subgraph(qubits)
        return sorted(tuple(sorted(edge)) for edge in subgraph.edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology({self.name!r}, qubits={self.num_qubits}, "
            f"edges={self.graph.number_of_edges()})"
        )


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def line_topology(num_qubits: int, name: str = "line") -> Topology:
    """A 1D chain of qubits."""
    return Topology(num_qubits, [(i, i + 1) for i in range(num_qubits - 1)], name=name)


def ring_topology(num_qubits: int, name: str = "ring") -> Topology:
    """A single ring of qubits."""
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return Topology(num_qubits, edges, name=name)


def grid_topology(rows: int, cols: int, name: str = "grid") -> Topology:
    """A ``rows x cols`` rectangular grid (the paper describes Sycamore as grid-connected)."""
    def index(r: int, c: int) -> int:
        return r * cols + c

    edges: List[Edge] = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((index(r, c), index(r, c + 1)))
            if r + 1 < rows:
                edges.append((index(r, c), index(r + 1, c)))
    return Topology(rows * cols, edges, name=name)


def octagon_chain_topology(
    num_rings: int,
    ring_size: int = 8,
    missing_qubits: Sequence[int] = (),
    name: str = "octagon_chain",
) -> Topology:
    """Chain of octagonal rings, the Rigetti Aspen family layout.

    Ring ``k`` occupies qubits ``k*ring_size .. (k+1)*ring_size - 1`` wired
    in a cycle.  Adjacent rings are joined by two couplers connecting the
    facing sides of the octagons (qubits 1 and 2 of one ring to qubits 6
    and 5 of the next, mirroring the Aspen-8 lattice).  ``missing_qubits``
    removes non-functional qubits and their couplers.
    """
    total = num_rings * ring_size
    edges: List[Edge] = []
    for ring in range(num_rings):
        base = ring * ring_size
        for offset in range(ring_size):
            edges.append((base + offset, base + (offset + 1) % ring_size))
        if ring + 1 < num_rings:
            next_base = (ring + 1) * ring_size
            edges.append((base + 1, next_base + 6))
            edges.append((base + 2, next_base + 5))
    missing = set(int(q) for q in missing_qubits)
    kept_edges = [e for e in edges if e[0] not in missing and e[1] not in missing]
    topology = Topology(total, kept_edges, name=name)
    if missing:
        topology.graph.remove_nodes_from(missing)
        # Relabelling is intentionally *not* done: Aspen qubit ids keep gaps
        # for non-functional qubits, matching vendor calibration data.
    return topology
