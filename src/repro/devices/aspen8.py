"""Model of the Rigetti Aspen-8 device.

Aspen-8 is a 30-qubit device built from four octagonal rings of eight
qubits each (two qubits are non-functional).  Figure 3 of the paper shows
the calibrated CZ and XY(pi) fidelities of the first ring; those measured
values are reproduced here.  The remaining edges, and every other
``XY(theta)`` gate type, are modelled with the uniform 95-99% fidelity
range reported in the XY-gate demonstration paper (Abrams et al.), exactly
as the paper's own simulation setup does.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.devices.device import Device, GateErrorDistribution
from repro.devices.topology import octagon_chain_topology
from repro.simulators.noise_model import NoiseModel

Edge = Tuple[int, int]

# Measured fidelities of the first Aspen-8 ring (Figure 3 of the paper).
# A fidelity of 0 in the figure means the XY gate is not operational on
# that edge; we model it as a very poor (50%) gate so the compiler always
# avoids it, rather than removing the edge.
FIRST_RING_CZ_FIDELITY: Dict[Edge, float] = {
    (0, 1): 0.86,
    (1, 2): 0.81,
    (2, 3): 0.94,
    (3, 4): 0.97,
    (4, 5): 0.94,
    (5, 6): 0.93,
    (6, 7): 0.94,
    (0, 7): 0.96,
}

FIRST_RING_XY_FIDELITY: Dict[Edge, float] = {
    (0, 1): 0.50,
    (1, 2): 0.50,
    (2, 3): 0.97,
    (3, 4): 0.95,
    (4, 5): 0.84,
    (5, 6): 0.96,
    (6, 7): 0.70,
    (0, 7): 0.50,
}

# Default calibration constants (representative of Rigetti QCS data).
SINGLE_QUBIT_ERROR = 0.002
READOUT_ERROR = 0.05
T1_NS = 30_000.0
T2_NS = 20_000.0
SINGLE_QUBIT_DURATION_NS = 60.0
TWO_QUBIT_DURATION_NS = 180.0

# Canonical type keys for the two natively calibrated Aspen-8 gate types.
CZ_KEY = "cz"
XY_PI_KEY = "xy(3.141593)"

NON_FUNCTIONAL_QUBITS = (17, 27)
"""Two qubits of the 32-qubit lattice are disabled, leaving 30 functional qubits."""


def aspen8_device(
    noise_variation: bool = True,
    seed: Optional[int] = 8,
    include_measured_first_ring: bool = True,
) -> Device:
    """Build the Aspen-8 device model.

    Parameters
    ----------
    noise_variation:
        When False, every gate type on every edge uses the mean error rate
        (the Figure 10e-style ablation).
    seed:
        Seed for sampling unmeasured edge fidelities.
    include_measured_first_ring:
        When True (default) the first ring uses the measured Figure 3
        fidelities for CZ and XY(pi).
    """
    topology = octagon_chain_topology(
        num_rings=4, ring_size=8, missing_qubits=NON_FUNCTIONAL_QUBITS, name="aspen-8"
    )
    noise_model = NoiseModel(
        default_single_qubit_error=SINGLE_QUBIT_ERROR,
        default_two_qubit_error=0.05,
        default_t1=T1_NS,
        default_t2=T2_NS,
        default_readout_error=READOUT_ERROR,
        single_qubit_duration=SINGLE_QUBIT_DURATION_NS,
        two_qubit_duration=TWO_QUBIT_DURATION_NS,
    )
    for qubit in topology.graph.nodes:
        noise_model.single_qubit_error[qubit] = SINGLE_QUBIT_ERROR
        noise_model.t1[qubit] = T1_NS
        noise_model.t2[qubit] = T2_NS
        noise_model.readout_error[qubit] = READOUT_ERROR

    # Arbitrary XY(theta) gates: fidelity uniform in 95-99% => error 1-5%.
    distribution = GateErrorDistribution(
        kind="uniform", mean=0.03, std=0.0, minimum=0.01, maximum=0.05
    )
    device = Device(
        name="rigetti-aspen-8",
        topology=topology,
        noise_model=noise_model,
        two_qubit_error_distribution=distribution,
        noise_variation=noise_variation,
        seed=seed,
    )

    measured_cz: Dict[Edge, float] = {}
    measured_xy: Dict[Edge, float] = {}
    if include_measured_first_ring and noise_variation:
        measured_cz = {edge: 1.0 - f for edge, f in FIRST_RING_CZ_FIDELITY.items()}
        measured_xy = {edge: 1.0 - f for edge, f in FIRST_RING_XY_FIDELITY.items()}
    device.register_gate_type(CZ_KEY, error_rates=measured_cz)
    device.register_gate_type(XY_PI_KEY, error_rates=measured_xy)
    return device
