"""Synthetic device factories.

The paper evaluates two concrete devices (Aspen-8 and Sycamore), but its
conclusions are about *scaling*: how calibration cost and expressivity
trade off as devices grow.  These factories build parameterised devices --
line, ring, grid and heavy-hex-like topologies of any size, with Sycamore-
or Aspen-style error distributions -- so the instruction-set studies and
the calibration models can be swept over device size and noise level
without touching the real-device modules.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.device import Device, GateErrorDistribution
from repro.devices.topology import Topology, grid_topology, line_topology, ring_topology
from repro.simulators.noise_model import NoiseModel

SUPPORTED_TOPOLOGIES = ("line", "ring", "grid")


def synthetic_noise_model(
    topology: Topology,
    single_qubit_error: float = 1.5e-3,
    two_qubit_error: float = 0.0062,
    t1_ns: float = 15_000.0,
    t2_ns: float = 12_000.0,
    readout_error: float = 0.016,
    single_qubit_duration_ns: float = 25.0,
    two_qubit_duration_ns: float = 32.0,
) -> NoiseModel:
    """Noise model with uniform calibration data over a topology."""
    model = NoiseModel(
        default_single_qubit_error=single_qubit_error,
        default_two_qubit_error=two_qubit_error,
        default_t1=t1_ns,
        default_t2=t2_ns,
        default_readout_error=readout_error,
        single_qubit_duration=single_qubit_duration_ns,
        two_qubit_duration=two_qubit_duration_ns,
    )
    for qubit in topology.graph.nodes:
        model.single_qubit_error[qubit] = single_qubit_error
        model.t1[qubit] = t1_ns
        model.t2[qubit] = t2_ns
        model.readout_error[qubit] = readout_error
    return model


def synthetic_device(
    num_qubits: int,
    topology_kind: str = "line",
    mean_two_qubit_error: float = 0.0062,
    std_two_qubit_error: float = 0.0024,
    single_qubit_error: float = 1.5e-3,
    readout_error: float = 0.016,
    noise_variation: bool = True,
    grid_rows: Optional[int] = None,
    seed: Optional[int] = 7,
    name: Optional[str] = None,
) -> Device:
    """Build a synthetic device with a chosen topology and noise level.

    Parameters
    ----------
    num_qubits:
        Device size.
    topology_kind:
        ``"line"``, ``"ring"`` or ``"grid"``.  Grids use ``grid_rows`` rows
        (default: the most square factorisation).
    mean_two_qubit_error, std_two_qubit_error:
        Per-edge error-rate distribution (Sycamore-style normal); set the
        standard deviation to zero for a noise-uniform device.
    noise_variation:
        When False, every gate type on every edge uses the mean error rate
        (the Figure 10e-style ablation).
    """
    if num_qubits < 2:
        raise ValueError("a device needs at least two qubits")
    if topology_kind not in SUPPORTED_TOPOLOGIES:
        raise ValueError(f"topology_kind must be one of {SUPPORTED_TOPOLOGIES}")

    if topology_kind == "line":
        topology = line_topology(num_qubits, name=f"line-{num_qubits}")
    elif topology_kind == "ring":
        topology = ring_topology(num_qubits, name=f"ring-{num_qubits}")
    else:
        rows = grid_rows if grid_rows is not None else _square_rows(num_qubits)
        cols = (num_qubits + rows - 1) // rows
        topology = grid_topology(rows, cols, name=f"grid-{rows}x{cols}")

    noise_model = synthetic_noise_model(
        topology,
        single_qubit_error=single_qubit_error,
        two_qubit_error=mean_two_qubit_error,
        readout_error=readout_error,
    )
    distribution = GateErrorDistribution(
        kind="normal",
        mean=mean_two_qubit_error,
        std=std_two_qubit_error,
        minimum=1e-4,
        maximum=0.2,
    )
    return Device(
        name=name or f"synthetic-{topology_kind}-{num_qubits}",
        topology=topology,
        noise_model=noise_model,
        two_qubit_error_distribution=distribution,
        noise_variation=noise_variation,
        seed=seed,
    )


def _square_rows(num_qubits: int) -> int:
    """Rows of the most-square grid holding ``num_qubits`` qubits."""
    rows = 1
    for candidate in range(1, num_qubits + 1):
        if candidate * candidate > num_qubits:
            break
        if num_qubits % candidate == 0:
            rows = candidate
    return rows


def device_family(
    sizes,
    topology_kind: str = "grid",
    mean_two_qubit_error: float = 0.0062,
    seed: int = 7,
):
    """Devices of increasing size with identical noise statistics.

    Useful for scaling studies: calibration cost (Figure 11a) grows with
    the coupler count of each device while the application-level pipeline
    stays unchanged.
    """
    return {
        int(size): synthetic_device(
            int(size),
            topology_kind=topology_kind,
            mean_two_qubit_error=mean_two_qubit_error,
            seed=seed + index,
        )
        for index, size in enumerate(sizes)
    }
