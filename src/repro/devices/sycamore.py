"""Model of the Google Sycamore device.

Sycamore is a 54-qubit transmon processor; the paper describes it as
grid-connected and uses its published coherence times, readout errors and
simultaneous-SYC error rates.  The reproduction models the connectivity as
a 6x9 rectangular grid (54 qubits, degree <= 4) and samples per-edge error
rates for any requested fSim gate type from the normal distribution the
paper specifies: mean 0.62%, standard deviation 0.24%.
"""

from __future__ import annotations

from typing import Optional

from repro.devices.device import Device, GateErrorDistribution
from repro.devices.topology import grid_topology
from repro.simulators.noise_model import NoiseModel

# Calibration constants from the quantum-supremacy experiment (Arute et al. 2019).
SINGLE_QUBIT_ERROR = 0.0016
READOUT_ERROR = 0.031
T1_NS = 15_000.0
T2_NS = 16_000.0
SINGLE_QUBIT_DURATION_NS = 25.0
TWO_QUBIT_DURATION_NS = 32.0

MEAN_TWO_QUBIT_ERROR = 0.0062
STD_TWO_QUBIT_ERROR = 0.0024

GRID_ROWS = 6
GRID_COLS = 9


def sycamore_device(
    noise_variation: bool = True,
    seed: Optional[int] = 54,
    mean_two_qubit_error: float = MEAN_TWO_QUBIT_ERROR,
    std_two_qubit_error: float = STD_TWO_QUBIT_ERROR,
) -> Device:
    """Build the Sycamore device model.

    Parameters
    ----------
    noise_variation:
        When False every gate type on every edge uses the mean error rate
        (Figure 10e ablation).
    seed:
        Seed for sampling per-edge error rates.
    mean_two_qubit_error, std_two_qubit_error:
        Parameters of the per-edge error-rate distribution.  The Figure 10f
        sweep rebuilds the device with smaller means (0.36% down to
        0.0225%).
    """
    topology = grid_topology(GRID_ROWS, GRID_COLS, name="sycamore")
    noise_model = NoiseModel(
        default_single_qubit_error=SINGLE_QUBIT_ERROR,
        default_two_qubit_error=mean_two_qubit_error,
        default_t1=T1_NS,
        default_t2=T2_NS,
        default_readout_error=READOUT_ERROR,
        single_qubit_duration=SINGLE_QUBIT_DURATION_NS,
        two_qubit_duration=TWO_QUBIT_DURATION_NS,
    )
    for qubit in topology.graph.nodes:
        noise_model.single_qubit_error[qubit] = SINGLE_QUBIT_ERROR
        noise_model.t1[qubit] = T1_NS
        noise_model.t2[qubit] = T2_NS
        noise_model.readout_error[qubit] = READOUT_ERROR

    distribution = GateErrorDistribution(
        kind="normal",
        mean=mean_two_qubit_error,
        std=std_two_qubit_error,
        minimum=1e-4,
        maximum=0.2,
    )
    return Device(
        name="google-sycamore",
        topology=topology,
        noise_model=noise_model,
        two_qubit_error_distribution=distribution,
        noise_variation=noise_variation,
        seed=seed,
    )
