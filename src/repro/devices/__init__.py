"""Device models: topologies, calibration data and the two study devices.

* :mod:`repro.devices.topology` -- connectivity graphs and constructors.
* :mod:`repro.devices.device` -- the generic :class:`Device` container and
  per-gate-type calibration sampling.
* :mod:`repro.devices.aspen8` -- Rigetti Aspen-8 (30 qubits, octagon rings).
* :mod:`repro.devices.sycamore` -- Google Sycamore (54 qubits, grid).
"""

from repro.devices.topology import (
    Topology,
    line_topology,
    ring_topology,
    grid_topology,
    octagon_chain_topology,
)
from repro.devices.device import Device, GateErrorDistribution
from repro.devices.aspen8 import aspen8_device
from repro.devices.sycamore import sycamore_device

__all__ = [
    "Topology",
    "line_topology",
    "ring_topology",
    "grid_topology",
    "octagon_chain_topology",
    "Device",
    "GateErrorDistribution",
    "aspen8_device",
    "sycamore_device",
]
