"""Generic device model: topology + calibration data + gate-type registry.

A :class:`Device` couples a :class:`~repro.devices.topology.Topology` with
a :class:`~repro.simulators.noise_model.NoiseModel` and knows how to
*sample* calibration data for new two-qubit gate types.  The paper's study
needs per-edge fidelities for every gate type in every candidate
instruction set; real devices only publish calibration data for the gate
types they already support, so the remaining types are modelled by the
error-rate distributions the paper specifies (Section VI):

* Sycamore: gate types other than SYC are drawn from a normal distribution
  with mean 0.62% and standard deviation 0.24%.
* Aspen-8: arbitrary ``XY(theta)`` gates are drawn uniformly from the
  95-99% fidelity range.

``noise_variation=False`` reproduces the Figure 10e ablation where every
gate type on an edge shares the same error rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.topology import Topology
from repro.simulators.noise_model import NoiseModel

Edge = Tuple[int, int]


@dataclass(frozen=True)
class GateErrorDistribution:
    """Distribution from which per-edge gate error rates are sampled.

    ``kind`` is one of ``"fixed"``, ``"normal"`` or ``"uniform"``.

    * ``fixed``: every edge gets ``mean``.
    * ``normal``: edges get ``Normal(mean, std)`` clipped to
      ``[minimum, maximum]``.
    * ``uniform``: edges get ``Uniform(minimum, maximum)``.
    """

    kind: str = "normal"
    mean: float = 0.0062
    std: float = 0.0024
    minimum: float = 1e-4
    maximum: float = 0.15

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one error rate."""
        if self.kind == "fixed":
            return float(self.mean)
        if self.kind == "normal":
            value = rng.normal(self.mean, self.std)
            return float(np.clip(value, self.minimum, self.maximum))
        if self.kind == "uniform":
            return float(rng.uniform(self.minimum, self.maximum))
        raise ValueError(f"unknown distribution kind {self.kind!r}")

    def expected(self) -> float:
        """Mean error rate of the distribution (used when noise variation is disabled)."""
        if self.kind in ("fixed", "normal"):
            return float(self.mean)
        if self.kind == "uniform":
            return float((self.minimum + self.maximum) / 2.0)
        raise ValueError(f"unknown distribution kind {self.kind!r}")


class Device:
    """A quantum device: topology, calibration data and gate-type registry."""

    def __init__(
        self,
        name: str,
        topology: Topology,
        noise_model: NoiseModel,
        two_qubit_error_distribution: GateErrorDistribution,
        noise_variation: bool = True,
        seed: Optional[int] = 2021,
    ):
        self.name = name
        self.topology = topology
        self.noise_model = noise_model
        self.two_qubit_error_distribution = two_qubit_error_distribution
        self.noise_variation = noise_variation
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._registered_types: Dict[str, float] = {}

    # -- gate-type calibration --------------------------------------------------

    @property
    def registered_gate_types(self) -> List[str]:
        """Gate-type keys with calibration data on every edge."""
        return sorted(self._registered_types)

    def registered_type_scales(self) -> Dict[str, float]:
        """Error-scale each registered gate type was calibrated with.

        Registration is first-wins (:meth:`ensure_gate_types` skips keys
        that already have calibration), so a type's stored error rates
        carry exactly this factor.  The error-scale sweeps use it to apply
        a job's scale *relative* to the registration when lowering noise
        programs (:func:`repro.simulators.noise_program.noise_program_for`).
        """
        return dict(self._registered_types)

    def register_gate_type(
        self,
        type_key: str,
        error_rates: Optional[Dict[Edge, float]] = None,
        scale: float = 1.0,
    ) -> None:
        """Provide calibration data for a two-qubit gate type on every edge.

        ``error_rates`` supplies measured values per edge; missing edges
        (or a missing dictionary) are filled by sampling the device's error
        distribution (or its mean when ``noise_variation`` is off).
        ``scale`` multiplies every error rate; the Figure 10a-c sweeps use
        it to model a continuous gate family whose calibration quality is
        1.5x/2x/3x worse.
        """
        provided = {tuple(sorted(edge)): rate for edge, rate in (error_rates or {}).items()}
        for edge in self.topology.edges:
            if edge in provided:
                rate = provided[edge]
            elif self.noise_variation:
                rate = self.two_qubit_error_distribution.sample(self._rng)
            else:
                rate = self.two_qubit_error_distribution.expected()
            self.noise_model.set_two_qubit_error_rate(type_key, edge, min(rate * scale, 1.0))
        self._registered_types[type_key] = scale

    def ensure_gate_types(self, type_keys: Iterable[str], scale: float = 1.0) -> None:
        """Register every gate type in ``type_keys`` that is not yet calibrated."""
        for type_key in type_keys:
            if type_key not in self._registered_types:
                self.register_gate_type(type_key, scale=scale)

    def calibration_fingerprint(self) -> str:
        """Digest of everything about this device that affects compilation.

        Two devices with equal fingerprints produce identical compilation
        results *and* identical future calibration samples: the digest
        covers the device identity (name, seed, noise-variation flag, error
        distribution), the set of already-registered gate types with their
        error scales (which pins down how many samples the calibration RNG
        has drawn), and the full calibration tables of the noise model.
        The compilation cache (:mod:`repro.core.pipeline`) uses this as the
        device component of its keys, so cache entries are shared across
        runs exactly when the device state genuinely matches.
        """
        from repro.circuits.hashing import hash_mapping, hash_scalars

        model = self.noise_model
        distribution = self.two_qubit_error_distribution
        return hash_scalars(
            "device",
            self.name,
            self.seed,
            self.noise_variation,
            self.topology.num_qubits,
            repr(sorted(tuple(edge) for edge in self.topology.edges)),
            distribution.kind,
            distribution.mean,
            distribution.std,
            distribution.minimum,
            distribution.maximum,
            hash_mapping(dict(sorted(self._registered_types.items()))),
            hash_mapping(model.single_qubit_error),
            hash_mapping(model.two_qubit_error),
            hash_mapping(model.t1),
            hash_mapping(model.t2),
            hash_mapping(model.readout_error),
            hash_mapping(model.gate_durations),
            model.default_single_qubit_error,
            model.default_two_qubit_error,
            model.default_t1,
            model.default_t2,
            model.default_readout_error,
            model.single_qubit_duration,
            model.two_qubit_duration,
            model.include_thermal_relaxation,
            model.include_idle_noise,
        )

    def gate_fidelity(self, type_key: str, edge: Sequence[int]) -> float:
        """Calibrated fidelity of ``type_key`` on ``edge`` (1 - error rate)."""
        return 1.0 - self.noise_model.two_qubit_error_rate(type_key, edge)

    def edge_fidelities(self, type_key: str) -> Dict[Edge, float]:
        """Fidelity of a gate type on every edge of the device."""
        return {edge: self.gate_fidelity(type_key, edge) for edge in self.topology.edges}

    def average_two_qubit_error(self, type_keys: Optional[Sequence[str]] = None) -> float:
        """Mean error rate over edges and the given gate types (default: all registered)."""
        keys = list(type_keys) if type_keys is not None else self.registered_gate_types
        if not keys:
            return self.two_qubit_error_distribution.expected()
        rates = [
            self.noise_model.two_qubit_error_rate(key, edge)
            for key in keys
            for edge in self.topology.edges
        ]
        return float(np.mean(rates))

    # -- convenience --------------------------------------------------------------

    def readout_errors_for(self, physical_qubits: Sequence[int]) -> List[float]:
        """Readout error probabilities for a list of physical qubits."""
        return [self.noise_model.qubit_readout_error(q) for q in physical_qubits]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Device({self.name!r}, qubits={self.topology.num_qubits}, "
            f"gate_types={len(self._registered_types)})"
        )
