"""Command-line interface for regenerating the paper's tables and figures.

Every evaluation artefact has a subcommand::

    python -m repro table1            # Table I gate catalogue + identities
    python -m repro table2            # Table II instruction sets
    python -m repro fig6              # NuOp vs analytic baseline gate counts
    python -m repro fig7              # exact vs approximate decomposition sweep
    python -m repro fig8              # fSim expressivity heatmaps
    python -m repro fig9              # Rigetti Aspen-8 instruction-set study
    python -m repro fig10             # Google Sycamore instruction-set study
    python -m repro fig10f            # Fermi-Hubbard error-rate scaling
    python -m repro fig11a            # calibration circuit-count scaling
    python -m repro fig11b            # calibration time vs reliability tradeoff
    python -m repro design            # greedy instruction-set design (Section VIII.A)
    python -m repro calibration       # drift + recalibration policy comparison
    python -m repro apps              # list registered application workloads
    python -m repro pipelines         # list registered compiler pipelines
    python -m repro pipelines --stats # per-pass rewrite statistics + autotuner verdict
    python -m repro simulators        # list registered simulator backends
    python -m repro cache stats       # persistent + in-process cache counters
    python -m repro cache clear       # drop every persisted compilation/simulation
    python -m repro serve             # long-lived study service (docs/service.md)
    python -m repro submit            # submit a study to a running service

Each figure subcommand accepts ``--paper-scale`` to run the full
configuration from the paper instead of the fast default, plus
``--cache-dir`` to enable the persistent disk compilation/simulation
cache; the study subcommands (fig9/fig10/fig10f) also accept
``--pipeline`` to select a named compiler pipeline (see ``repro
pipelines``) or ``--pipeline auto`` to let the autotuner pick one per
workload, and ``--backend`` to select the simulator backend for the
simulate nodes (see ``repro simulators``; the default ``auto`` is the
historical qubit-threshold dispatch).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.visualization import render_figure8, render_figure9, render_figure10, render_figure11a
from repro.visualization.text import render_table


def _scale(
    config_class,
    paper_scale: bool,
    workers: Optional[int] = None,
    pipeline: Optional[str] = None,
    backend: Optional[str] = None,
):
    config = config_class.paper_scale() if paper_scale else config_class.quick()
    if workers is not None:
        if hasattr(config, "workers"):
            config.workers = workers
        else:
            print(
                f"warning: --workers has no effect on {config_class.__name__} "
                "(this experiment runs no engine studies)",
                file=sys.stderr,
            )
    if pipeline is not None:
        if hasattr(config, "pipeline"):
            config.pipeline = pipeline
        else:
            print(
                f"warning: --pipeline has no effect on {config_class.__name__} "
                "(this experiment does not compile through the pipeline driver)",
                file=sys.stderr,
            )
    if backend is not None:
        if hasattr(config, "backend"):
            config.backend = backend
        else:
            print(
                f"warning: --backend has no effect on {config_class.__name__} "
                "(this experiment does not simulate through the engine)",
                file=sys.stderr,
            )
    return config


# ---------------------------------------------------------------------------
# Subcommand implementations (each returns the text to print)
# ---------------------------------------------------------------------------


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.experiments.tables import table1_identities, table1_rows

    rows = [
        {
            "vendor": row.vendor,
            "status": row.status,
            "gate": row.gate_name,
            "fidelity": row.fidelity_range,
        }
        for row in table1_rows()
    ]
    identities = table1_identities()
    checks = "\n".join(f"  {name}: {'ok' if value else 'FAILED'}" for name, value in identities.items())
    return "Table I: vendor gate types\n" + render_table(rows) + "\n\ngate identities:\n" + checks


def _cmd_table2(args: argparse.Namespace) -> str:
    from repro.experiments.tables import table2_rows

    rows = [
        {
            "set": row.name,
            "kind": row.kind,
            "#types": row.num_gate_types,
            "members": ",".join(row.members) or "-",
        }
        for row in table2_rows()
    ]
    return "Table II: instruction sets\n" + render_table(rows)


def _cmd_fig6(args: argparse.Namespace) -> str:
    from repro.experiments.fig6 import Figure6Config, run_figure6

    result = run_figure6(_scale(Figure6Config, args.paper_scale, workers=getattr(args, 'workers', None)))
    return result.format_table()


def _cmd_fig7(args: argparse.Namespace) -> str:
    from repro.experiments.fig7 import Figure7Config, run_figure7

    result = run_figure7(_scale(Figure7Config, args.paper_scale, workers=getattr(args, 'workers', None)))
    return result.format_table()


def _cmd_fig8(args: argparse.Namespace) -> str:
    from repro.experiments.fig8 import Figure8Config, run_figure8

    config = _scale(Figure8Config, args.paper_scale, workers=getattr(args, "workers", None))
    result = run_figure8(config)
    return render_figure8(result)


def _cmd_fig9(args: argparse.Namespace) -> str:
    from repro.experiments.fig9 import Figure9Config, run_figure9

    result = run_figure9(_scale(Figure9Config, args.paper_scale, workers=getattr(args, 'workers', None), pipeline=getattr(args, 'pipeline', None), backend=getattr(args, 'backend', None)))
    return render_figure9(result) + "\n\n" + result.format_table()


def _cmd_fig10(args: argparse.Namespace) -> str:
    from repro.experiments.fig10 import Figure10Config, run_figure10

    result = run_figure10(_scale(Figure10Config, args.paper_scale, workers=getattr(args, 'workers', None), pipeline=getattr(args, 'pipeline', None), backend=getattr(args, 'backend', None)))
    return render_figure10(result) + "\n\n" + result.format_table()


def _cmd_fig10f(args: argparse.Namespace) -> str:
    from repro.experiments.fig10 import Figure10fConfig, run_figure10f

    result = run_figure10f(_scale(Figure10fConfig, args.paper_scale, workers=getattr(args, 'workers', None), pipeline=getattr(args, 'pipeline', None), backend=getattr(args, 'backend', None)))
    return result.format_table()


def _cmd_fig11a(args: argparse.Namespace) -> str:
    from repro.experiments.fig11 import Figure11aConfig, run_figure11a

    return render_figure11a(run_figure11a(Figure11aConfig()))


def _cmd_fig11b(args: argparse.Namespace) -> str:
    from repro.experiments.fig11 import Figure11bConfig, run_figure11b

    config = Figure11bConfig.quick()
    if args.paper_scale:
        from repro.experiments.fig10 import Figure10Config

        config = Figure11bConfig(figure10_config=Figure10Config.paper_scale())
    workers = getattr(args, "workers", None)
    if workers is not None and config.figure10_config is not None:
        config.figure10_config.workers = workers
    return run_figure11b(config).format_table()


def _cmd_design(args: argparse.Namespace) -> str:
    from repro.applications import unitary_ensembles
    from repro.core.expressivity import (
        candidate_gate_grid,
        design_tradeoff_curve,
        expressivity_table,
        knee_of_curve,
    )

    unitaries = unitary_ensembles(args.unitaries, seed=args.seed)
    selected = {name: unitaries[name] for name in args.applications}
    candidates = candidate_gate_grid(args.grid, args.grid, include_swap=True)
    table = expressivity_table(selected, candidates, max_layers=args.max_layers)
    designs = design_tradeoff_curve(table, max_gate_types=args.max_types)
    rows = [
        {
            "#types": design.num_gate_types,
            "mean 2Q count": design.mean_instruction_count,
            "calibration h": design.calibration_hours,
            "selection": "; ".join(design.selection),
        }
        for design in designs
    ]
    knee = knee_of_curve(designs)
    return (
        "Greedy instruction-set design (Section VIII.A procedure)\n"
        + render_table(rows)
        + f"\n\nknee of the curve (diminishing returns): {knee} gate types"
    )


def _cmd_calibration(args: argparse.Namespace) -> str:
    from repro.calibration.drift import drift_model_for_instruction_set
    from repro.calibration.scheduler import (
        NeverPolicy,
        PeriodicPolicy,
        ThresholdPolicy,
        compare_policies,
    )

    type_keys = [f"type_{index}" for index in range(args.gate_types)]
    results = compare_policies(
        lambda: drift_model_for_instruction_set(args.edges, type_keys, seed=args.seed),
        [
            PeriodicPolicy(period_hours=args.period),
            ThresholdPolicy(degradation_threshold=args.threshold),
            NeverPolicy(),
        ],
        horizon_hours=args.horizon,
    )
    rows = [result.as_row() for result in results.values()]
    return (
        f"Recalibration policies ({args.gate_types} gate types, {args.edges} edges, "
        f"{args.horizon:.0f} h horizon)\n" + render_table(rows)
    )


def _resolve_cli_disk_cache(args: argparse.Namespace):
    """Disk cache addressed by ``--cache-dir`` / ``REPRO_CACHE_DIR`` (or None).

    Resolved through the shared per-directory registry so the counters
    printed by ``repro cache stats`` include traffic from studies that used
    the same directory earlier in this process.
    """
    from repro.caching.disk import disk_cache_for, get_global_disk_cache

    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        return disk_cache_for(cache_dir)
    return get_global_disk_cache()


def _in_process_cache_report() -> str:
    """Counters of every in-process cache tier (one row group per cache).

    These die with the process, so a bare ``repro cache stats`` invocation
    reports zeros -- the section exists for long-lived processes (REPLs,
    notebooks, test harnesses) where studies have already run, and to make
    the previously invisible ideal-distribution cache inspectable at all.
    """
    from repro.compiler.autotune import global_tuner_cache
    from repro.compiler.tabulation import table_cache_stats
    from repro.core.decomposer import profile_cache_stats
    from repro.core.pipeline import global_compilation_cache
    from repro.experiments.engine import ideal_cache_stats, simulation_cache_stats
    from repro.resilience import fault_stats, retry_stats
    from repro.simulators.array_ops import array_backend_stats
    from repro.simulators.noise_program import noise_program_cache_stats

    faults = fault_stats()
    sections = {
        "compilation (memory)": global_compilation_cache().stats(),
        "ideal distributions": ideal_cache_stats(),
        "noise programs": noise_program_cache_stats(),
        "autotuner verdicts": global_tuner_cache().stats(),
        "decomposer profiles": profile_cache_stats(),
        "decomposition tables (memory)": table_cache_stats(),
        "simulation results (memory)": simulation_cache_stats(),
    }
    for name, stats in sorted(array_backend_stats().items()):
        sections[f"batched replay ({name})"] = stats
    # Resilience counters (repro.resilience): retry/recovery totals for
    # this process, plus what the active fault plan injected (all zeros
    # and plan "-" in a normal, fault-free process).
    sections["resilience (retries)"] = retry_stats()
    sections["resilience (faults)"] = {
        "plan": faults["plan"] or "-",
        "injected": sum(
            count
            for kinds in faults["injected"].values()
            for count in kinds.values()
        ),
        "consultations": sum(faults["consultations"].values()),
    }
    rows = [
        {"cache": name, "field": key, "value": value}
        for name, stats in sections.items()
        for key, value in stats.items()
    ]
    return "In-process caches (this process only)\n" + render_table(rows)


def _cmd_cache(args: argparse.Namespace) -> str:
    cache = _resolve_cli_disk_cache(args)
    if cache is None:
        return (
            "no disk compilation/simulation cache configured\n"
            "(set REPRO_CACHE_DIR or pass --cache-dir to enable the persistent tier)\n\n"
            + _in_process_cache_report()
        )
    if args.cache_command == "clear":
        removed = cache.clear()
        return f"cleared {removed} cached result(s) from {cache.root}"
    stats = cache.stats()
    rows = [
        {"field": key, "value": "unbounded" if key == "max_bytes" and value is None else value}
        for key, value in stats.items()
    ]
    return (
        "Disk compilation + simulation cache\n"
        + render_table(rows)
        + "\n\n"
        + _in_process_cache_report()
    )


def _cmd_tabulate(args: argparse.Namespace) -> str:
    """Build or inspect Weyl-chamber decomposition tables.

    Pre-building the tables (one per distinct gate type or continuous
    family, per decomposer configuration) lets serve workers and
    experiment runs with ``REPRO_DECOMP_TABULATION`` answer every 2q
    synthesis query from the disk-cached tables instead of paying the
    cold grid optimisation inline.
    """
    from repro.circuits.hashing import gate_fingerprint
    from repro.compiler.tabulation import (
        TabulationConfig,
        _TABLE_COUNTERS,
        default_grid_resolution,
        table_cache_stats,
        table_for,
    )
    from repro.core.decomposer import NuOpDecomposer
    from repro.core.instruction_sets import table2_catalogue

    if args.stats:
        cache = _resolve_cli_disk_cache(args)
        sections = {"decomposition tables (memory)": table_cache_stats()}
        if cache is not None:
            sections["decomposition tables (disk)"] = {
                key: value
                for key, value in cache.stats().items()
                if key.startswith("decomp")
            }
        rows = [
            {"cache": name, "field": key, "value": value}
            for name, stats in sections.items()
            for key, value in stats.items()
        ]
        return "Decomposition tabulation caches\n" + render_table(rows)

    resolution = (
        args.resolution if args.resolution is not None else default_grid_resolution()
    )
    config = TabulationConfig(resolution=resolution)
    decomposer = NuOpDecomposer(max_layers=args.max_layers, tabulation=config)

    catalogue = table2_catalogue()
    if args.sets:
        unknown = [name for name in args.sets if name not in catalogue]
        if unknown:
            raise SystemExit(
                f"repro tabulate: unknown instruction set(s) {', '.join(unknown)} "
                f"(choose from {', '.join(sorted(catalogue))})"
            )
        catalogue = {name: catalogue[name] for name in args.sets}

    # One table per *distinct* target: gate types are deduplicated by
    # content fingerprint (S3 appears in most Google and Rigetti sets but
    # tabulates once), continuous sets by family name.
    work: List[Tuple[str, object, Optional[str]]] = []
    seen: set = set()
    for set_name in sorted(catalogue):
        instruction_set = catalogue[set_name]
        if instruction_set.is_continuous:
            family = instruction_set.continuous_family
            if args.family and family != args.family:
                continue
            if ("family", family) not in seen:
                seen.add(("family", family))
                work.append((f"family:{family}", None, family))
        else:
            if args.family:
                continue
            for gate_type in instruction_set.gate_types:
                fingerprint = gate_fingerprint(gate_type.gate)
                if ("gate", fingerprint) not in seen:
                    seen.add(("gate", fingerprint))
                    work.append((gate_type.label, gate_type.gate, None))
    if args.family and not work:
        work.append((f"family:{args.family}", None, args.family))

    rows = []
    for label, gate, family in work:
        before = dict(_TABLE_COUNTERS)
        table = table_for(decomposer, gate, family, config)
        if _TABLE_COUNTERS["builds"] > before["builds"]:
            source = "built"
        elif _TABLE_COUNTERS["disk_loads"] > before["disk_loads"]:
            source = "disk"
        else:
            source = "memory"
        rows.append(
            {
                "target": label,
                "resolution": table.spec.resolution,
                "max_layers": table.spec.max_layers,
                "points": len(table.entries),
                "source": source,
                "build_s": round(table.build_seconds, 2),
            }
        )
    cache = _resolve_cli_disk_cache(args)
    footer = (
        "\n(no disk cache configured -- tables live in this process only; "
        "set REPRO_CACHE_DIR or pass --cache-dir to persist them)"
        if cache is None
        else ""
    )
    return "Decomposition tables\n" + render_table(rows) + footer


def _cmd_serve(args: argparse.Namespace) -> str:
    from repro.service.protocol import ShardSpec
    from repro.service.server import serve

    shard = ShardSpec.parse(args.shard) if args.shard else None
    return serve(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        exec_workers=args.exec_workers,
        shard=shard,
        batch=args.batch,
        request_deadline=args.request_deadline,
    )


def _cmd_submit(args: argparse.Namespace) -> str:
    import json

    from repro.service.client import fetch_stats, submit_study
    from repro.service.protocol import StudySpec

    if args.stats:
        return json.dumps(fetch_stats(host=args.host, port=args.port), indent=2, sort_keys=True)
    if args.spec_json:
        spec = StudySpec.from_json_dict(json.loads(args.spec_json))
    else:
        if not args.app:
            raise SystemExit("repro submit: --app is required (or pass --spec-json / --stats)")
        spec = StudySpec(
            application=args.app,
            num_qubits=args.qubits,
            num_circuits=args.circuits,
            seed=args.seed,
            metric=args.metric,
            catalogue=args.catalogue,
            sets=tuple(args.sets) if args.sets else None,
            topology=args.topology,
            pipeline=args.pipeline,
            shots=args.shots,
            backend=args.backend,
            error_scale=args.error_scale,
            error_scales=tuple(args.error_scales) if args.error_scales else None,
        )
    table = ""
    # Stream records as the daemon produces them: one NDJSON line per
    # record, flushed immediately so long studies show per-job progress.
    for record in submit_study(spec, host=args.host, port=args.port, timeout=args.timeout):
        sys.stdout.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")
        sys.stdout.flush()
        if args.table and record.get("type") == "study" and record.get("complete"):
            table = str(record.get("table", ""))
    return table


def _cmd_simulators(args: argparse.Namespace) -> str:
    from repro.simulators.array_ops import active_array_backend, available_array_backends
    from repro.simulators.backend import active_simulation_kernel, available_backends
    from repro.simulators.superop import sim_batch_max_bytes

    rows = [
        {
            "backend": name,
            "version": backend.version,
            "description": backend.description,
        }
        for name, backend in sorted(available_backends().items())
    ]
    array_names = ", ".join(sorted(available_array_backends()))
    return (
        "Registered simulator backends\n"
        + render_table(rows)
        + f"\n\nactive kernel: {active_simulation_kernel()} "
        "(REPRO_SIM_KERNEL=fused|reference; fused = one contraction per\n"
        "fused channel group, reference = the pinned bit-identical replay)\n"
        f"active array backend: {active_array_backend().name} "
        f"(REPRO_ARRAY_BACKEND={array_names}; unavailable\n"
        "backends degrade to numpy with a warning)\n"
        f"batch working-set cap: {sim_batch_max_bytes()} bytes "
        "(REPRO_SIM_BATCH_MAX_BYTES; bounds the\n"
        "(B, 2^n, 2^n) rho stack of one batched-replay pass)\n"
        "\nSelect with --backend on fig9/fig10/fig10f, backend= on run_study,\n"
        "or SimulationOptions(method=...); 'auto' dispatches by qubit count\n"
        "(density-matrix up to max_density_matrix_qubits, else trajectory)."
    )


def _cmd_pipelines(args: argparse.Namespace) -> str:
    from repro.compiler.manager import available_pipelines

    if getattr(args, "stats", False):
        return _pipelines_stats_report(args)
    rows = [
        {
            "pipeline": name,
            "passes": " -> ".join(config.passes),
            "overrides": ", ".join(f"{k}={v}" for k, v in sorted(config.overrides.items())) or "-",
            "description": config.description,
        }
        for name, config in sorted(available_pipelines().items())
    ]
    return "Registered compiler pipelines\n" + render_table(rows)


def _pipelines_stats_report(args: argparse.Namespace) -> str:
    """Compile a sample workload under every pipeline; report per-pass stats.

    The workload is a seeded QV circuit on a synthetic line device with the
    G3 instruction set -- small enough to stay interactive, rich enough
    that routing, NuOp and the cleanup passes all have work to do.  A fresh
    device per pipeline keeps the sampled calibration identical, so the
    rewrite counters and predicted fidelities are directly comparable, and
    the autotuner's verdict over its candidate set is printed last.
    """
    import numpy as np

    from repro.applications import qv_circuit
    from repro.compiler.autotune import autotune_pipeline, predicted_compiled_fidelity
    from repro.compiler.manager import available_pipelines
    from repro.core.decomposer import NuOpDecomposer
    from repro.core.instruction_sets import google_instruction_set
    from repro.core.pipeline import compile_circuit
    from repro.devices.synthetic import synthetic_device

    num_qubits = getattr(args, "qubits", 3)
    circuit = qv_circuit(num_qubits, rng=np.random.default_rng(7))
    instruction_set = google_instruction_set("G3")
    decomposer = NuOpDecomposer(seed=7)

    def device():
        return synthetic_device(num_qubits + 2, "line", seed=13)

    sections: List[str] = [
        f"Per-pass rewrite statistics ({num_qubits}-qubit QV sample workload, G3)"
    ]
    summary_rows: List[Dict[str, object]] = []
    for name in sorted(available_pipelines()):
        target = device()
        compiled = compile_circuit(
            circuit, target, instruction_set, decomposer=decomposer, pipeline=name
        )
        fidelity = predicted_compiled_fidelity(compiled, target)
        summary_rows.append(
            {
                "pipeline": name,
                "predicted_fidelity": round(fidelity, 4),
                "2q": compiled.two_qubit_gate_count,
                "1q": compiled.circuit.num_single_qubit_gates(),
                "depth": compiled.circuit.depth(),
            }
        )
        rows = [record.as_row() for record in compiled.pass_stats]
        sections.append(f"pipeline: {name}\n" + render_table(rows))

    sections.insert(1, "Summary\n" + render_table(summary_rows))
    verdict = autotune_pipeline(circuit, device(), instruction_set, decomposer=decomposer)
    verdict_rows = [score.as_row() for score in verdict.scores]
    sections.append(
        "Autotuner verdict (pipeline=\"auto\" candidates)\n"
        + render_table(verdict_rows)
        + f"\nauto picks: {verdict.pipeline}"
    )
    return "\n\n".join(sections)


def _cmd_apps(args: argparse.Namespace) -> str:
    from repro.applications.registry import application_registry

    rows = [
        {
            "name": spec.name,
            "paper": "yes" if spec.paper_workload else "no",
            "metric": spec.recommended_metric,
            "description": spec.description,
        }
        for spec in application_registry().values()
    ]
    return "Registered application workloads\n" + render_table(rows)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_CHECK_DEVICES = ("sycamore", "aspen-8")
"""Built-in devices ``repro check`` sweeps (see ``--device``)."""


def _check_device_and_catalogue(name: str):
    """Instantiate a built-in device plus the catalogue evaluated on it."""
    from repro.core.instruction_sets import google_catalogue, rigetti_catalogue
    from repro.devices.aspen8 import aspen8_device
    from repro.devices.sycamore import sycamore_device

    if name == "sycamore":
        return sycamore_device(), google_catalogue()
    if name == "aspen-8":
        return aspen8_device(), rigetti_catalogue()
    raise ValueError(f"unknown device {name!r}; known: {', '.join(_CHECK_DEVICES)}")


def _cmd_check(args: argparse.Namespace) -> str:
    """``repro check``: the static verification prongs (docs/analysis.md).

    ``--source`` / ``--circuits`` / ``--programs`` select prongs; none
    selected runs all three.  Exit code 1 when any finding is reported,
    so CI can gate on it; ``--json`` emits the machine-readable report.
    """
    import json

    from repro.analysis.findings import render_findings

    selected = [
        name for name in ("source", "circuits", "programs") if getattr(args, name)
    ]
    if not selected:
        selected = ["source", "circuits", "programs"]
    prongs: Dict[str, list] = {}

    if "source" in selected:
        from repro.analysis.source_lints import run_source_lints

        prongs["source"] = run_source_lints(root=args.root)

    if "circuits" in selected or "programs" in selected:
        from repro.analysis.channel_checks import (
            check_noise_program,
            check_superop_program,
        )
        from repro.analysis.circuit_checks import verify_compiled_circuit
        from repro.applications.ghz import ghz_circuit
        from repro.core.decomposer import NuOpDecomposer
        from repro.core.pipeline import compile_circuit
        from repro.simulators.noise_program import noise_program_for
        from repro.simulators.superop import superop_program_for

        circuit_findings: list = []
        program_findings: list = []
        decomposer = NuOpDecomposer()
        devices = [args.device] if args.device else list(_CHECK_DEVICES)
        for device_name in devices:
            device, catalogue = _check_device_and_catalogue(device_name)
            if args.sets:
                unknown = sorted(set(args.sets) - set(catalogue))
                if unknown:
                    raise SystemExit(
                        f"unknown instruction set(s) for {device_name}: "
                        f"{', '.join(unknown)} (known: {', '.join(catalogue)})"
                    )
                names = [name for name in catalogue if name in set(args.sets)]
            else:
                names = list(catalogue)
            for set_name in names:
                instruction_set = catalogue[set_name]
                compiled = compile_circuit(
                    ghz_circuit(args.qubits), device, instruction_set,
                    decomposer=decomposer,
                )
                where = f"{device_name}/{set_name}"
                if "circuits" in selected:
                    from repro.analysis.findings import Finding

                    circuit_findings += [
                        Finding(
                            check=finding.check,
                            where=(
                                f"{where}: {finding.where}"
                                if finding.where
                                else where
                            ),
                            message=finding.message,
                        )
                        for finding in verify_compiled_circuit(
                            compiled, device, instruction_set
                        )
                    ]
                if "programs" in selected:
                    for scale in args.scales:
                        scale_where = f"{where}/scale={scale:g}"
                        program = noise_program_for(
                            compiled, device, error_scale=scale
                        )
                        program_findings += check_noise_program(
                            program, atol=args.atol, where=scale_where
                        )
                        program_findings += check_superop_program(
                            superop_program_for(program),
                            atol=args.atol,
                            where=scale_where,
                        )
        if "circuits" in selected:
            prongs["circuits"] = circuit_findings
        if "programs" in selected:
            prongs["programs"] = program_findings

    total = sum(len(findings) for findings in prongs.values())
    if total:
        args.exit_code = 1
    if getattr(args, "as_json", False):
        return json.dumps(
            {
                "ok": total == 0,
                "findings": total,
                "prongs": {
                    name: [finding.as_dict() for finding in findings]
                    for name, findings in prongs.items()
                },
            },
            indent=2,
            sort_keys=True,
        )
    lines = []
    for name, findings in prongs.items():
        status = "clean" if not findings else f"{len(findings)} finding(s)"
        lines.append(f"[{name}] {status}")
        lines.extend(f"  {line}" for line in render_findings(findings))
    lines.append(
        "repro check: all prongs clean"
        if total == 0
        else f"repro check: {total} finding(s)"
    )
    return "\n".join(lines)


_FIGURE_COMMANDS: Dict[str, Callable[[argparse.Namespace], str]] = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "fig10f": _cmd_fig10f,
    "fig11a": _cmd_fig11a,
    "fig11b": _cmd_fig11b,
    "design": _cmd_design,
    "calibration": _cmd_calibration,
    "apps": _cmd_apps,
    "cache": _cmd_cache,
    "tabulate": _cmd_tabulate,
    "pipelines": _cmd_pipelines,
    "simulators": _cmd_simulators,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "check": _cmd_check,
}


def _positive_int(raw: str) -> int:
    """argparse type: an integer >= 1 (clean error instead of a traceback)."""
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the calibration/expressivity ISA paper.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name in ("table1", "table2", "fig11a", "apps"):
        subparsers.add_parser(name, help=f"print {name}")

    for name in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig10f", "fig11b"):
        sub = subparsers.add_parser(name, help=f"run the {name} experiment")
        sub.add_argument(
            "--paper-scale",
            action="store_true",
            help="run the full paper-scale configuration (slow) instead of the quick one",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=None,
            help="experiment-engine worker pool size (1 = serial, 0 = all cores); "
            "results are bit-identical for every value",
        )
        sub.add_argument(
            "--cache-dir",
            default=None,
            help="enable the persistent disk compilation cache in this directory "
            "(overrides the REPRO_CACHE_DIR environment variable)",
        )
        if name in ("fig9", "fig10", "fig10f"):
            from repro.compiler.autotune import AUTO_PIPELINE
            from repro.compiler.manager import available_pipelines
            from repro.simulators.backend import available_backends

            sub.add_argument(
                "--pipeline",
                default=None,
                choices=sorted(available_pipelines()) + [AUTO_PIPELINE],
                help="compiler pipeline for the study's compile stage "
                "(see `repro pipelines`; 'auto' = pick per workload by "
                "predicted compiled fidelity; default: the config's pipeline)",
            )
            sub.add_argument(
                "--backend",
                default=None,
                choices=sorted(available_backends()),
                help="simulator backend for the study's simulate stage "
                "(see `repro simulators`; default: the config's backend, "
                "'auto' = density-matrix/trajectory by qubit count)",
            )

    cache = subparsers.add_parser(
        "cache", help="inspect or clear the persistent disk compilation cache"
    )
    cache.add_argument(
        "cache_command",
        choices=("stats", "clear"),
        help="stats: counters + footprint; clear: delete every cached compilation",
    )
    cache.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: the REPRO_CACHE_DIR environment variable)",
    )

    tabulate = subparsers.add_parser(
        "tabulate",
        help="build or inspect the Weyl-chamber decomposition tables "
        "(REPRO_DECOMP_TABULATION)",
    )
    tabulate.add_argument(
        "--sets",
        nargs="+",
        default=None,
        metavar="SET",
        help="restrict to these Table II instruction sets "
        "(default: the full Google + Rigetti catalogue)",
    )
    tabulate.add_argument(
        "--family",
        default=None,
        choices=("fsim", "xy"),
        help="tabulate only this continuous two-qubit family",
    )
    tabulate.add_argument(
        "--resolution",
        type=_positive_int,
        default=None,
        help="grid points per Weyl-chamber axis "
        "(default: REPRO_DECOMP_GRID_RESOLUTION or 5)",
    )
    tabulate.add_argument(
        "--max-layers",
        type=_positive_int,
        default=4,
        help="deepest layer count tabulated per grid point (default 4, "
        "matching the decomposer default)",
    )
    tabulate.add_argument(
        "--stats",
        action="store_true",
        help="print the tabulation cache counters instead of building tables",
    )
    tabulate.add_argument(
        "--cache-dir",
        default=None,
        help="persist tables to the disk cache in this directory "
        "(overrides the REPRO_CACHE_DIR environment variable)",
    )

    pipelines = subparsers.add_parser(
        "pipelines", help="list the registered compiler pipelines and their passes"
    )
    pipelines.add_argument(
        "--stats",
        action="store_true",
        help="compile a sample workload under every pipeline and report "
        "per-pass rewrite statistics, predicted fidelities and the "
        "autotuner's verdict",
    )
    pipelines.add_argument(
        "--qubits",
        type=_positive_int,
        default=3,
        help="sample-workload width for --stats (default 3)",
    )

    subparsers.add_parser(
        "simulators", help="list the registered simulator backends"
    )

    from repro.service.protocol import DEFAULT_HOST, DEFAULT_PORT

    serve = subparsers.add_parser(
        "serve",
        help="run the long-lived study service (see docs/service.md)",
    )
    serve.add_argument("--host", default=DEFAULT_HOST, help=f"bind address (default {DEFAULT_HOST})")
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"bind port; 0 picks an ephemeral port (default {DEFAULT_PORT})",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        help="persistent disk cache directory; shared across services it "
        "doubles as the artifact store for --shard splits "
        "(default: the REPRO_CACHE_DIR environment variable)",
    )
    serve.add_argument(
        "--exec-workers",
        type=_positive_int,
        default=1,
        help="backend-invocation worker threads (default 1: the win is "
        "dedup and cache residency, not parallelism)",
    )
    serve.add_argument(
        "--shard",
        default=None,
        help="simulate only the k/N slice of the simulation key space "
        "(e.g. 1/2); out-of-shard cache misses are deferred, not computed",
    )
    serve.add_argument(
        "--batch",
        type=int,
        default=1,
        help="batched replay of same-structure cache misses: 1 disables "
        "(default), 0 batches up to the REPRO_SIM_BATCH_MAX_BYTES cap, "
        "N>=2 caps groups at N jobs (see docs/simulators.md)",
    )
    serve.add_argument(
        "--request-deadline",
        type=float,
        default=None,
        help="per-request wall-clock budget in seconds; past it, remaining "
        "jobs report source:'deadline' and the study closes complete:false "
        "(default: REPRO_RETRY_REQUEST_DEADLINE_MS, unset = unbounded)",
    )

    submit = subparsers.add_parser(
        "submit",
        help="submit a study to a running `repro serve` daemon (NDJSON out)",
    )
    submit.add_argument("--host", default=DEFAULT_HOST)
    submit.add_argument("--port", type=int, default=DEFAULT_PORT)
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="socket timeout in seconds (default: REPRO_CLIENT_TIMEOUT, 300)",
    )
    submit.add_argument("--stats", action="store_true", help="print the daemon's /v1/stats snapshot instead of submitting")
    submit.add_argument("--spec-json", default=None, help="full study spec as a JSON object (overrides the flags below)")
    submit.add_argument("--app", default=None, help="application registry name (see `repro apps`)")
    submit.add_argument("--qubits", type=_positive_int, default=3)
    submit.add_argument("--circuits", type=_positive_int, default=1)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--metric", default="hop", choices=("hop", "xed", "xeb", "tvd"))
    submit.add_argument("--catalogue", default="google", choices=("google", "rigetti", "table2"))
    submit.add_argument("--sets", nargs="+", default=None, help="instruction-set subset (default: whole catalogue)")
    submit.add_argument("--topology", default="line", choices=("line", "ring", "grid"))
    submit.add_argument("--pipeline", default="default")
    submit.add_argument("--shots", type=_positive_int, default=3000)
    submit.add_argument("--backend", default="auto")
    submit.add_argument("--error-scale", type=float, default=1.0)
    submit.add_argument(
        "--error-scales",
        nargs="+",
        type=float,
        default=None,
        help="error-scale sweep: each scale != 1 adds a '<set>-<scale>x' "
        "alias of every selected set (the fig10 FullfSim-2x pattern); "
        "sweep jobs share structure, so a --batch'ed daemon vectorises them",
    )
    submit.add_argument("--table", action="store_true", help="also print the merged study table after the NDJSON stream")

    design = subparsers.add_parser("design", help="greedy instruction-set design")
    design.add_argument("--grid", type=int, default=4, help="fSim candidate grid points per axis")
    design.add_argument("--unitaries", type=int, default=3, help="unitaries per application")
    design.add_argument("--max-types", type=int, default=6, help="largest set size to design")
    design.add_argument("--max-layers", type=int, default=4, help="NuOp layer budget")
    design.add_argument("--seed", type=int, default=0)
    design.add_argument(
        "--applications",
        nargs="+",
        default=["qv", "qaoa", "swap"],
        help="workloads to weight in the design (qv, qaoa, qft, fh, swap)",
    )

    check = subparsers.add_parser(
        "check",
        help="static verification: source lints, IR invariants, CPTP programs "
        "(see docs/analysis.md)",
    )
    check.add_argument(
        "--source", action="store_true", help="run only the source lints"
    )
    check.add_argument(
        "--circuits", action="store_true", help="run only the IR invariant checkers"
    )
    check.add_argument(
        "--programs", action="store_true", help="run only the CPTP channel checkers"
    )
    check.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit the machine-readable findings report",
    )
    check.add_argument(
        "--root",
        default=None,
        help="source tree for the lints (default: the installed repro package)",
    )
    check.add_argument(
        "--device",
        choices=_CHECK_DEVICES,
        default=None,
        help="restrict the circuit/program sweeps to one built-in device",
    )
    check.add_argument(
        "--sets",
        nargs="+",
        default=None,
        help="restrict the sweeps to these instruction sets (default: the "
        "device's full Table II catalogue)",
    )
    check.add_argument(
        "--qubits",
        type=_positive_int,
        default=2,
        help="probe-circuit width for the sweeps (default 2)",
    )
    check.add_argument(
        "--scales",
        nargs="+",
        type=float,
        default=(1.0, 2.0, 3.0),
        help="error scales the program prong verifies (default: 1 2 3)",
    )
    check.add_argument(
        "--atol",
        type=float,
        default=1e-9,
        help="absolute tolerance of the CPTP comparisons (default 1e-9)",
    )

    calibration = subparsers.add_parser("calibration", help="drift + recalibration policy comparison")
    calibration.add_argument("--gate-types", type=int, default=4)
    calibration.add_argument("--edges", type=int, default=10)
    calibration.add_argument("--horizon", type=float, default=7 * 24.0, help="hours simulated")
    calibration.add_argument("--period", type=float, default=24.0, help="periodic policy period (hours)")
    calibration.add_argument("--threshold", type=float, default=2.0, help="threshold policy degradation")
    calibration.add_argument("--seed", type=int, default=17)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command != "cache" and getattr(args, "cache_dir", None):
        from repro.caching.disk import configure_disk_cache

        configure_disk_cache(args.cache_dir)
    handler = _FIGURE_COMMANDS[args.command]
    print(handler(args))
    return int(getattr(args, "exit_code", 0))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
