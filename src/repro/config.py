"""Shared configuration helpers: one policy for environment knobs.

Every tunable cache bound in the library is an environment variable
parsed the same way, with the same failure policy:

* **Unset/empty** means "use the documented default" -- the variables are
  opt-in overrides, never required configuration.
* **Invalid** values -- non-numeric, zero or negative -- fall back to the
  default **with a :class:`RuntimeWarning`** naming the variable and the
  offending value.  Silently clamping (the pre-PR-3 behaviour of
  ``REPRO_COMPILE_CACHE_SIZE``) turned a typo into a single-entry cache
  and an unexplained slowdown; warn-and-default makes the typo visible
  without breaking the run.
* Whether a variable is read **once** (at module import / first use) or
  **on every call** is a per-knob contract documented at the call site;
  this module only owns the parsing.  See the "Environment variables"
  section of ``docs/service.md`` for the full catalogue and each knob's
  read policy.

Before this module the parse-warn-default dance was duplicated (with
drifting messages and fallbacks) across ``repro.core.pipeline``,
``repro.simulators.noise_program``, ``repro.caching.disk`` and the
autotuner; they all route through :func:`positive_int_env` now.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Sequence, Tuple


def positive_int_env(
    name: str,
    default: Optional[int],
    *,
    invalid_note: Optional[str] = None,
    stacklevel: int = 3,
) -> Optional[int]:
    """Parse environment variable ``name`` as a positive (>= 1) integer.

    Returns ``default`` when the variable is unset or empty.  Non-numeric,
    zero or negative values emit a :class:`RuntimeWarning` (mentioning the
    variable name, so tests can match on it) and also return ``default``.

    Parameters
    ----------
    name:
        Environment variable to read.
    default:
        Value used for unset *and* invalid inputs.  ``None`` is a valid
        default for knobs whose absence means "unbounded"/"disabled"
        (e.g. ``REPRO_CACHE_MAX_BYTES``).
    invalid_note:
        Tail of the warning message describing the fallback; defaults to
        ``"using the default of {default}"``.
    stacklevel:
        Passed to :func:`warnings.warn`; the default of 3 attributes the
        warning to the caller of the function that consulted the
        environment (typically the public cache API), not this helper.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value < 1:
        note = invalid_note or f"using the default of {default}"
        warnings.warn(
            f"ignoring invalid {name}={raw!r} (need a positive integer); {note}",
            RuntimeWarning,
            stacklevel=stacklevel,
        )
        return default
    return value


def str_env(name: str, default: str = "", *, lower: bool = False) -> str:
    """Read environment variable ``name`` as a stripped string.

    Returns ``default`` (verbatim, never lower-cased) when the variable is
    unset or blank.  ``lower=True`` lower-cases a set value -- the policy
    of every name-valued knob (``REPRO_SIM_KERNEL``,
    ``REPRO_ARRAY_BACKEND``), whose registries key on lower-case names.

    There is no "invalid" shape for a free-form string, so unlike
    :func:`positive_int_env` this helper never warns; *semantic*
    validation (unknown kernel/backend names, and any warn-once
    bookkeeping a long-lived daemon needs) stays at the call site, which
    knows the registry and the failure policy.  The env-policy lint
    (:mod:`repro.analysis.source_lints`) requires every ``os.environ``
    read outside this module to route through these helpers.
    """
    value = os.environ.get(name, "").strip()
    if not value:
        return default
    return value.lower() if lower else value


def list_env(
    name: str, default: Sequence[str] = (), *, separator: str = ","
) -> Tuple[str, ...]:
    """Read environment variable ``name`` as a separated list of tokens.

    Returns ``tuple(default)`` when the variable is unset or blank.
    Tokens are stripped and empties dropped, so ``"a, b,"`` parses as
    ``("a", "b")`` -- and a value of only separators/whitespace counts as
    blank (the default applies) rather than selecting an empty list.
    Token *validation* (unknown pipeline names, ...) stays at the call
    site, same contract as :func:`str_env`.
    """
    raw = str_env(name)
    tokens = tuple(token.strip() for token in raw.split(separator) if token.strip())
    return tokens if tokens else tuple(default)


def duration_env(
    name: str,
    default_ms: Optional[int],
    *,
    stacklevel: int = 4,
) -> Optional[float]:
    """Parse environment variable ``name`` (milliseconds) into seconds.

    All duration knobs (``REPRO_RETRY_BASE_MS``, ``REPRO_RETRY_MAX_MS``,
    ``REPRO_RETRY_DEADLINE_MS``, ...) are expressed as positive integer
    millisecond counts in the environment -- the :func:`positive_int_env`
    policy verbatim, including the warn-and-default handling of invalid
    values -- but consumed as float seconds by ``time``-based code.  A
    ``default_ms`` of ``None`` means "no duration" (e.g. no deadline) and
    is returned as ``None``.
    """
    value = positive_int_env(name, default_ms, stacklevel=stacklevel)
    if value is None:
        return None
    return value / 1000.0


def flag_env(name: str, default: bool = False, *, stacklevel: int = 3) -> bool:
    """Parse environment variable ``name`` as a boolean switch.

    Accepts ``1/true/yes/on`` and ``0/false/no/off`` (case-insensitive);
    unset/blank returns ``default``.  Anything else emits a
    :class:`RuntimeWarning` naming the variable (the
    :func:`positive_int_env` policy) and returns ``default`` -- a typo'd
    ``REPRO_VERIFY_PASSES=ture`` must not silently disable verification.
    """
    raw = str_env(name, lower=True)
    if not raw:
        return default
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("0", "false", "no", "off"):
        return False
    warnings.warn(
        f"ignoring invalid {name}={raw!r} (need a boolean: 1/0, true/false, "
        f"yes/no, on/off); using the default of {default}",
        RuntimeWarning,
        stacklevel=stacklevel,
    )
    return default
