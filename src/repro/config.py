"""Shared configuration helpers: one policy for environment knobs.

Every tunable cache bound in the library is an environment variable
parsed the same way, with the same failure policy:

* **Unset/empty** means "use the documented default" -- the variables are
  opt-in overrides, never required configuration.
* **Invalid** values -- non-numeric, zero or negative -- fall back to the
  default **with a :class:`RuntimeWarning`** naming the variable and the
  offending value.  Silently clamping (the pre-PR-3 behaviour of
  ``REPRO_COMPILE_CACHE_SIZE``) turned a typo into a single-entry cache
  and an unexplained slowdown; warn-and-default makes the typo visible
  without breaking the run.
* Whether a variable is read **once** (at module import / first use) or
  **on every call** is a per-knob contract documented at the call site;
  this module only owns the parsing.  See the "Environment variables"
  section of ``docs/service.md`` for the full catalogue and each knob's
  read policy.

Before this module the parse-warn-default dance was duplicated (with
drifting messages and fallbacks) across ``repro.core.pipeline``,
``repro.simulators.noise_program``, ``repro.caching.disk`` and the
autotuner; they all route through :func:`positive_int_env` now.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional


def positive_int_env(
    name: str,
    default: Optional[int],
    *,
    invalid_note: Optional[str] = None,
    stacklevel: int = 3,
) -> Optional[int]:
    """Parse environment variable ``name`` as a positive (>= 1) integer.

    Returns ``default`` when the variable is unset or empty.  Non-numeric,
    zero or negative values emit a :class:`RuntimeWarning` (mentioning the
    variable name, so tests can match on it) and also return ``default``.

    Parameters
    ----------
    name:
        Environment variable to read.
    default:
        Value used for unset *and* invalid inputs.  ``None`` is a valid
        default for knobs whose absence means "unbounded"/"disabled"
        (e.g. ``REPRO_CACHE_MAX_BYTES``).
    invalid_note:
        Tail of the warning message describing the fallback; defaults to
        ``"using the default of {default}"``.
    stacklevel:
        Passed to :func:`warnings.warn`; the default of 3 attributes the
        warning to the caller of the function that consulted the
        environment (typically the public cache API), not this helper.
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        value = 0
    if value < 1:
        note = invalid_note or f"using the default of {default}"
        warnings.warn(
            f"ignoring invalid {name}={raw!r} (need a positive integer); {note}",
            RuntimeWarning,
            stacklevel=stacklevel,
        )
        return default
    return value
