"""Quantum Fourier Transform benchmark circuits.

An ``n``-qubit QFT consists of ``n`` Hadamards and ``n(n-1)/2`` controlled
phase rotations ``CZ(pi/2^t)`` (Section VI).  For the success-rate metric
the paper needs an execution with a known correct outcome; following the
standard architecture-evaluation recipe, :func:`qft_benchmark_circuit`
prepares the Fourier state of a target integer and applies the QFT so the
ideal output is a single computational basis state.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def qft_circuit(num_qubits: int, include_final_swaps: bool = False) -> QuantumCircuit:
    """Plain QFT circuit (without the optional bit-reversal SWAP network)."""
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for offset, control in enumerate(range(target + 1, num_qubits), start=1):
            circuit.cphase(np.pi / (2**offset), control, target)
    if include_final_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    return circuit


def fourier_state_preparation(num_qubits: int, value: int) -> QuantumCircuit:
    """Prepare the state whose image under :func:`qft_circuit` is ``|value>``.

    The required state is ``QFT^dagger |value>``, which is always a product
    state of the form ``(|0> + exp(i phi_q) |1>)/sqrt(2)`` on each qubit.
    The per-qubit phases are extracted from a (cheap) statevector
    simulation of the inverse QFT on the basis state, which keeps the
    construction independent of bit-ordering conventions; the preparation
    itself uses only Hadamards and RZ rotations, so the benchmark's
    two-qubit cost comes entirely from the QFT.
    """
    if not 0 <= value < 2**num_qubits:
        raise ValueError("value outside the register range")
    if num_qubits > 20:
        raise ValueError("fourier_state_preparation supports up to 20 qubits")
    from repro.simulators.statevector import simulate_statevector, zero_state

    basis_state = zero_state(num_qubits)
    basis_state[0] = 0.0
    basis_state[value] = 1.0
    target_state = simulate_statevector(qft_circuit(num_qubits).inverse(), basis_state)
    tensor = target_state.reshape((2,) * num_qubits)
    reference = tensor[(0,) * num_qubits]
    circuit = QuantumCircuit(num_qubits, name=f"fourier_state_{value}")
    for qubit in range(num_qubits):
        index = [0] * num_qubits
        index[qubit] = 1
        amplitude = tensor[tuple(index)]
        phase = float(np.angle(amplitude / reference))
        circuit.h(qubit)
        circuit.rz(phase, qubit)
    return circuit


def qft_benchmark_circuit(num_qubits: int, value: Optional[int] = None) -> QuantumCircuit:
    """QFT benchmark whose ideal output is the single basis state ``|value>``.

    The circuit prepares the Fourier state of ``value`` (Hadamards and RZ
    rotations only) and applies the QFT; ideally the measurement returns
    ``value`` with probability one, so the success rate is simply
    ``P(value)``.
    """
    if value is None:
        value = (2**num_qubits) // 3 or 1
    preparation = fourier_state_preparation(num_qubits, value)
    circuit = preparation.compose(qft_circuit(num_qubits))
    circuit.name = f"qft_benchmark_{num_qubits}_{value}"
    return circuit


def qft_target_value(num_qubits: int) -> int:
    """Default target integer used by :func:`qft_benchmark_circuit`."""
    return (2**num_qubits) // 3 or 1


def qft_unitaries(num_qubits: int = 6) -> List[np.ndarray]:
    """The distinct controlled-phase unitaries appearing in an ``n``-qubit QFT (Figures 6/8)."""
    from repro.gates.parametric import cphase

    return [cphase(np.pi / (2**t)) for t in range(1, num_qubits)]
