"""1D Fermi-Hubbard model Trotter circuits.

The paper's quantum-simulation workload: one Trotter step of the 1D
Fermi-Hubbard model after a Jordan-Wigner transformation.  Each ``n``-qubit
circuit contains on the order of ``2n`` ZZ (on-site interaction) terms and
``4n`` excitation-preserving ``(XX + YY)/2`` hopping terms (Section VI),
all kept as two-qubit operations for NuOp to decompose.  Hopping terms are
locally equivalent to XY rotations, which is why iSWAP-like gates are so
expressive for this workload (Figure 8d).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def fermi_hubbard_circuit(
    num_qubits: int,
    hopping: float = 1.0,
    interaction: float = 2.0,
    timestep: float = 0.5,
    trotter_steps: int = 1,
    initial_x_layer: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> QuantumCircuit:
    """One (or more) Trotter steps of the 1D Fermi-Hubbard model.

    Parameters
    ----------
    num_qubits:
        Chain length (the paper uses 10 and 20 qubits).
    hopping, interaction, timestep:
        Model parameters ``t``, ``U`` and Trotter step ``dt``.
    trotter_steps:
        Number of Trotter steps (the paper uses one).
    initial_x_layer:
        Prepare a non-trivial initial product state with X gates on
        alternating qubits (a half-filled-band proxy) so the output
        distribution is not concentrated on ``|0...0>``.
    """
    circuit = QuantumCircuit(num_qubits, name=f"fh_{num_qubits}")
    if initial_x_layer:
        for qubit in range(0, num_qubits, 2):
            circuit.x(qubit)

    hop_angle = hopping * timestep
    zz_angle = interaction * timestep / 4.0
    bonds_even = [(i, i + 1) for i in range(0, num_qubits - 1, 2)]
    bonds_odd = [(i, i + 1) for i in range(1, num_qubits - 1, 2)]

    for _ in range(trotter_steps):
        # Four rounds of hopping on even/odd bonds (~4n hopping terms total,
        # matching the "~4n (XX+YY)/2 interactions" of Section VI).
        for _ in range(4):
            for a, b in bonds_even:
                circuit.append_operation(_hopping_operation(hop_angle, a, b))
            for a, b in bonds_odd:
                circuit.append_operation(_hopping_operation(hop_angle, a, b))
        # Two rounds of on-site ZZ interactions (~2n terms total).
        for _ in range(2):
            for a, b in bonds_even + bonds_odd:
                circuit.rzz(zz_angle, a, b)
    return circuit


def _hopping_operation(angle: float, a: int, b: int):
    from repro.circuits.circuit import Operation
    from repro.circuits.gate import xx_plus_yy_gate

    return Operation(xx_plus_yy_gate(angle), (a, b))


def fh_suite(
    num_qubits: int,
    num_circuits: int = 1,
    seed: int = 0,
    trotter_steps: int = 1,
) -> List[QuantumCircuit]:
    """Ensemble of FH circuits with slightly varied model parameters."""
    rng = np.random.default_rng(seed)
    circuits = []
    for _ in range(num_circuits):
        circuits.append(
            fermi_hubbard_circuit(
                num_qubits,
                hopping=float(rng.uniform(0.8, 1.2)),
                interaction=float(rng.uniform(1.5, 2.5)),
                timestep=float(rng.uniform(0.4, 0.6)),
                trotter_steps=trotter_steps,
            )
        )
    return circuits


def fh_unitaries(count: int, seed: int = 0) -> List[np.ndarray]:
    """Raw FH two-qubit unitaries (hopping and interaction terms) for Figures 6/8."""
    from repro.gates.parametric import rxx_plus_ryy, rzz

    rng = np.random.default_rng(seed)
    unitaries = []
    for index in range(count):
        angle = float(rng.uniform(0.05, 0.6))
        if index % 3 == 2:
            unitaries.append(rzz(angle))
        else:
            unitaries.append(rxx_plus_ryy(angle))
    return unitaries
