"""Application benchmark circuits.

QV, QAOA, Fermi-Hubbard and QFT are the four workloads of the paper's
evaluation (Section VI); each generator keeps application-level two-qubit
operations as single circuit operations so NuOp can decompose them for the
instruction set under study.  Additional workloads (GHZ, cluster states,
Bernstein-Vazirani, VQE ansatze, TFIM, ripple-carry adders) extend the
studies beyond the paper; see :mod:`repro.applications.registry`.
"""

from typing import Callable, Dict, List

import numpy as np

from repro.applications.adder import adder_suite, ripple_carry_adder_circuit
from repro.applications.bernstein_vazirani import bernstein_vazirani_circuit, bv_suite
from repro.applications.ghz import ghz_circuit, ghz_suite, linear_cluster_circuit
from repro.applications.registry import application_registry, build_suite, paper_applications
from repro.applications.vqe import (
    excitation_preserving_ansatz,
    hardware_efficient_ansatz,
    tfim_trotter_circuit,
    vqe_suite,
)
from repro.applications.qv import qv_circuit, qv_suite, random_su4_unitaries
from repro.applications.qaoa import (
    qaoa_maxcut_circuit,
    qaoa_suite,
    random_maxcut_edges,
    random_zz_unitaries,
)
from repro.applications.fermi_hubbard import (
    fermi_hubbard_circuit,
    fh_suite,
    fh_unitaries,
)
from repro.applications.qft import (
    qft_circuit,
    qft_benchmark_circuit,
    qft_target_value,
    fourier_state_preparation,
    qft_unitaries,
)


def unitary_ensembles(
    num_per_application: int = 20, seed: int = 0
) -> Dict[str, List[np.ndarray]]:
    """Two-qubit application unitary ensembles keyed by application name.

    Used by the Figure 6 and Figure 8 experiments, which characterise
    decompositions of raw application unitaries (rather than full
    circuits).  The SWAP unitary is included because routing makes it a
    first-class workload (Figure 8e).
    """
    from repro.gates.standard import SWAP

    return {
        "qv": random_su4_unitaries(num_per_application, seed=seed),
        "qaoa": random_zz_unitaries(num_per_application, seed=seed + 1),
        "qft": qft_unitaries(num_qubits=min(num_per_application + 1, 10)),
        "fh": fh_unitaries(num_per_application, seed=seed + 2),
        "swap": [SWAP.copy()],
    }


__all__ = [
    "qv_circuit",
    "qv_suite",
    "random_su4_unitaries",
    "qaoa_maxcut_circuit",
    "qaoa_suite",
    "random_maxcut_edges",
    "random_zz_unitaries",
    "fermi_hubbard_circuit",
    "fh_suite",
    "fh_unitaries",
    "qft_circuit",
    "qft_benchmark_circuit",
    "qft_target_value",
    "fourier_state_preparation",
    "qft_unitaries",
    "unitary_ensembles",
    "ghz_circuit",
    "ghz_suite",
    "linear_cluster_circuit",
    "bernstein_vazirani_circuit",
    "bv_suite",
    "hardware_efficient_ansatz",
    "excitation_preserving_ansatz",
    "tfim_trotter_circuit",
    "vqe_suite",
    "ripple_carry_adder_circuit",
    "adder_suite",
    "application_registry",
    "build_suite",
    "paper_applications",
]
