"""Application registry: a single entry point for every workload generator.

The paper's evaluation uses four applications (QV, QAOA, FH, QFT); the
library ships several more (GHZ, cluster, Bernstein-Vazirani, VQE ansatze,
TFIM, ripple-carry adder) so instruction-set studies can be extended to new
workload classes without touching the experiment drivers.  The registry
maps an application name to a uniform ``(num_qubits, num_circuits, seed)``
suite builder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.applications.adder import adder_suite
from repro.applications.bernstein_vazirani import bv_suite
from repro.applications.fermi_hubbard import fh_suite
from repro.applications.ghz import ghz_suite, linear_cluster_circuit
from repro.applications.qaoa import qaoa_suite
from repro.applications.qft import qft_benchmark_circuit
from repro.applications.qv import qv_suite
from repro.applications.vqe import tfim_trotter_circuit, vqe_suite
from repro.circuits.circuit import QuantumCircuit

SuiteBuilder = Callable[[int, int, int], List[QuantumCircuit]]
"""Signature: ``builder(num_qubits, num_circuits, seed) -> circuits``."""


@dataclass(frozen=True)
class ApplicationSpec:
    """Metadata describing one registered workload.

    Attributes
    ----------
    name:
        Registry key.
    build_suite:
        Suite builder with the uniform signature.
    recommended_metric:
        Name of the reliability metric the paper (or common practice) uses
        for this workload: ``"HOP"``, ``"XED"``, ``"XEB"`` or
        ``"success_rate"``.
    paper_workload:
        True for the four workloads evaluated in the paper.
    description:
        One-line human-readable summary.
    """

    name: str
    build_suite: SuiteBuilder
    recommended_metric: str
    paper_workload: bool
    description: str


def _qft_suite(num_qubits: int, num_circuits: int, seed: int) -> List[QuantumCircuit]:
    return [qft_benchmark_circuit(num_qubits) for _ in range(max(num_circuits, 1))]


def _cluster_suite(num_qubits: int, num_circuits: int, seed: int) -> List[QuantumCircuit]:
    return [linear_cluster_circuit(num_qubits) for _ in range(max(num_circuits, 1))]


def _tfim_suite(num_qubits: int, num_circuits: int, seed: int) -> List[QuantumCircuit]:
    return [tfim_trotter_circuit(num_qubits) for _ in range(max(num_circuits, 1))]


def _adder_suite(num_qubits: int, num_circuits: int, seed: int) -> List[QuantumCircuit]:
    num_bits = max((num_qubits - 2) // 2, 1)
    return adder_suite(num_bits, num_circuits, seed)


def _bv_suite(num_qubits: int, num_circuits: int, seed: int) -> List[QuantumCircuit]:
    return bv_suite(max(num_qubits - 1, 1), num_circuits, seed)


def _vqe_he_suite(num_qubits: int, num_circuits: int, seed: int) -> List[QuantumCircuit]:
    return vqe_suite(num_qubits, num_circuits, seed, ansatz="hardware_efficient")


def _vqe_ep_suite(num_qubits: int, num_circuits: int, seed: int) -> List[QuantumCircuit]:
    return vqe_suite(num_qubits, num_circuits, seed, ansatz="excitation_preserving")


def application_registry() -> Dict[str, ApplicationSpec]:
    """All registered workloads, keyed by name."""
    specs = [
        ApplicationSpec(
            "qv", lambda n, c, s: qv_suite(n, c, seed=s), "HOP", True,
            "Quantum Volume: square random-SU(4) circuits (Figure 9a/10a)."),
        ApplicationSpec(
            "qaoa", lambda n, c, s: qaoa_suite(n, c, seed=s), "XED", True,
            "Single-layer QAOA MaxCut with random graphs (Figure 9b/10b)."),
        ApplicationSpec(
            "fh", lambda n, c, s: fh_suite(n, c, seed=s), "XEB", True,
            "1D Fermi-Hubbard Trotter step (Figure 10d/10f)."),
        ApplicationSpec(
            "qft", _qft_suite, "success_rate", True,
            "Quantum Fourier Transform benchmark (Figure 9c/10c)."),
        ApplicationSpec(
            "ghz", lambda n, c, s: ghz_suite(n, c, seed=s), "success_rate", False,
            "GHZ state preparation (CNOT chain / fan-out ladder)."),
        ApplicationSpec(
            "cluster", _cluster_suite, "XEB", False,
            "1D cluster-state preparation (CZ-native workload)."),
        ApplicationSpec(
            "bv", _bv_suite, "success_rate", False,
            "Bernstein-Vazirani with random secrets."),
        ApplicationSpec(
            "vqe_he", _vqe_he_suite, "XEB", False,
            "Hardware-efficient VQE ansatz (Ry/Rz + CZ entanglers)."),
        ApplicationSpec(
            "vqe_ep", _vqe_ep_suite, "XEB", False,
            "Excitation-preserving VQE ansatz ((XX+YY)/2 blocks)."),
        ApplicationSpec(
            "tfim", _tfim_suite, "XEB", False,
            "Trotterised transverse-field Ising evolution."),
        ApplicationSpec(
            "adder", _adder_suite, "success_rate", False,
            "Cuccaro ripple-carry adder on random inputs."),
    ]
    return {spec.name: spec for spec in specs}


def paper_applications() -> List[str]:
    """Names of the four workloads evaluated in the paper."""
    return [name for name, spec in application_registry().items() if spec.paper_workload]


def build_suite(
    application: str, num_qubits: int, num_circuits: int = 1, seed: int = 0
) -> List[QuantumCircuit]:
    """Build a circuit ensemble for any registered application."""
    registry = application_registry()
    if application not in registry:
        known = ", ".join(sorted(registry))
        raise ValueError(f"unknown application {application!r}; known: {known}")
    return registry[application].build_suite(num_qubits, num_circuits, seed)
