"""Quantum Volume (QV) benchmark circuits.

QV circuits (Cross et al. 2019) are the paper's random-circuit workload:
an ``n``-qubit QV circuit has ``n`` layers, each applying Haar-random
SU(4) unitaries to a random pairing of the qubits.  Every SU(4) block is
kept as a single two-qubit operation so NuOp can decompose it directly
(Figure 2a of the paper shows one such block).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import unitary_gate
from repro.gates.unitary import random_su4


def qv_circuit(
    num_qubits: int,
    depth: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> QuantumCircuit:
    """Generate one random Quantum Volume circuit.

    Parameters
    ----------
    num_qubits:
        Width of the circuit (the paper evaluates 3-6 qubits).
    depth:
        Number of layers; defaults to ``num_qubits`` (square circuits, the
        standard QV definition).
    rng:
        Random generator or seed.
    """
    rng = np.random.default_rng(rng)
    depth = num_qubits if depth is None else int(depth)
    circuit = QuantumCircuit(num_qubits, name=f"qv_{num_qubits}")
    for _ in range(depth):
        permutation = rng.permutation(num_qubits)
        for index in range(0, num_qubits - 1, 2):
            a = int(permutation[index])
            b = int(permutation[index + 1])
            circuit.append(unitary_gate(random_su4(rng), name="su4"), [a, b])
    return circuit


def qv_suite(
    num_qubits: int,
    num_circuits: int,
    seed: int = 0,
    depth: Optional[int] = None,
) -> List[QuantumCircuit]:
    """Generate the ensemble of random QV circuits used for HOP estimation.

    The paper uses 100 random circuits per width; tests and the benchmark
    harness use smaller ensembles by default and expose the count.
    """
    rng = np.random.default_rng(seed)
    return [qv_circuit(num_qubits, depth=depth, rng=rng) for _ in range(num_circuits)]


def random_su4_unitaries(count: int, seed: int = 0) -> List[np.ndarray]:
    """Raw SU(4) matrices, used by the decomposition-only experiments (Figures 6 and 8)."""
    rng = np.random.default_rng(seed)
    return [random_su4(rng) for _ in range(count)]
