"""Variational ansatz circuits (hardware-efficient and excitation-preserving).

The paper motivates excitation-preserving gate families (XY / fSim) with
quantum-chemistry workloads; these generators provide the corresponding
variational ansatz circuits so the instruction-set studies can be extended
beyond the four headline benchmarks:

* :func:`hardware_efficient_ansatz` -- the standard Ry/Rz + entangler
  layers ansatz (Kandala et al.),
* :func:`excitation_preserving_ansatz` -- alternating layers of
  ``XY(theta)``-style hopping blocks, the natural match for the
  fSim/XY instruction sets,
* :func:`tfim_trotter_circuit` -- Trotterised transverse-field Ising
  evolution, a ZZ-dominated quantum-simulation workload.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import Operation, QuantumCircuit
from repro.circuits.gate import xx_plus_yy_gate


def _entangling_pairs(num_qubits: int, pattern: str) -> List[tuple]:
    if pattern == "linear":
        return [(q, q + 1) for q in range(num_qubits - 1)]
    if pattern == "circular":
        pairs = [(q, q + 1) for q in range(num_qubits - 1)]
        if num_qubits > 2:
            pairs.append((num_qubits - 1, 0))
        return pairs
    if pattern == "brickwork":
        even = [(q, q + 1) for q in range(0, num_qubits - 1, 2)]
        odd = [(q, q + 1) for q in range(1, num_qubits - 1, 2)]
        return even + odd
    raise ValueError(f"unknown entanglement pattern {pattern!r}")


def hardware_efficient_ansatz(
    num_qubits: int,
    num_layers: int = 2,
    entanglement: str = "linear",
    parameters: Optional[Sequence[float]] = None,
    rng: Optional[np.random.Generator] = None,
) -> QuantumCircuit:
    """Hardware-efficient VQE ansatz: Ry/Rz rotations and CZ entanglers.

    Parameters
    ----------
    num_qubits:
        Circuit width.
    num_layers:
        Number of rotation + entangling layers.
    entanglement:
        ``"linear"``, ``"circular"`` or ``"brickwork"`` entangler placement.
    parameters:
        Flat list of rotation angles (two per qubit per layer, plus a final
        rotation layer).  Random angles are drawn when omitted.
    """
    if num_qubits < 2:
        raise ValueError("the ansatz needs at least two qubits")
    rng = np.random.default_rng(rng)
    needed = 2 * num_qubits * (num_layers + 1)
    if parameters is None:
        parameters = rng.uniform(0.0, 2.0 * np.pi, size=needed)
    parameters = np.asarray(list(parameters), dtype=float)
    if parameters.size != needed:
        raise ValueError(f"expected {needed} parameters, got {parameters.size}")

    circuit = QuantumCircuit(num_qubits, name=f"vqe_he_{num_qubits}x{num_layers}")
    pairs = _entangling_pairs(num_qubits, entanglement)
    index = 0
    for layer in range(num_layers + 1):
        for qubit in range(num_qubits):
            circuit.ry(float(parameters[index]), qubit)
            circuit.rz(float(parameters[index + 1]), qubit)
            index += 2
        if layer < num_layers:
            for a, b in pairs:
                circuit.cz(a, b)
    return circuit


def excitation_preserving_ansatz(
    num_qubits: int,
    num_layers: int = 2,
    parameters: Optional[Sequence[float]] = None,
    rng: Optional[np.random.Generator] = None,
) -> QuantumCircuit:
    """Excitation-preserving ansatz built from ``(XX + YY)/2`` hopping blocks.

    Every two-qubit block conserves excitation number, exactly the
    structure the XY and fSim gate families implement natively; with a
    single fSim-family gate type these blocks decompose into one or two
    hardware gates (Figure 8d), versus two to three CZ gates.
    """
    if num_qubits < 2:
        raise ValueError("the ansatz needs at least two qubits")
    rng = np.random.default_rng(rng)
    pairs = _entangling_pairs(num_qubits, "brickwork")
    needed = num_layers * (num_qubits + len(pairs))
    if parameters is None:
        parameters = rng.uniform(0.0, np.pi, size=needed)
    parameters = np.asarray(list(parameters), dtype=float)
    if parameters.size != needed:
        raise ValueError(f"expected {needed} parameters, got {parameters.size}")

    circuit = QuantumCircuit(num_qubits, name=f"vqe_ep_{num_qubits}x{num_layers}")
    # Half filling so the conserved sector is non-trivial.
    for qubit in range(0, num_qubits, 2):
        circuit.x(qubit)
    index = 0
    for _ in range(num_layers):
        for qubit in range(num_qubits):
            circuit.rz(float(parameters[index]), qubit)
            index += 1
        for a, b in pairs:
            circuit.append_operation(
                Operation(xx_plus_yy_gate(float(parameters[index])), (a, b))
            )
            index += 1
    return circuit


def tfim_trotter_circuit(
    num_qubits: int,
    field: float = 1.0,
    coupling: float = 1.0,
    timestep: float = 0.3,
    trotter_steps: int = 2,
) -> QuantumCircuit:
    """Trotterised transverse-field Ising model evolution.

    Alternates ``exp(-i J dt ZZ)`` layers on nearest-neighbour bonds with
    ``Rx(2 h dt)`` field rotations -- the same structure as a multi-layer
    QAOA circuit, but with physically meaningful fixed angles.
    """
    if num_qubits < 2:
        raise ValueError("the chain needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"tfim_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    zz_angle = coupling * timestep
    x_angle = 2.0 * field * timestep
    for _ in range(trotter_steps):
        for a in range(0, num_qubits - 1, 2):
            circuit.rzz(zz_angle, a, a + 1)
        for a in range(1, num_qubits - 1, 2):
            circuit.rzz(zz_angle, a, a + 1)
        for qubit in range(num_qubits):
            circuit.rx(x_angle, qubit)
    return circuit


def vqe_suite(
    num_qubits: int,
    num_circuits: int = 1,
    seed: int = 0,
    ansatz: str = "hardware_efficient",
) -> List[QuantumCircuit]:
    """Ensemble of randomly parameterised ansatz circuits."""
    rng = np.random.default_rng(seed)
    builders = {
        "hardware_efficient": hardware_efficient_ansatz,
        "excitation_preserving": excitation_preserving_ansatz,
    }
    if ansatz not in builders:
        raise ValueError(f"unknown ansatz {ansatz!r}")
    return [builders[ansatz](num_qubits, rng=rng) for _ in range(num_circuits)]
