"""GHZ and linear-cluster state-preparation circuits.

Entanglement-distribution workloads beyond the paper's four benchmarks.
GHZ preparation is CNOT-chain dominated (a best case for CZ-like gate
types), while the linear cluster state is CZ-native; both are useful for
probing how instruction-set choice affects shallow, structured circuits.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def ghz_circuit(num_qubits: int, ladder: bool = False) -> QuantumCircuit:
    """Prepare the ``(|0...0> + |1...1>)/sqrt(2)`` GHZ state.

    Parameters
    ----------
    num_qubits:
        Number of qubits (at least 2).
    ladder:
        When False (default) a linear CNOT chain from qubit 0 is used
        (depth ``n - 1``); when True a balanced fan-out ladder is used
        (depth ``ceil(log2 n)``), which stresses routing more on devices
        with linear connectivity.
    """
    if num_qubits < 2:
        raise ValueError("a GHZ state needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    if not ladder:
        for qubit in range(num_qubits - 1):
            circuit.cx(qubit, qubit + 1)
        return circuit

    # Fan-out ladder: qubits holding the superposition double every round.
    sources = [0]
    prepared = 1
    while prepared < num_qubits:
        next_sources: List[int] = []
        for source in sources:
            if prepared >= num_qubits:
                break
            target = prepared
            circuit.cx(source, target)
            next_sources.append(target)
            prepared += 1
        sources = sources + next_sources
    return circuit


def ghz_ideal_probabilities(num_qubits: int) -> np.ndarray:
    """Ideal output distribution of a GHZ state: half ``0...0``, half ``1...1``."""
    probabilities = np.zeros(2**num_qubits)
    probabilities[0] = 0.5
    probabilities[-1] = 0.5
    return probabilities


def linear_cluster_circuit(num_qubits: int) -> QuantumCircuit:
    """Prepare a 1-D cluster state: Hadamards followed by CZ on every bond.

    Cluster-state preparation is the canonical CZ-native workload; every
    two-qubit operation is exactly one CZ, so instruction sets containing
    CZ (S3) express it with one hardware gate per bond.
    """
    if num_qubits < 2:
        raise ValueError("a cluster state needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, name=f"cluster_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for qubit in range(num_qubits - 1):
        circuit.cz(qubit, qubit + 1)
    return circuit


def ghz_suite(num_qubits: int, num_circuits: int = 1, seed: int = 0) -> List[QuantumCircuit]:
    """Ensemble of GHZ circuits alternating chain and ladder layouts."""
    rng = np.random.default_rng(seed)
    circuits = []
    for _ in range(num_circuits):
        circuits.append(ghz_circuit(num_qubits, ladder=bool(rng.integers(0, 2))))
    return circuits
