"""QAOA MaxCut benchmark circuits.

The paper uses single-layer (p = 1) MaxCut QAOA circuits on random graphs
with roughly ``3n/4 * n / n = 3n/4`` two-qubit ZZ interactions per qubit
count ``n`` (Section VI describes "~n*3/4 random two-qubit ZZ
interactions, interleaved with single-qubit X rotations").  Each ZZ
interaction ``exp(-i gamma Z Z)`` is one two-qubit operation for NuOp to
decompose (Figure 2b).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def random_maxcut_edges(
    num_qubits: int, rng: np.random.Generator, edge_fraction: float = 0.75
) -> List[Tuple[int, int]]:
    """Sample a random graph with ``~edge_fraction * num_qubits`` edges (at least a spanning path)."""
    all_pairs = [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)]
    target_edges = max(int(round(edge_fraction * num_qubits)), num_qubits - 1)
    target_edges = min(target_edges, len(all_pairs))
    indices = rng.choice(len(all_pairs), size=target_edges, replace=False)
    return [all_pairs[i] for i in sorted(indices)]


def qaoa_maxcut_circuit(
    num_qubits: int,
    edges: Optional[Sequence[Tuple[int, int]]] = None,
    gamma: Optional[float] = None,
    beta: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
) -> QuantumCircuit:
    """Single-layer QAOA MaxCut circuit.

    Structure: Hadamards on every qubit, ``exp(-i gamma Z Z)`` on every
    graph edge, then ``Rx(2 beta)`` mixers on every qubit.  Angles default
    to random values, matching the paper's use of 100 random circuits per
    size.
    """
    rng = np.random.default_rng(rng)
    if edges is None:
        edges = random_maxcut_edges(num_qubits, rng)
    # Random angles avoid the degenerate corners gamma ~ 0 / pi (where the
    # ZZ layer is the identity up to global phase and the circuit carries
    # no entanglement), matching how QAOA angles are drawn in practice.
    gamma = float(rng.uniform(0.1 * np.pi, 0.9 * np.pi)) if gamma is None else float(gamma)
    beta = float(rng.uniform(0.1 * np.pi, 0.9 * np.pi)) if beta is None else float(beta)

    circuit = QuantumCircuit(num_qubits, name=f"qaoa_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for a, b in edges:
        circuit.rzz(gamma, a, b)
    for qubit in range(num_qubits):
        circuit.rx(2.0 * beta, qubit)
    return circuit


def qaoa_suite(
    num_qubits: int, num_circuits: int, seed: int = 0
) -> List[QuantumCircuit]:
    """Ensemble of random single-layer QAOA circuits (random graphs and angles)."""
    rng = np.random.default_rng(seed)
    return [qaoa_maxcut_circuit(num_qubits, rng=rng) for _ in range(num_circuits)]


def random_zz_unitaries(count: int, seed: int = 0) -> List[np.ndarray]:
    """Raw ``exp(-i beta ZZ)`` matrices with random angles (Figures 6 and 8)."""
    from repro.gates.parametric import rzz

    rng = np.random.default_rng(seed)
    return [rzz(float(rng.uniform(0, np.pi))) for _ in range(count)]
