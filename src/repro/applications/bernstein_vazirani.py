"""Bernstein-Vazirani circuits.

A classic oracle workload: the circuit recovers a hidden bit string with a
single oracle query.  Its two-qubit content is a CNOT from every qubit
where the secret has a 1 to the ancilla, making the instruction-count cost
directly proportional to the Hamming weight of the secret -- a useful
structured contrast to the random SU(4) blocks of Quantum Volume.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def bernstein_vazirani_circuit(secret: Sequence[int]) -> QuantumCircuit:
    """Bernstein-Vazirani circuit for the given secret bit string.

    The circuit uses ``len(secret) + 1`` qubits; the last qubit is the
    oracle ancilla.  After execution, measuring the first ``len(secret)``
    qubits yields the secret with certainty on a noiseless device.
    """
    secret = [int(bit) for bit in secret]
    if not secret or any(bit not in (0, 1) for bit in secret):
        raise ValueError("secret must be a non-empty sequence of 0/1 bits")
    num_data = len(secret)
    circuit = QuantumCircuit(num_data + 1, name=f"bv_{num_data}")

    ancilla = num_data
    circuit.x(ancilla)
    for qubit in range(num_data + 1):
        circuit.h(qubit)
    for qubit, bit in enumerate(secret):
        if bit:
            circuit.cx(qubit, ancilla)
    for qubit in range(num_data):
        circuit.h(qubit)
    return circuit


def secret_from_probabilities(probabilities: np.ndarray, num_data: int) -> List[int]:
    """Most likely secret given an output distribution over ``num_data + 1`` qubits.

    The ancilla (last qubit) is traced out by summing over its two values.
    """
    probabilities = np.asarray(probabilities, dtype=float)
    num_qubits = num_data + 1
    if probabilities.size != 2**num_qubits:
        raise ValueError("distribution size does not match num_data + 1 qubits")
    marginal = probabilities.reshape(2**num_data, 2).sum(axis=1)
    best = int(np.argmax(marginal))
    return [int(bit) for bit in format(best, f"0{num_data}b")]


def bv_success_probability(probabilities: np.ndarray, secret: Sequence[int]) -> float:
    """Probability of reading out exactly the secret (ancilla ignored)."""
    secret = [int(bit) for bit in secret]
    num_data = len(secret)
    probabilities = np.asarray(probabilities, dtype=float)
    marginal = probabilities.reshape(2**num_data, 2).sum(axis=1)
    index = int("".join(str(bit) for bit in secret), 2)
    return float(marginal[index])


def bv_suite(num_data_qubits: int, num_circuits: int = 1, seed: int = 0) -> List[QuantumCircuit]:
    """Ensemble of Bernstein-Vazirani circuits with random secrets."""
    rng = np.random.default_rng(seed)
    circuits = []
    for _ in range(num_circuits):
        secret = rng.integers(0, 2, size=num_data_qubits)
        if not secret.any():
            secret[rng.integers(0, num_data_qubits)] = 1
        circuits.append(bernstein_vazirani_circuit(secret))
    return circuits
