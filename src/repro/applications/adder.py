"""Ripple-carry adder circuits (Cuccaro construction).

Arithmetic circuits are the canonical "classic QC / longer-term" workload
class alongside QFT; they are CNOT/Toffoli dominated, which stresses
CZ-like gate types.  Toffoli gates are expanded into the standard
six-CNOT + T-gate network so the whole circuit stays within the one- and
two-qubit gate set that NuOp and the device models understand.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit


def _toffoli(circuit: QuantumCircuit, a: int, b: int, target: int) -> None:
    """Append a Toffoli (CCX) on ``(a, b, target)`` using 6 CNOTs and T gates."""
    from repro.circuits.gate import named_gate

    t = named_gate("t")
    tdg = named_gate("tdg")
    h = named_gate("h")
    circuit.append(h, [target])
    circuit.cx(b, target)
    circuit.append(tdg, [target])
    circuit.cx(a, target)
    circuit.append(t, [target])
    circuit.cx(b, target)
    circuit.append(tdg, [target])
    circuit.cx(a, target)
    circuit.append(t, [b])
    circuit.append(t, [target])
    circuit.append(h, [target])
    circuit.cx(a, b)
    circuit.append(t, [a])
    circuit.append(tdg, [b])
    circuit.cx(a, b)


def ripple_carry_adder_circuit(
    num_bits: int,
    a_value: int,
    b_value: int,
) -> QuantumCircuit:
    """In-place ripple-carry adder computing ``b <- a + b``.

    Register layout (``2 * num_bits + 2`` qubits)::

        [carry_in, a_0, b_0, a_1, b_1, ..., a_{n-1}, b_{n-1}, carry_out]

    with bit 0 the least significant bit.  The inputs are classical values
    loaded with X gates, so the ideal output is a single computational
    basis state containing ``a + b`` in the ``b`` register (plus the final
    carry), which makes success rate easy to score under noise.
    """
    if num_bits < 1:
        raise ValueError("the adder needs at least one bit")
    limit = 2**num_bits
    if not (0 <= a_value < limit and 0 <= b_value < limit):
        raise ValueError(f"input values must fit in {num_bits} bits")

    num_qubits = 2 * num_bits + 2
    circuit = QuantumCircuit(num_qubits, name=f"adder_{num_bits}")
    carry_in = 0
    carry_out = num_qubits - 1

    def a_qubit(i: int) -> int:
        return 1 + 2 * i

    def b_qubit(i: int) -> int:
        return 2 + 2 * i

    # Load the classical inputs.
    for i in range(num_bits):
        if (a_value >> i) & 1:
            circuit.x(a_qubit(i))
        if (b_value >> i) & 1:
            circuit.x(b_qubit(i))

    # MAJ blocks (majority): ripple the carry up.
    previous_carry = carry_in
    for i in range(num_bits):
        circuit.cx(a_qubit(i), b_qubit(i))
        circuit.cx(a_qubit(i), previous_carry)
        _toffoli(circuit, previous_carry, b_qubit(i), a_qubit(i))
        previous_carry = a_qubit(i)

    circuit.cx(a_qubit(num_bits - 1), carry_out)

    # UMA blocks (unmajority-and-add): ripple back down, writing the sum.
    for i in reversed(range(num_bits)):
        previous_carry = carry_in if i == 0 else a_qubit(i - 1)
        _toffoli(circuit, previous_carry, b_qubit(i), a_qubit(i))
        circuit.cx(a_qubit(i), previous_carry)
        circuit.cx(previous_carry, b_qubit(i))
    return circuit


def adder_expected_index(num_bits: int, a_value: int, b_value: int) -> int:
    """Basis-state index of the ideal adder output (qubit 0 = most significant bit).

    The ``a`` register is restored to its input value, the ``b`` register
    holds ``(a + b) mod 2^n`` and the carry-out qubit holds the overflow
    bit, matching :func:`ripple_carry_adder_circuit`'s register layout.
    """
    total = a_value + b_value
    sum_bits = total % (2**num_bits)
    carry = total >> num_bits
    num_qubits = 2 * num_bits + 2
    bits = [0] * num_qubits
    for i in range(num_bits):
        bits[1 + 2 * i] = (a_value >> i) & 1
        bits[2 + 2 * i] = (sum_bits >> i) & 1
    bits[num_qubits - 1] = carry
    index = 0
    for qubit, bit in enumerate(bits):
        index += bit << (num_qubits - 1 - qubit)
    return index


def adder_suite(num_bits: int, num_circuits: int = 1, seed: int = 0) -> List[QuantumCircuit]:
    """Ensemble of adder circuits over random input pairs."""
    rng = np.random.default_rng(seed)
    limit = 2**num_bits
    circuits = []
    for _ in range(num_circuits):
        circuits.append(
            ripple_carry_adder_circuit(
                num_bits, int(rng.integers(0, limit)), int(rng.integers(0, limit))
            )
        )
    return circuits
