"""Setup shim for environments without the ``wheel`` package.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e . --no-use-pep517 --no-build-isolation`` works in
offline environments that lack ``wheel``.
"""

from setuptools import setup

setup()
