"""Figure 8 benchmark: expressivity heatmaps over the fSim parameter space.

Paper result: instruction counts per application operation range from 1 to
6 across the (theta, phi) grid; CZ-like points are best for QAOA, iSWAP-like
points for Fermi-Hubbard, fSim(pi/2, pi) implements SWAP with one gate, and
gates near fSim(pi/6, pi) (S7) are expressive for QV.
"""

import numpy as np

from repro.experiments.fig8 import Figure8Config, run_figure8


def test_bench_figure8(run_once, bench_decomposer):
    config = Figure8Config.quick()
    result = run_once(run_figure8, config, bench_decomposer)
    print()
    for application in config.applications:
        print(result.format_table(application))
        print()

    for application in config.applications:
        grid = result.heatmaps[application]
        assert grid.shape == (config.phi_points, config.theta_points)
        assert np.all(grid >= 1.0) or application == "swap"

    # SWAP is a single instruction at fSim(pi/2, pi) and QAOA is ~2 near CZ.
    assert result.count_at("swap", np.pi / 2, np.pi) == 1.0
    assert result.count_at("qaoa", 0.0, np.pi) <= 2.5
    # The identity corner is maximally inexpressive for entangling workloads.
    assert result.heatmaps["qv"][0, 0] > 3 if "qv" in result.heatmaps else True
