"""Figure 7 benchmark: exact vs approximate decomposition across error rates.

Paper result: at low error rates the two modes coincide; approximation
matches or outperforms exact decomposition once the mean two-qubit error
reaches the Sycamore regime (~0.62%) and beyond.
"""

from repro.experiments.fig7 import Figure7Config, run_figure7


def test_bench_figure7(run_once, bench_decomposer):
    config = Figure7Config.quick()
    result = run_once(run_figure7, config, bench_decomposer)
    print()
    print(result.format_table())

    assert len(result.points) == len(config.error_multipliers) * 2
    # At the highest error rate approximation should not lose to exact by much.
    worst = max(config.error_multipliers)
    for point in result.points:
        if point.error_multiplier == worst:
            assert point.approximate_metric >= point.exact_metric - 0.05
