"""Ablation benchmarks for NuOp's own design choices (DESIGN.md ablation list).

Measures the decomposer's per-call cost and the impact of restart count and
layer budget on solution quality -- the knobs Section V of the paper leaves
implicit (it reports that fewer than four layers almost always suffice and
that compile time is ~0.2 s per gate per target type).
"""

import numpy as np
import pytest

from repro.core.decomposer import NuOpDecomposer
from repro.core.gate_types import google_gate_type
from repro.gates.parametric import rzz
from repro.gates.unitary import random_su4

CZ_GATE = google_gate_type("S3").gate
SYC_GATE = google_gate_type("S1").gate


def test_bench_decompose_su4_into_cz(benchmark):
    """Micro-benchmark: one exact SU(4) -> CZ decomposition (cold cache)."""
    target = random_su4(np.random.default_rng(0))

    def decompose():
        return NuOpDecomposer(seed=1).decompose_exact(target, gate=CZ_GATE)

    result = benchmark(decompose)
    assert result.num_layers == 3
    assert result.decomposition_fidelity > 0.999999


def test_bench_decompose_zz_into_syc(benchmark):
    """Micro-benchmark: one exact ZZ -> SYC decomposition (cold cache)."""
    target = rzz(0.37)

    def decompose():
        return NuOpDecomposer(seed=1).decompose_exact(target, gate=SYC_GATE)

    result = benchmark(decompose)
    assert result.num_layers == 2


def test_bench_cached_profile_lookup(benchmark, bench_decomposer):
    """Micro-benchmark: repeated decomposition of the same target is a cache hit."""
    target = random_su4(np.random.default_rng(3))
    bench_decomposer.decompose_exact(target, gate=CZ_GATE)

    result = benchmark(bench_decomposer.decompose_exact, target, gate=CZ_GATE)
    assert result.num_layers == 3


def test_bench_ablation_restarts(run_once):
    """More restarts must never find worse decompositions (and rarely find better)."""
    rng = np.random.default_rng(5)
    targets = [random_su4(rng) for _ in range(3)]

    def sweep():
        results = {}
        for restarts in (0, 1, 3):
            decomposer = NuOpDecomposer(seed=2, restarts=restarts)
            layers = [
                decomposer.decompose_exact(target, gate=CZ_GATE).num_layers
                for target in targets
            ]
            results[restarts] = layers
        return results

    results = run_once(sweep)
    print()
    for restarts, layers in results.items():
        print(f"  restarts={restarts}: layers={layers}")
    assert all(np.mean(layers) <= 3.0 for layers in results.values())
    assert np.mean(results[3]) <= np.mean(results[0]) + 1e-9


def test_bench_ablation_layer_budget(run_once):
    """A one-layer budget cannot express SU(4); three layers always can (with CZ)."""
    rng = np.random.default_rng(6)
    targets = [random_su4(rng) for _ in range(3)]

    def sweep():
        fidelities = {}
        decomposer = NuOpDecomposer(seed=3)
        for budget in (1, 2, 3):
            values = [
                decomposer.decompose_exact(
                    target, gate=CZ_GATE, max_layers=budget
                ).decomposition_fidelity
                for target in targets
            ]
            fidelities[budget] = float(np.mean(values))
        return fidelities

    fidelities = run_once(sweep)
    print()
    print(f"  mean F_d by layer budget: {fidelities}")
    assert fidelities[1] < fidelities[2] < fidelities[3]
    assert fidelities[3] == pytest.approx(1.0, abs=1e-6)
