"""Figure 11 benchmark: calibration overhead vs application reliability.

Paper result: calibration circuits scale linearly with gate types and device
size (~1e7 circuits for 10 types on 54 qubits, ~1e9 for a 1000-qubit device);
reliability improves with diminishing returns beyond ~5 gate types, and the
proposed 4-8-type sets save about two orders of magnitude of calibration
relative to a continuous family.
"""

from repro.calibration.model import CalibrationModel, calibration_savings_factor
from repro.experiments.fig11 import (
    Figure11aConfig,
    Figure11bConfig,
    run_figure11a,
    run_figure11b,
)


def test_bench_figure11a(benchmark):
    result = benchmark(run_figure11a, Figure11aConfig())
    print()
    print(result.format_table())

    # Linear scaling in gate types, monotone in device size.
    assert result.circuits[54][8] == 8 * result.circuits[54][1]
    assert result.circuits[1000][4] > result.circuits[54][4] > result.circuits[2][4]
    # Paper's quoted magnitudes.
    assert 3e6 < result.circuits[54][8] < 3e7 or 3e6 < result.circuits[54][16] < 3e7
    assert result.circuits[1000][300] > 1e8


def test_bench_figure11b(run_once, bench_decomposer):
    result = run_once(run_figure11b, Figure11bConfig.quick(), bench_decomposer)
    print()
    print(result.format_table())

    assert result.points
    hours = [point.calibration_hours for point in result.points]
    assert hours == sorted(hours)
    # Two orders of magnitude calibration savings for the proposed 4-8 type sets.
    assert 40 <= calibration_savings_factor(CalibrationModel(), 8) <= 400
    assert result.savings_factor >= 40
