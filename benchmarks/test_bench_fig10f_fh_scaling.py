"""Figure 10f benchmark: Fermi-Hubbard fidelity vs mean two-qubit error rate.

Paper result: across circuit sizes and noise levels, the multi-type G7 set
matches or beats the single-type S2 set, with the largest advantage at
today's error rates and a shrinking gap as hardware improves.
"""

from repro.experiments.fig10 import Figure10fConfig, run_figure10f


def test_bench_figure10f(run_once, bench_decomposer):
    config = Figure10fConfig.quick()
    result = run_once(run_figure10f, config, bench_decomposer)
    print()
    print(result.format_table())

    assert len(result.points) == len(config.fh_sizes) * len(config.error_rates)
    # G7 should not lose to S2 by more than simulation noise at any point.
    for point in result.points:
        assert point.fidelity_g7 >= point.fidelity_s2 - 0.1
    # Lower error rates give higher fidelity for both sets.
    by_rate = sorted(result.points, key=lambda p: p.error_rate)
    assert by_rate[0].fidelity_g7 >= by_rate[-1].fidelity_g7 - 0.05
