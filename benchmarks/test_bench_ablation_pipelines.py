"""Compilation ablation by pipeline selection.

Pre-PassManager, comparing compiler variants meant forking code paths
(flags threaded through the monolith).  Now an ablation is a registry
lookup: compile the same workload under several named pipelines and
compare the hardware cost of the outputs.  This benchmark sweeps the
registered pipelines over a routed QAOA workload and prints the gate
budget each one produces.
"""

from __future__ import annotations

import numpy as np

from repro.applications import qaoa_maxcut_circuit
from repro.core.instruction_sets import google_instruction_set
from repro.core.pipeline import compile_circuit
from repro.devices.synthetic import synthetic_device

PIPELINES = ("default", "no-merge", "optimized", "fused", "euler-zxz", "scheduled")


def test_bench_pipeline_ablation(run_once, bench_decomposer):
    circuit = qaoa_maxcut_circuit(4, rng=np.random.default_rng(12))
    instruction_set = google_instruction_set("G3")

    def sweep():
        results = {}
        for name in PIPELINES:
            compiled = compile_circuit(
                circuit,
                synthetic_device(6, "line", seed=19),
                instruction_set,
                decomposer=bench_decomposer,
                pipeline=name,
            )
            results[name] = compiled
        return results

    results = run_once(sweep)
    print()
    for name, compiled in results.items():
        timings = ", ".join(
            f"{pass_name}={duration * 1e3:.1f}ms"
            for pass_name, duration in compiled.pass_timings.items()
        )
        schedule = (
            f" duration={compiled.schedule_duration:.0f}ns"
            if compiled.schedule_duration is not None
            else ""
        )
        print(
            f"  {name:>15}: 2q={compiled.two_qubit_gate_count:>2} "
            f"1q={compiled.circuit.num_single_qubit_gates():>3}{schedule}  [{timings}]"
        )

    # Device-mapping is shared, so the 2Q budget can only shrink under
    # cleanup passes; single-qubit merging must never increase 1Q count.
    assert (
        results["optimized"].two_qubit_gate_count
        <= results["default"].two_qubit_gate_count
    )
    assert (
        results["default"].circuit.num_single_qubit_gates()
        <= results["no-merge"].circuit.num_single_qubit_gates()
    )
    assert results["scheduled"].schedule_duration > 0.0
    # Every pipeline records where its compile time went.
    assert all(compiled.pass_timings for compiled in results.values())
