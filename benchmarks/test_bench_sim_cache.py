"""Simulation-cache smoke benchmark: warm fresh process runs zero simulations.

The compilation disk tier (``test_bench_disk_cache.py``) made fresh
processes skip the compiler; this benchmark proves the simulation-result
tier does the same for the simulate half of the toolflow.  The same
4-qubit QV study runs in two consecutive child processes sharing one
``REPRO_CACHE_DIR``:

1. **cold** -- empty cache directory: every compile node compiles and is
   persisted, every simulate node invokes a simulator backend and its
   measured distribution is persisted to the ``sim`` namespace;
2. **warm** -- a brand-new Python process: compiles *and* simulations
   are all served from disk.  The per-backend invocation counters prove
   **zero** backend invocations happened, and the rendered study report
   is byte-identical to the cold process's.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"

_CHILD_SCRIPT = """
import json, time
import numpy as np
from repro.applications import qv_suite
from repro.caching.disk import get_global_disk_cache
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import google_instruction_set, single_gate_set
from repro.devices.synthetic import synthetic_device
from repro.experiments.engine import run_study, simulation_cache_stats
from repro.experiments.runner import SimulationOptions
from repro.metrics.hop import heavy_output_probability
from repro.simulators.backend import backend_invocation_counts

start = time.perf_counter()
study = run_study(
    "qv",
    qv_suite(4, 2, seed=4),
    "HOP",
    heavy_output_probability,
    lambda: synthetic_device(6, "line", seed=19),
    {
        "S1": single_gate_set("S1", vendor="google"),
        "G3": google_instruction_set("G3"),
    },
    decomposer=NuOpDecomposer(seed=21),
    options=SimulationOptions(shots=2000, seed=6),
    workers=1,
)
elapsed = time.perf_counter() - start
report = study.format_table() + "\\n" + study.format_pass_stats()
disk = get_global_disk_cache()
print(json.dumps({
    "elapsed": elapsed,
    "report": report,
    "disk": disk.stats() if disk is not None else None,
    "sim_memory": simulation_cache_stats(),
    "invocations": backend_invocation_counts(),
}))
"""


def _run_child(cache_dir: str) -> dict:
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env["PYTHONPATH"] = str(_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout.strip().splitlines()[-1])


def test_bench_sim_cache_warms_fresh_processes(tmp_path):
    cache_dir = str(tmp_path / "repro-cache")

    cold = _run_child(cache_dir)
    warm = _run_child(cache_dir)

    print()
    print(
        f"sim-cache bench: cold_process={cold['elapsed']:.2f}s "
        f"warm_process={warm['elapsed']:.2f}s "
        f"(speedup {cold['elapsed'] / warm['elapsed']:.1f}x)"
    )
    print(f"  cold: sim_writes={cold['disk']['sim_writes']} invocations={cold['invocations']}")
    print(f"  warm: sim_hits={warm['disk']['sim_hits']} invocations={warm['invocations']}")

    # The cold process simulated every node and persisted every vector...
    assert cold["sim_memory"]["misses"] == 4  # 2 sets x 2 circuits
    assert cold["disk"]["sim_writes"] == 4
    assert cold["disk"]["sim_hits"] == 0
    assert sum(cold["invocations"].values()) > 0
    # ...and the warm fresh process served every simulate node from the
    # disk simulation cache: zero backend invocations, nothing rewritten.
    assert warm["invocations"] == {}
    assert warm["disk"]["sim_hits"] == cold["disk"]["sim_writes"]
    assert warm["disk"]["sim_writes"] == 0
    # Compilation tier still warm-starts alongside.
    assert warm["disk"]["hits"] >= cold["disk"]["writes"] > 0
    # The rendered study report is byte-identical across the processes.
    assert warm["report"] == cold["report"]
