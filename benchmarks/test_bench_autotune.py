"""Autotuner smoke benchmark: 4-qubit QV study, ``auto`` vs ``default``.

The container is single-CPU, so this benchmark measures what the
autotuner is *for* -- delivered fidelity and cache reuse -- rather than
wall-clock parallel speedups:

* for every (circuit, instruction set) job, the auto-selected pipeline's
  **predicted compiled fidelity** must match or beat the ``default``
  pipeline's (``default`` is always a candidate, so a regression here
  means the scoring is broken);
* re-running the tuned study must be served from the **verdict memory
  tier** (zero new trial compilations), and a fresh verdict cache backed
  by the same disk directory must warm-start from the **persisted
  verdicts**;
* per-pass rewrite statistics must flow into the study report.
"""

from __future__ import annotations

import time

from repro.applications import qv_suite
from repro.caching.disk import DiskCompilationCache
from repro.compiler.autotune import (
    TunerVerdictCache,
    autotune_pipeline,
    default_candidate_pipelines,
    global_tuner_cache,
)
from repro.core.instruction_sets import google_instruction_set, single_gate_set
from repro.core.pipeline import CompilationCache, global_compilation_cache
from repro.devices.synthetic import synthetic_device
from repro.experiments.engine import clear_experiment_caches, run_study
from repro.experiments.runner import SimulationOptions
from repro.metrics.hop import heavy_output_probability


def _device():
    return synthetic_device(6, "line", seed=19)


def test_bench_autotune_fidelity_and_cache_reuse(bench_decomposer, tmp_path):
    circuits = qv_suite(4, 2, seed=4)
    instruction_sets = {
        "S1": single_gate_set("S1", vendor="google"),
        "G3": google_instruction_set("G3"),
    }
    kwargs = dict(
        application="qv",
        circuits=circuits,
        metric_name="HOP",
        metric=heavy_output_probability,
        device_factory=_device,
        instruction_sets=instruction_sets,
        options=SimulationOptions(shots=2000, seed=6),
        decomposer=bench_decomposer,
    )

    # --- fidelity: every job's verdict beats or matches 'default' ----------
    verdict_rows = []
    for set_name, instruction_set in instruction_sets.items():
        for index, circuit in enumerate(circuits):
            verdict = autotune_pipeline(
                circuit, _device(), instruction_set, decomposer=bench_decomposer
            )
            default_score = verdict.score_for("default")
            assert verdict.winning_fidelity() >= default_score.predicted_fidelity
            verdict_rows.append(
                (set_name, index, verdict.pipeline,
                 verdict.winning_fidelity(), default_score.predicted_fidelity)
            )

    # --- cache reuse: warm study re-tunes for free --------------------------
    clear_experiment_caches()
    start = time.perf_counter()
    cold = run_study(**kwargs, workers=1, pipeline="auto")
    t_cold = time.perf_counter() - start
    tuner_after_cold = global_tuner_cache().stats()

    start = time.perf_counter()
    warm = run_study(**kwargs, workers=1, pipeline="auto")
    t_warm = time.perf_counter() - start
    tuner_after_warm = global_tuner_cache().stats()

    jobs = len(circuits) * len(instruction_sets)
    assert tuner_after_cold["misses"] == jobs
    assert tuner_after_warm["hits"] >= jobs  # warm run: all verdicts from memory
    assert tuner_after_warm["misses"] == tuner_after_cold["misses"]

    def rows(study):
        return [
            (name, result.metric_values, result.two_qubit_counts,
             sorted(result.pipeline_usage.items()))
            for name, result in study.per_set.items()
        ]

    assert rows(warm) == rows(cold)
    assert cold.format_pass_stats()  # rewrite statistics reached the report

    # --- disk tier: a fresh verdict cache warm-starts from persisted blobs --
    # Each loop uses its own memory tiers, simulating two fresh processes
    # sharing one cache directory.
    disk = DiskCompilationCache(tmp_path)
    cold_memory = CompilationCache()
    cold_verdicts = TunerVerdictCache()
    for set_name, instruction_set in instruction_sets.items():
        for circuit in circuits:
            autotune_pipeline(
                circuit, _device(), instruction_set, decomposer=bench_decomposer,
                cache=cold_memory, disk_cache=disk, verdict_cache=cold_verdicts,
            )
    writes_before = disk.stats()["writes"]
    warm_verdicts = TunerVerdictCache()
    for set_name, instruction_set in instruction_sets.items():
        for circuit in circuits:
            autotune_pipeline(
                circuit, _device(), instruction_set, decomposer=bench_decomposer,
                cache=CompilationCache(), disk_cache=disk, verdict_cache=warm_verdicts,
            )
    disk_stats = disk.stats()
    assert disk_stats["writes"] == writes_before  # nothing re-tuned or re-compiled

    print()
    print(f"autotune bench: candidates={default_candidate_pipelines()}")
    for set_name, index, winner, auto_f, default_f in verdict_rows:
        print(
            f"  {set_name} circuit {index}: {winner:>10}  "
            f"predicted={auto_f:.5f} (default={default_f:.5f})"
        )
    print(
        f"  study cold={t_cold:.2f}s warm={t_warm:.2f}s  "
        f"tuner={tuner_after_warm} compile={global_compilation_cache().stats()}"
    )
    print(f"  disk tier: {disk_stats}")
