"""Benchmark: drift + recalibration scheduling (extension of Figure 11).

The paper's Figure 11 quantifies the one-shot calibration cost of exposing
many gate types; this benchmark quantifies the steady-state cost by
simulating a week of parameter drift under three recalibration policies and
for increasing instruction-set sizes.  The headline shape to look for: the
calibration duty cycle grows linearly with the number of gate types
(periodic policy), while the threshold policy buys most of the error-rate
benefit at a fraction of the duty cycle.
"""

from repro.calibration.drift import drift_model_for_instruction_set
from repro.calibration.model import CalibrationModel
from repro.calibration.scheduler import (
    NeverPolicy,
    PeriodicPolicy,
    ThresholdPolicy,
    compare_policies,
    sustainable_gate_type_count,
)
from repro.visualization.text import render_table


def _run_policy_comparison():
    rows = []
    duty_cycles = {}
    for num_types in (1, 4, 8):
        type_keys = [f"type_{index}" for index in range(num_types)]
        results = compare_policies(
            lambda keys=type_keys: drift_model_for_instruction_set(12, keys, seed=23),
            [PeriodicPolicy(period_hours=24.0), ThresholdPolicy(2.0), NeverPolicy()],
            horizon_hours=7 * 24.0,
        )
        duty_cycles[num_types] = results["periodic"].calibration_duty_cycle
        for result in results.values():
            rows.append({"#types": num_types, **result.as_row()})
    return rows, duty_cycles


def test_bench_calibration_scheduling(benchmark):
    rows, duty_cycles = benchmark.pedantic(_run_policy_comparison, rounds=1, iterations=1)
    print()
    print("Recalibration scheduling over a one-week horizon")
    print(render_table(rows))
    print(f"sustainable gate types in a 4-hour daily budget: "
          f"{sustainable_gate_type_count(CalibrationModel(), 4.0)}")

    # Shape checks: duty cycle grows with the number of exposed gate types,
    # and never-calibrating always yields the worst mean error.
    assert duty_cycles[8] > duty_cycles[4] > duty_cycles[1]
    by_key = {}
    for row in rows:
        by_key[(row["#types"], row["policy"])] = row
    for num_types in (1, 4, 8):
        never = by_key[(num_types, "never")]
        periodic = by_key[(num_types, "periodic")]
        assert periodic["mean_error"] <= never["mean_error"] + 1e-12
        assert never["duty_cycle"] == 0.0
