"""Batched superoperator replay benchmark (CI smoke, ``BENCH_7.json``).

Two measurements on the error-scale sweep path PR 7 vectorises:

1. **Kernel level** -- B=16 scaled variants of one 4-qubit QV noise
   program (the Figure 10 "calibration quality Nx worse" sweep) replayed
   as one stacked
   :func:`repro.simulators.superop.apply_superop_program_batch` pass
   over a ``(B, 2^n, 2^n)`` rho tensor, against the sequential
   per-program fused replay.  Asserts **>= 2x** speedup and **<= 1e-10**
   max-abs deviation of the final probabilities (the batched contraction
   runs the same GEMMs, so the observed deviation is exactly 0).  The
   batched win amortises the per-group Python dispatch across the sweep,
   so it is largest exactly where per-job replay is overhead-bound: on
   this container ~6x at 4 qubits, shrinking to ~1.5x at 6 qubits where
   single GEMMs dominate.

2. **Study level** -- an engine error-scale sweep study run end-to-end
   with ``batch=0`` (grouped vectorised passes) vs ``batch=1``
   (sequential per-job replay), with a warm compilation tier and cold
   simulation caches.  Asserts the per-set reports are bit-identical,
   the batched run used fewer backend invocations, and a warm batched
   re-run performs **0** backend invocations while returning the
   byte-identical study output.

This module records raw baseline/batched timings only; the ``speedup``
fields in the JSON artifact are derived by ``benchmarks/conftest.py``,
which this benchmark doubles as coverage for.  CI runs it as its own
step with ``REPRO_BENCH_JSON=BENCH_7.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.applications import qv_circuit, qv_suite
from repro.core.instruction_sets import full_fsim_set, single_gate_set
from repro.devices.synthetic import synthetic_device
from repro.experiments.engine import clear_experiment_caches, run_study
from repro.experiments.runner import SimulationOptions
from repro.metrics.hop import heavy_output_probability
from repro.simulators.backend import (
    backend_invocation_counts,
    reset_backend_invocation_counts,
)
from repro.simulators.noise_model import NoiseModel
from repro.simulators.noise_program import build_noise_program
from repro.simulators.superop import (
    apply_superop_program,
    apply_superop_program_batch,
    batch_superop_programs,
    lower_noise_program,
)

SWEEP_SCALES = tuple(1.0 + 0.125 * step for step in range(16))


def _best_of(function, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_batched_sweep_kernel(bench_json_record):
    num_qubits = 4
    circuit = qv_circuit(num_qubits, rng=np.random.default_rng(42))
    programs = [
        lower_noise_program(
            build_noise_program(
                circuit,
                NoiseModel.uniform(
                    num_qubits,
                    two_qubit_error=0.01 * scale,
                    single_qubit_error=0.001 * scale,
                ),
            )
        )
        for scale in SWEEP_SCALES
    ]
    batch = batch_superop_programs(programs)

    dim = 2**num_qubits
    rho = np.zeros((dim, dim), dtype=complex)
    rho[0, 0] = 1.0
    rhos = np.broadcast_to(rho, (len(programs), dim, dim)).copy()

    sequential_s = _best_of(
        lambda: [apply_superop_program(program, rho) for program in programs]
    )
    batched_s = _best_of(lambda: apply_superop_program_batch(batch, rhos))

    sequential_rhos = [apply_superop_program(program, rho) for program in programs]
    batched_rhos = apply_superop_program_batch(batch, rhos)
    deviation = max(
        float(
            np.abs(
                np.real(np.diagonal(batched_rhos[index]))
                - np.real(np.diagonal(sequential_rhos[index]))
            ).max()
        )
        for index in range(len(programs))
    )

    speedup = sequential_s / batched_s
    print()
    print(
        f"batched sweep bench (4q QV, B={len(programs)} scales): "
        f"sequential={sequential_s * 1e3:.1f}ms batched={batched_s * 1e3:.1f}ms "
        f"(speedup {speedup:.1f}x, deviation={deviation:.2e})"
    )
    bench_json_record(
        sequential_s=round(sequential_s, 6),
        batched_s=round(batched_s, 6),
        batch_items=len(programs),
        max_abs_deviation=deviation,
    )

    assert deviation <= 1e-10
    assert speedup >= 2.0, (
        f"batched replay only {speedup:.2f}x faster than sequential fused replay"
    )


def test_bench_batched_sweep_study_warm_replay(
    bench_decomposer, bench_json_record
):
    kwargs = dict(
        application="qv",
        circuits=qv_suite(4, 2, seed=11),
        metric_name="HOP",
        metric=heavy_output_probability,
        device_factory=lambda: synthetic_device(6, "line", seed=17),
        instruction_sets={
            "S1": single_gate_set("S1", vendor="google"),
            "FullfSim": full_fsim_set(),
            "FullfSim-2x": full_fsim_set(),
            "FullfSim-3x": full_fsim_set(),
        },
        error_scales={"FullfSim-2x": 2.0, "FullfSim-3x": 3.0},
        decomposer=bench_decomposer,
        workers=1,
    )

    def rows(study):
        return [
            (name, result.metric_values, result.two_qubit_counts)
            for name, result in study.per_set.items()
        ]

    # Warm the compilation tier once so the timed runs measure the
    # simulate stage, then time cold-simulation sweeps both ways.
    clear_experiment_caches()
    run_study(**kwargs, options=SimulationOptions(shots=2000, seed=6))

    clear_experiment_caches()
    reset_backend_invocation_counts()
    start = time.perf_counter()
    sequential_study = run_study(
        **kwargs, options=SimulationOptions(shots=2001, seed=6, batch=1)
    )
    sequential_s = time.perf_counter() - start
    sequential_invocations = sum(backend_invocation_counts().values())

    clear_experiment_caches()
    reset_backend_invocation_counts()
    start = time.perf_counter()
    batched_study = run_study(
        **kwargs, options=SimulationOptions(shots=2001, seed=6, batch=0)
    )
    batched_s = time.perf_counter() - start
    batched_invocations = sum(backend_invocation_counts().values())

    # Warm re-run: everything lands in the simulation cache, so the
    # batched study replays byte-identically with zero backend work.
    warm_study = run_study(
        **kwargs, options=SimulationOptions(shots=2001, seed=6, batch=0)
    )
    warm_invocations = sum(backend_invocation_counts().values())

    print()
    print(
        f"batched sweep study (4q QV x2, 4 sets, warm compile/cold sim): "
        f"sequential={sequential_s:.2f}s/{sequential_invocations} invocations "
        f"batched={batched_s:.2f}s/{batched_invocations} invocations"
    )
    bench_json_record(
        sequential_s=round(sequential_s, 4),
        batched_s=round(batched_s, 4),
        sequential_invocations=sequential_invocations,
        batched_invocations=batched_invocations,
    )

    assert rows(batched_study) == rows(sequential_study)
    assert batched_invocations < sequential_invocations
    assert warm_invocations == batched_invocations, "warm re-run invoked the backend"
    assert rows(warm_study) == rows(batched_study)
