"""Disk-cache smoke benchmark: cold process vs warm process.

The whole point of the persistent tier is to warm-start *fresh processes*
-- something the PR-1 in-memory cache cannot do.  This benchmark runs the
same 4-qubit instruction-set study in two consecutive child processes
sharing one ``REPRO_CACHE_DIR``:

1. **cold** -- empty cache directory, every compile node pays full NuOp
   cost and is persisted to disk;
2. **warm** -- a brand-new Python process whose compiles are all served
   from the disk tier.

Asserts the warm process hits the disk cache for every compilation the
cold process persisted, produces bit-identical study rows, and is
materially faster; prints both wall times (the numbers CHANGES.md and
docs/compiler.md report).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parents[1] / "src"

_CHILD_SCRIPT = """
import json, time
import numpy as np
from repro.applications import qv_suite
from repro.caching.disk import get_global_disk_cache
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import google_instruction_set, single_gate_set
from repro.core.pipeline import global_compilation_cache
from repro.devices.synthetic import synthetic_device
from repro.experiments.engine import run_study
from repro.experiments.runner import SimulationOptions
from repro.metrics.hop import heavy_output_probability

start = time.perf_counter()
study = run_study(
    "qv",
    qv_suite(4, 2, seed=4),
    "HOP",
    heavy_output_probability,
    lambda: synthetic_device(6, "line", seed=19),
    {
        "S1": single_gate_set("S1", vendor="google"),
        "G3": google_instruction_set("G3"),
    },
    decomposer=NuOpDecomposer(seed=21),
    options=SimulationOptions(shots=2000, seed=6),
    workers=1,
)
elapsed = time.perf_counter() - start
rows = [
    (name, result.metric_values, result.two_qubit_counts, result.swap_counts)
    for name, result in study.per_set.items()
]
disk = get_global_disk_cache()
print(json.dumps({
    "elapsed": elapsed,
    "rows": repr(rows),
    "disk": disk.stats() if disk is not None else None,
    "memory": global_compilation_cache().stats(),
}))
"""


def _run_child(cache_dir: str) -> dict:
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env["PYTHONPATH"] = str(_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout.strip().splitlines()[-1])


def test_bench_disk_cache_warms_fresh_processes(tmp_path):
    cache_dir = str(tmp_path / "compile-cache")

    cold = _run_child(cache_dir)
    warm = _run_child(cache_dir)

    print()
    print(
        f"disk-cache bench: cold_process={cold['elapsed']:.2f}s "
        f"warm_process={warm['elapsed']:.2f}s "
        f"(speedup {cold['elapsed'] / warm['elapsed']:.1f}x)"
    )
    print(f"  cold disk stats: {cold['disk']}")
    print(f"  warm disk stats: {warm['disk']}")

    # The cold process persisted every compilation it performed...
    assert cold["disk"]["writes"] == cold["memory"]["misses"] > 0
    assert cold["disk"]["hits"] == 0
    # ...and the warm process served every compile node from the disk tier.
    assert warm["disk"]["hits"] == cold["disk"]["writes"]
    assert warm["disk"]["writes"] == 0
    # Cache-cold and cache-warm processes produce bit-identical rows.
    assert warm["rows"] == cold["rows"]
    # The warm-start must be material, not incidental: compilation dominates
    # this study, so serving it from disk should at least halve wall time.
    assert warm["elapsed"] < 0.5 * cold["elapsed"]
